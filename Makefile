# Convenience targets for the reproduction workflow.

.PHONY: install test bench bench-micro bench-scale figures experiments clean

install:
	pip install -e .[dev]

test:
	pytest tests/

# Pipeline benchmark: seed-equivalent reference vs optimised path,
# writes BENCH_sweep.json at the repo root.
bench:
	PYTHONPATH=src python scripts/bench_perf.py

# Microbenchmarks (pytest-benchmark suite).
bench-micro:
	pytest benchmarks/ --benchmark-only

# City-scale streaming benchmark: shard count vs wall clock and peak
# memory, writes BENCH_scale.json at the repo root.
bench-scale:
	PYTHONPATH=src python scripts/bench_scale.py

figures:
	python -m repro all-figures --seeds 0

experiments:
	python scripts/collect_experiments.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
