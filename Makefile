# Convenience targets for the reproduction workflow.

.PHONY: install test bench figures experiments clean

install:
	pip install -e .[dev]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro all-figures --seeds 0

experiments:
	python scripts/collect_experiments.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
