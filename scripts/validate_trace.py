"""Validate a Chrome ``trace_event`` JSON file produced by ``--trace``.

Checks the structural invariants the exporter guarantees (see
:mod:`repro.obs.export`): a ``traceEvents`` list of ``"X"`` (complete) and
``"M"`` (metadata) events, every ``X`` event carrying non-negative numeric
``ts``/``dur``, a name and integer pid/tid.  Exit status is the verdict,
so CI can gate on it.  ``--strip`` additionally prints the canonical form
(wall-clock fields removed, keys sorted), which is bit-identical across
start methods for a deterministic workload — CI diffs the stripped fork
and spawn traces of the same figure.  Usage::

    PYTHONPATH=src python scripts/validate_trace.py trace.json
    PYTHONPATH=src python scripts/validate_trace.py trace.json --strip > canon.json
"""

import argparse
import json
import sys

from repro.obs.export import canonical_trace

_PHASES = {"X", "M"}


def validate(trace) -> list:
    """Every schema violation in ``trace`` (empty list = valid)."""
    errors = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    if not events:
        errors.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: ph must be one of {sorted(_PHASES)}, got {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing/empty name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}: {field} must be an int")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value != value:
                    errors.append(f"{where}: {field} must be numeric")
                elif value < 0:
                    errors.append(f"{where}: {field} must be >= 0, got {value}")
            if not isinstance(event.get("args", {}), dict):
                errors.append(f"{where}: args must be an object")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument(
        "--strip", action="store_true",
        help="after validating, print the canonical trace (ts/dur removed, "
        "keys sorted) for cross-start-method diffing",
    )
    args = parser.parse_args()

    with open(args.path) as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as exc:
            print(f"{args.path}: not valid JSON: {exc}", file=sys.stderr)
            return 1

    errors = validate(trace)
    if errors:
        for error in errors:
            print(f"{args.path}: {error}", file=sys.stderr)
        return 1

    n_complete = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    if args.strip:
        print(json.dumps(canonical_trace(trace), indent=1, sort_keys=True))
    else:
        print(
            f"{args.path}: valid trace "
            f"({len(trace['traceEvents'])} events, {n_complete} spans)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
