"""Benchmark city-scale streaming: shard count vs wall clock and memory.

Holds the per-shard size fixed and grows the city by adding shards, so the
curve answers the scaling question directly: is wall clock near-linear in
shard count, and does peak memory stay bounded by one shard instead of the
whole city?  Each point streams its scenario one
:class:`~repro.workload.ScenarioTile` at a time through
:func:`~repro.experiments.parallel.run_tiles` — generate a tile, LP-HTA
it, keep only the aggregates — so the global system and cost tensor are
never materialised.

Peak memory is read from ``ru_maxrss``, the process high-water mark.  It
is monotone, so the honest signal is the *flatness* of the column across
ascending sizes: a streaming pipeline shows roughly the same peak at 10⁵
devices as at 10⁴, a dense one grows linearly.  Points run smallest to
largest to make that legible.

Writes ``BENCH_scale.json`` at the repo root.  Usage::

    PYTHONPATH=src python scripts/bench_scale.py           # up to 10^5 devices
    PYTHONPATH=src python scripts/bench_scale.py --quick   # CI smoke mode
    PYTHONPATH=src python scripts/bench_scale.py --jobs 4  # pooled workers
"""

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

from repro.context import RunContext, use_context
from repro.experiments.parallel import TileCell, run_tiles
from repro.obs.export import stage_breakdown
from repro.system.sharding import ShardSpec
from repro.workload.profiles import PAPER_DEFAULTS

#: Fixed per-shard size: 6250 devices over 625 stations (the paper's 10
#: devices/station density), 2 tasks per device.  16 shards = 10⁵ devices.
FULL = {"devices": 6250, "stations": 625, "tasks_per_device": 2,
        "shard_counts": (1, 2, 4, 8, 16)}
#: CI smoke mode: same shape, two orders of magnitude smaller.
QUICK = {"devices": 400, "stations": 40, "tasks_per_device": 2,
         "shard_counts": (1, 2)}


def _maxrss_mb() -> float:
    """Process peak RSS in MiB (ru_maxrss is KiB on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return peak / (1024 * 1024)
    return peak / 1024


def _run_point(shape, num_shards: int, seed: int, jobs: int):
    """Stream one city size (``num_shards`` × the fixed shard) end to end."""
    profile = PAPER_DEFAULTS.with_updates(
        num_devices=shape["devices"] * num_shards,
        num_stations=shape["stations"] * num_shards,
        num_tasks=shape["devices"] * num_shards * shape["tasks_per_device"],
    )
    spec = ShardSpec.balanced(range(profile.num_stations), num_shards)
    context = RunContext()
    with use_context(context):
        cells = [
            TileCell(profile=profile, spec=spec, shard_id=shard_id, seed=seed)
            for shard_id in range(num_shards)
        ]
        start = time.perf_counter()
        results = run_tiles(cells, jobs=jobs)
        wall_s = time.perf_counter() - start
    assert sum(r.num_devices for r in results) == profile.num_devices
    assert sum(r.num_tasks for r in results) == profile.num_tasks
    return {
        "shards": num_shards,
        "devices": profile.num_devices,
        "stations": profile.num_stations,
        "tasks": profile.num_tasks,
        "wall_s": round(wall_s, 3),
        "wall_s_per_shard": round(wall_s / num_shards, 3),
        "peak_rss_mb": round(_maxrss_mb(), 1),
        "total_energy_j": round(sum(r.total_energy_j for r in results), 1),
        "lp_objective_j": round(sum(r.lp_objective_j for r in results), 1),
        "cancelled": sum(r.cancelled for r in results),
        # Where the wall clock goes, stage by stage (generate/solve/...);
        # in-process runs see every stage, pooled workers only the
        # submitting side's.
        "stages": stage_breakdown(context.telemetry),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="two small points only (CI smoke mode)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the tile fan-out (1 = stream in-process, "
        "which is what bounds peak memory to one shard)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent.parent / "BENCH_scale.json",
    )
    args = parser.parse_args()

    shape = QUICK if args.quick else FULL
    report = {
        "config": {
            "per_shard_devices": shape["devices"],
            "per_shard_stations": shape["stations"],
            "tasks_per_device": shape["tasks_per_device"],
            "seed": args.seed,
            "jobs": args.jobs,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "peak_rss_mb is the process high-water mark (monotone); "
                "points run smallest to largest, so a flat column means "
                "streaming bounds memory by one shard, not the city"
            ),
        },
        "points": [],
    }
    for num_shards in shape["shard_counts"]:
        point = _run_point(shape, num_shards, args.seed, args.jobs)
        report["points"].append(point)
        print(
            f"shards {point['shards']:>3}  devices {point['devices']:>7}  "
            f"tasks {point['tasks']:>7}  wall {point['wall_s']:>8.2f}s  "
            f"({point['wall_s_per_shard']:.2f}s/shard)  "
            f"peak rss {point['peak_rss_mb']:>7.1f} MiB",
            flush=True,
        )

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
