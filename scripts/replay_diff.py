"""Canonical kernel output for byte-diffing across interpreters.

Prints one JSON document covering both compiled kernels on a fixed
scenario: the generated tasks (every float of the array generator's
draws) and the replayed :class:`RealizedMetrics` of an LP-HTA assignment
under four replay modes (dedicated, contended, each with outages).
``json`` renders floats with ``repr`` — shortest round-trip — so two
documents are byte-identical iff every float is bit-identical.

CI runs this tool without numba, with numba, with ``REPRO_NO_NUMBA=1``
masking an installed numba, and in ``--reference`` mode (the object
engines), and diffs the four outputs::

    python scripts/replay_diff.py --assert-numba no  > plain.json
    pip install -e .[perf]
    python scripts/replay_diff.py --assert-numba yes > jit.json
    diff plain.json jit.json
"""

import argparse
import json

from repro.context import RunContext, use_context
from repro.core.hta import lp_hta
from repro.des import HAVE_NUMBA
from repro.des.replay import replay_assignment
from repro.workload import PAPER_DEFAULTS, generate_scenario

REPLAY_MODES = {
    "dedicated": dict(contention=False),
    "contended": dict(contention=True),
    "dedicated_outages": dict(
        contention=False,
        backhaul_outages=((0.1, 0.4),),
        wan_outages=((0.3, 0.8),),
    ),
    "contended_outages": dict(
        contention=True,
        backhaul_outages=((0.2, 0.5), (0.7, 0.9)),
        wan_outages=((0.4, 0.9),),
    ),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-numba", choices=("yes", "no"), default=None,
        help="fail unless the jit backend is (yes) / is not (no) active",
    )
    parser.add_argument(
        "--reference", action="store_true",
        help="run the object engines instead of the compiled kernels",
    )
    parser.add_argument(
        "--tasks", type=int, default=400,
        help="scenario size (devices scale along with it)",
    )
    args = parser.parse_args()

    if args.assert_numba == "yes" and not HAVE_NUMBA:
        raise SystemExit("expected the numba backend to be active, it is not")
    if args.assert_numba == "no" and HAVE_NUMBA:
        raise SystemExit("expected no numba backend, but one is active")

    profile = PAPER_DEFAULTS.with_updates(
        num_tasks=args.tasks,
        num_devices=max(2, args.tasks // 10),
        num_stations=4,
    )
    context = RunContext(reference=True) if args.reference else RunContext()
    with use_context(context):
        scenario = generate_scenario(profile, seed=0)
        tasks = list(scenario.tasks)
        assignment = lp_hta(scenario.system, tasks).assignment
        document = {
            "tasks": [
                [
                    task.owner_device_id,
                    task.index,
                    task.local_bytes,
                    task.external_bytes,
                    task.external_source,
                    task.resource_demand,
                    task.deadline_s,
                ]
                for task in tasks
            ],
            "replay": {},
        }
        for label, kwargs in REPLAY_MODES.items():
            metrics = replay_assignment(
                scenario.system, tasks, assignment, **kwargs
            )
            document["replay"][label] = {
                "latencies_s": list(metrics.latencies_s),
                "makespan_s": metrics.makespan_s,
                "total_energy_j": metrics.total_energy_j,
                "events_processed": metrics.events_processed,
                "mean_queueing_delay_s": metrics.mean_queueing_delay_s,
            }
    print(json.dumps(document, sort_keys=True, indent=1))


if __name__ == "__main__":
    main()
