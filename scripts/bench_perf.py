"""Benchmark the figure pipeline: seed-equivalent baseline vs optimised path.

Times each figure sweep twice and writes ``BENCH_sweep.json`` at the repo
root so the performance trajectory is tracked PR over PR:

- **reference** — the seed-era code path: scalar per-task cost tables
  (``costs_config(vectorized=False, cached=False)``), the original
  generator/metric/solver implementations (``perf_config(reference=True)``)
  and the in-process sequential sweep (``jobs=1``),
- **optimized** — the current defaults: vectorised cost tables with the
  per-scenario memo, the optimised generator/metric/solver paths, plus the
  process-parallel sweep engine (``--jobs``, default 4).

Both paths produce bit-identical series (asserted on every run), so the
ratio is a pure wall-clock comparison.  Each side is timed ``--repeat``
times and the fastest run is kept, which filters scheduler noise.  The
fastest optimised run also contributes a per-figure ``stage_breakdown``
section (per-stage counts, totals and p50/p95/p99, from the
:mod:`repro.obs` stage histograms).  Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # figs 2–6a
    PYTHONPATH=src python scripts/bench_perf.py --quick    # fig 2 only
    PYTHONPATH=src python scripts/bench_perf.py --figures fig2a fig3
"""

import argparse
import cProfile
import json
import pickle
import platform
import pstats
import time
from pathlib import Path

from repro.context import RunContext, use_context
from repro.core.costs import costs_config
from repro.experiments.figures import ALL_FIGURES
from repro.obs.export import stage_breakdown
from repro.perf import perf_config

#: fig6b runs ~20× longer than any other sweep; opt in with --figures.
DEFAULT_FIGURES = (
    "fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a",
)
QUICK_FIGURES = ("fig2a", "fig2b")


def _time_figure(figure_id: str, seeds, jobs: int):
    producer = ALL_FIGURES[figure_id]
    start = time.perf_counter()
    data = producer(seeds=seeds, jobs=jobs)
    return time.perf_counter() - start, data


def _hotspot_rows(stats: "pstats.Stats", sort: str, top: int):
    # pstats' sort_stats leaves equal-time entries in hash order, which
    # makes --profile output churn run to run; sort on (-time, rendered
    # name) instead so ties land deterministically.
    column = 2 if sort == "tottime" else 3
    ranked = sorted(
        stats.stats.items(),
        key=lambda item: (
            -item[1][column],
            f"{item[0][0]}:{item[0][1]}({item[0][2]})",
        ),
    )
    rows = []
    for (filename, line, name), (cc, nc, tottime, cumtime, _callers) in ranked[:top]:
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "calls": nc,
                "tottime_s": round(tottime, 4),
                "cumtime_s": round(cumtime, 4),
            }
        )
    return rows


def _profile_figure(figure_id: str, seeds, jobs: int, top: int = 20):
    """Run one figure under cProfile; return its top hotspots.

    The profiler only sees the submitting process, so figures are profiled
    with ``jobs=1`` — worker-side costs would otherwise vanish from the
    report.  Two rankings are returned: ``cumulative`` (wrappers and
    pipeline stages) and ``self`` (tottime).  The self ranking is what
    surfaces solver-internal work on the sparse path: C-level calls like
    ``splu``/``spsolve`` carry all their time as tottime, so a
    cumulative-only list buries them inside the Python wrapper's cumtime
    and the solve looks like pure overhead.
    """
    producer = ALL_FIGURES[figure_id]
    profiler = cProfile.Profile()
    profiler.enable()
    producer(seeds=seeds, jobs=1)
    profiler.disable()
    stats = pstats.Stats(profiler)
    return {
        "cumulative": _hotspot_rows(stats, "cumulative", top),
        "self": _hotspot_rows(stats, "tottime", top),
    }


#: Scenario size for the kernel microbenchmarks below.
_KERNEL_PROFILE_KW = dict(num_devices=100, num_stations=10, num_tasks=2000)


def _kernel_bench(repeat: int):
    """Microbenchmark the compiled kernels against their object references.

    The figure sweeps never replay assignments, so the DES engine's win is
    invisible in the per-figure timings; and generation is a small slice of
    a sweep dominated by solves.  This section times both kernels directly
    on one mid-size scenario: assignment replay (dedicated and contended)
    through the array engine vs the closure-chain simulator, and scenario
    generation + cost-table build through the array generator vs the object
    paths.  Every pairing is bit-identical (the differential tests assert
    it); only wall-clock differs.
    """
    from repro.core.costs import cluster_costs
    from repro.core.hta import lp_hta
    from repro.des import HAVE_NUMBA
    from repro.des.replay import replay_assignment
    from repro.workload import PAPER_DEFAULTS, generate_scenario

    profile = PAPER_DEFAULTS.with_updates(**_KERNEL_PROFILE_KW)

    def best(fn):
        fastest = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            fn()
            fastest = min(fastest, time.perf_counter() - start)
        return fastest

    with use_context(RunContext()):
        scenario = generate_scenario(profile, seed=0)
        tasks = list(scenario.tasks)
        assignment = lp_hta(scenario.system, tasks).assignment

    section = {"numba": HAVE_NUMBA, "tasks": profile.num_tasks, "replay": {}}
    for label, contention in (("dedicated", False), ("contended", True)):
        def replay():
            replay_assignment(
                scenario.system, tasks, assignment, contention=contention
            )

        with use_context(RunContext()):
            engine_s = best(replay)
        with use_context(RunContext(des_vectorized=False)):
            object_s = best(replay)
        section["replay"][label] = {
            "object_s": round(object_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(object_s / engine_s, 2),
        }

    # Each call generates a fresh system, so the cost-table memo never
    # hits and the timing covers the full generate→costs chain.
    def generate_and_price():
        fresh = generate_scenario(profile, seed=0)
        cluster_costs(fresh.system, fresh.tasks)

    timings = {}
    for label, context in (
        ("array", RunContext()),
        ("pool", RunContext(vectorized_generator=False)),
        ("reference", RunContext(reference=True)),
    ):
        with use_context(context):
            timings[label] = best(generate_and_price)
    section["generate"] = {
        "array_s": round(timings["array"], 4),
        "pool_s": round(timings["pool"], 4),
        "reference_s": round(timings["reference"], 4),
        "speedup_vs_pool": round(timings["pool"] / timings["array"], 2),
        "speedup_vs_reference": round(
            timings["reference"] / timings["array"], 2
        ),
    }
    return section


def _batch_stats(telemetry):
    """Mega-solve statistics for one figure's *first* optimised run.

    Summarises the batched LP path: how many block-diagonal mega-solves
    ran, how many P2 blocks they pooled, the ``lp.batch_size``
    distribution, and the whole-batch cache hit rate.  The first repeat
    is the one reported because it runs on a cold cache — later repeats
    serve whole columns from the batch cache and never assemble a
    mega-solve.  All zeros (and a ``null`` size section) under
    ``--no-batch`` or when every sweep column held a single cell.
    """
    counters = {
        "batch_solves": telemetry.batch_solves,
        "batched_blocks": telemetry.batched_blocks,
        "batch_cache_hits": telemetry.batch_cache_hits,
        "batch_cache_misses": telemetry.batch_cache_misses,
    }
    histogram = telemetry.metrics.histograms.get("lp.batch_size")
    if histogram is None or histogram.count == 0:
        counters["batch_size"] = None
    else:
        counters["batch_size"] = {
            "count": histogram.count,
            "mean": round(histogram.sum / histogram.count, 2),
            "p50": round(histogram.quantile(0.50), 2),
            "p95": round(histogram.quantile(0.95), 2),
        }
    return counters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="benchmark only the Fig. 2 sweeps (CI smoke mode)",
    )
    parser.add_argument(
        "--figures", nargs="+", choices=sorted(ALL_FIGURES), default=None,
        help="explicit figure subset (overrides --quick)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="scenario seeds per sweep point (1 seed keeps runs short)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the optimised path",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed runs per side; the fastest is reported",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent.parent / "BENCH_sweep.json",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="additionally run each figure under cProfile and record the "
        "top-20 hotspots (cumulative and self-time rankings) in the "
        "output JSON",
    )
    args = parser.parse_args()

    if args.figures is not None:
        figures = tuple(args.figures)
    elif args.quick:
        figures = QUICK_FIGURES
    else:
        figures = DEFAULT_FIGURES
    seeds = tuple(args.seeds)

    report = {
        "config": {
            "figures": list(figures),
            "seeds": list(seeds),
            "jobs": args.jobs,
            "repeat": args.repeat,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "figures": {},
    }
    total_ref = total_opt = 0.0
    for figure_id in figures:
        ref_s = opt_s = float("inf")
        ref_data = opt_data = None
        opt_telemetry = cold_telemetry = None
        # One context per figure, shared by the repeats, so the LP solve
        # cache and scenario memo stay warm across them — the regime the
        # "fastest of N" timing has always measured.  Telemetry is reset
        # before each optimised run and the fastest run's sink is
        # snapshotted (pickling a bare Telemetry preserves its state), so
        # the stage_breakdown section describes exactly one sweep.
        context = RunContext()
        for _ in range(max(1, args.repeat)):
            with costs_config(vectorized=False, cached=False), perf_config(
                reference=True
            ):
                elapsed, ref_data = _time_figure(figure_id, seeds, jobs=1)
            ref_s = min(ref_s, elapsed)
            context.telemetry.reset()
            with use_context(context):
                elapsed, opt_data = _time_figure(
                    figure_id, seeds, jobs=args.jobs
                )
            if elapsed < opt_s:
                opt_s = elapsed
                opt_telemetry = pickle.loads(pickle.dumps(context.telemetry))
            if cold_telemetry is None:
                # First repeat: the only one whose caches start cold, so
                # the only one whose mega-solves actually run.
                cold_telemetry = pickle.loads(pickle.dumps(context.telemetry))
            if opt_data != ref_data:
                raise SystemExit(
                    f"{figure_id}: optimised series diverged from the reference"
                )
        total_ref += ref_s
        total_opt += opt_s
        report["figures"][figure_id] = {
            "reference_s": round(ref_s, 3),
            "optimized_s": round(opt_s, 3),
            "speedup": round(ref_s / opt_s, 2),
            "stage_breakdown": stage_breakdown(opt_telemetry),
            "batch": _batch_stats(cold_telemetry),
        }
        if args.profile:
            report["figures"][figure_id]["hotspots"] = _profile_figure(
                figure_id, seeds, jobs=args.jobs
            )
        print(
            f"{figure_id}: reference {ref_s:7.2f}s  optimized {opt_s:7.2f}s  "
            f"({ref_s / opt_s:.2f}x)",
            flush=True,
        )

    report["kernels"] = kernels = _kernel_bench(args.repeat)
    print(
        "kernels: replay "
        f"{kernels['replay']['dedicated']['speedup']:.2f}x dedicated / "
        f"{kernels['replay']['contended']['speedup']:.2f}x contended, "
        f"generate {kernels['generate']['speedup_vs_pool']:.2f}x "
        f"(numba={'yes' if kernels['numba'] else 'no'})",
        flush=True,
    )
    report["total"] = {
        "reference_s": round(total_ref, 3),
        "optimized_s": round(total_opt, 3),
        "speedup": round(total_ref / total_opt, 2),
    }
    print(
        f"total: reference {total_ref:.2f}s  optimized {total_opt:.2f}s  "
        f"({total_ref / total_opt:.2f}x)"
    )
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
