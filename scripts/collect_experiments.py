"""Collect every figure's data (full seeds) into results/figures.json.

Used to populate EXPERIMENTS.md; rerun after any model change::

    python scripts/collect_experiments.py [--seeds 0 1 2]
"""

import argparse
import json
import time
from pathlib import Path

from repro.experiments.figures import ALL_FIGURES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent.parent / "results"
    )
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)

    collected = {}
    for figure_id, producer in sorted(ALL_FIGURES.items()):
        start = time.time()
        data = producer(seeds=tuple(args.seeds))
        # Per-seed series expose the spread behind the averaged numbers.
        per_seed = {
            seed: producer(seeds=(seed,)).series for seed in args.seeds
        }
        spread = {
            name: [
                max(per_seed[seed][name][idx] for seed in args.seeds)
                - min(per_seed[seed][name][idx] for seed in args.seeds)
                for idx in range(len(data.x_values))
            ]
            for name in data.series
        }
        collected[figure_id] = {
            "title": data.title,
            "x_label": data.x_label,
            "y_label": data.y_label,
            "x_values": list(data.x_values),
            "series": {name: list(values) for name, values in data.series.items()},
            "seed_spread": spread,
            "seeds": list(args.seeds),
            "seconds": round(time.time() - start, 2),
        }
        print(f"{figure_id}: done in {collected[figure_id]['seconds']}s", flush=True)

    path = args.out / "figures.json"
    path.write_text(json.dumps(collected, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
