"""Sensitivity benches: do the paper's orderings survive parameter changes?

DESIGN.md reconstructs several quantities the paper leaves open (deadline
distribution, resource caps, external-data share).  These benches sweep
those reconstructions and assert the paper's qualitative conclusions are
*not* artifacts of our particular choices.
"""

from conftest import run_once

from repro.experiments.grid import pivot, run_grid
from repro.experiments.runner import evaluate_holistic
from repro.units import KB
from repro.workload import PAPER_DEFAULTS

_EVALUATORS = {
    name: (lambda scenario, n=name: evaluate_holistic(scenario, n))
    for name in ("LP-HTA", "HGOS", "AllOffload")
}

_BASE = PAPER_DEFAULTS.with_updates(num_tasks=150, max_input_bytes=3000 * KB)


def test_deadline_sensitivity(benchmark):
    """LP-HTA's energy win and unsatisfied-rate win hold from tight to
    loose deadline regimes."""
    cells = run_once(
        benchmark, run_grid,
        _BASE,
        {"deadline_range_s": [(0.3, 2.0), (0.5, 6.0), (2.0, 10.0)]},
        _EVALUATORS,
        seeds=(0, 1),
    )
    for metric in ("total_energy_j", "unsatisfied_rate"):
        lp = pivot(cells, "deadline_range_s", metric, "LP-HTA")
        hg = pivot(cells, "deadline_range_s", metric, "HGOS")
        for (point, lp_value), (_, hg_value) in zip(lp, hg):
            assert lp_value <= hg_value * 1.05, (metric, point)
    print("\ndeadline sweep:",
          [(p, round(v, 1)) for p, v in pivot(cells, "deadline_range_s",
                                              "total_energy_j", "LP-HTA")])


def test_cap_sensitivity(benchmark):
    """The energy ordering holds whether caps barely bind or choke."""
    cells = run_once(
        benchmark, run_grid,
        _BASE,
        {"device_max_resource": [2.0, 6.0, 18.0]},
        _EVALUATORS,
        seeds=(0, 1),
    )
    lp = pivot(cells, "device_max_resource", "total_energy_j", "LP-HTA")
    hg = pivot(cells, "device_max_resource", "total_energy_j", "HGOS")
    off = pivot(cells, "device_max_resource", "total_energy_j", "AllOffload")
    for (cap, lp_value), (_, hg_value), (_, off_value) in zip(lp, hg, off):
        assert lp_value <= hg_value * 1.05, cap
        assert hg_value <= off_value * 1.05, cap
    # Looser device caps let LP-HTA keep more work local: energy falls.
    assert lp[-1][1] < lp[0][1]
    print("\ncap sweep LP-HTA:", [(c, round(v, 1)) for c, v in lp])


def test_external_share_sensitivity(benchmark):
    """More external data raises everyone's bill; LP-HTA stays cheapest."""
    cells = run_once(
        benchmark, run_grid,
        _BASE,
        {"external_ratio_range": [(0.0, 0.0), (0.0, 0.5), (0.4, 1.0)]},
        _EVALUATORS,
        seeds=(0, 1),
    )
    lp = pivot(cells, "external_ratio_range", "total_energy_j", "LP-HTA")
    hg = pivot(cells, "external_ratio_range", "total_energy_j", "HGOS")
    for (point, lp_value), (_, hg_value) in zip(lp, hg):
        assert lp_value <= hg_value * 1.05, point
    print("\nexternal-share sweep LP-HTA:",
          [(p, round(v, 1)) for p, v in lp])
