"""Fig. 2: energy cost of LP-HTA vs HGOS, AllToC, AllOffload.

Paper's reported shape: LP-HTA consumes the least energy at every sweep
point; HGOS is close but above; AllOffload and AllToC are far above, with
AllToC the worst; all curves grow with the workload.
"""

from conftest import BENCH_SEEDS, assert_dominates, assert_nondecreasing, run_once, show

from repro.experiments.figures import fig2a, fig2b


def test_fig2a_energy_vs_tasks(benchmark):
    data = run_once(benchmark, fig2a, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "LP-HTA", "HGOS", slack=1.02)
    assert_dominates(data, "HGOS", "AllOffload")
    assert_dominates(data, "AllOffload", "AllToC", slack=1.01)
    for name in data.series:
        assert_nondecreasing(data, name)
    # LP-HTA's advantage over AllToC is large (the paper shows ~2-4x).
    assert data.values_of("AllToC")[-1] > 1.5 * data.values_of("LP-HTA")[-1]


def test_fig2b_energy_vs_input_size(benchmark):
    data = run_once(benchmark, fig2b, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "LP-HTA", "HGOS", slack=1.02)
    assert_dominates(data, "HGOS", "AllOffload")
    assert_dominates(data, "AllOffload", "AllToC", slack=1.01)
    for name in data.series:
        assert_nondecreasing(data, name)
