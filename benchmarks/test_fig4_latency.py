"""Fig. 4: average latency of LP-HTA vs HGOS, AllToC, AllOffload.

Paper's reported shape: LP-HTA has the smallest average latency; its
advantage narrows with bigger inputs (Fig 4b) because large tasks outgrow
the devices and must be offloaded anyway.
"""

from conftest import BENCH_SEEDS, assert_dominates, run_once, show

from repro.experiments.figures import fig4a, fig4b


def test_fig4a_latency_vs_tasks(benchmark):
    data = run_once(benchmark, fig4a, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "LP-HTA", "HGOS", slack=1.02)
    assert_dominates(data, "LP-HTA", "AllToC")
    assert_dominates(data, "LP-HTA", "AllOffload")
    # The cloud's WAN latency keeps AllToC clearly above LP-HTA.
    assert data.values_of("AllToC")[0] > 1.3 * data.values_of("LP-HTA")[0]


def test_fig4b_latency_vs_input_size(benchmark):
    data = run_once(benchmark, fig4b, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "LP-HTA", "HGOS", slack=1.05)
    assert_dominates(data, "LP-HTA", "AllToC")
    assert_dominates(data, "LP-HTA", "AllOffload")
    # Latency grows with the input size for every method.
    for name in data.series:
        values = data.values_of(name)
        assert values[-1] > values[0]
    # LP-HTA and HGOS stay within the same band at small inputs (the paper:
    # the advantage over HGOS is least pronounced where devices absorb
    # everything), while the offload-everything baselines sit clearly above.
    assert data.values_of("AllToC")[0] > 1.5 * data.values_of("LP-HTA")[0]
