"""Table I: parameters of the simulated wireless networks."""

import pytest

from repro.experiments.tables import table1_rows, table1_text


def test_table1(benchmark):
    text = benchmark.pedantic(table1_text, rounds=1, iterations=1)
    print()
    print(text)
    rows = table1_rows()
    # The exact values the paper prints.
    assert rows[0] == (
        "4G",
        pytest.approx(13.76), pytest.approx(5.85),
        pytest.approx(7.32), pytest.approx(1.6),
    )
    assert rows[1] == (
        "Wi-Fi",
        pytest.approx(54.97), pytest.approx(12.88),
        pytest.approx(15.7), pytest.approx(2.7),
    )
