"""Raw LP-solver benchmarks: the structured IPM's scaling claim.

The structured solver is what makes the 900-task sweeps feasible; this
bench pins down its per-solve cost against the generic dense IPM and the
simplex on the same P2 instance.
"""

import pytest

from repro.core.costs import cluster_costs
from repro.core.lp_builder import build_p2, build_p2_structured
from repro.lp.backends import solve
from repro.lp.structured import solve_structured
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _p2_instance(num_tasks: int):
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_tasks=num_tasks, num_devices=10, num_stations=1
        ),
        seed=0,
    )
    costs = cluster_costs(scenario.system, list(scenario.tasks))
    caps = {d: scenario.system.device(d).max_resource for d in scenario.system.devices}
    cap = scenario.system.station(0).max_resource
    return costs, caps, cap


@pytest.fixture(scope="module")
def p2_small():
    return _p2_instance(60)


@pytest.fixture(scope="module")
def p2_large():
    return _p2_instance(400)


def test_structured_ipm_small(benchmark, p2_small):
    costs, caps, cap = p2_small
    build = build_p2_structured(costs, caps, cap)
    result = benchmark(lambda: solve_structured(build.lp))
    assert result.status.ok


def test_structured_ipm_large(benchmark, p2_large):
    costs, caps, cap = p2_large
    build = build_p2_structured(costs, caps, cap)
    result = benchmark(lambda: solve_structured(build.lp))
    assert result.status.ok


def test_dense_ipm_small(benchmark, p2_small):
    costs, caps, cap = p2_small
    build = build_p2(costs, caps, cap)
    result = benchmark.pedantic(
        lambda: solve(build.lp, "interior-point"),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert result.status.ok


def test_simplex_small(benchmark, p2_small):
    costs, caps, cap = p2_small
    build = build_p2(costs, caps, cap)
    result = benchmark.pedantic(
        lambda: solve(build.lp, "simplex"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.status.ok


def test_backends_same_objective(benchmark, p2_small):
    """The three P2 paths agree on the optimum (scipy timed as reference)."""
    costs, caps, cap = p2_small
    generic = build_p2(costs, caps, cap)
    structured = build_p2_structured(costs, caps, cap)
    reference = benchmark.pedantic(
        lambda: solve(generic.lp, "scipy"),
        rounds=3, iterations=1, warmup_rounds=0,
    ).objective
    assert solve_structured(structured.lp).objective == pytest.approx(
        reference, rel=1e-6
    )
    assert solve(generic.lp, "interior-point").objective == pytest.approx(
        reference, rel=1e-5
    )


def test_des_kernel_throughput(benchmark):
    """Substrate perf: the event kernel should push >100k events/second."""
    from repro.des.kernel import EventSimulator

    def run():
        sim = EventSimulator()
        count = 20_000
        for index in range(count):
            sim.schedule(float(index % 97) / 10.0, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 20_000
