"""Fig. 3: unsatisfied-task rate of LP-HTA vs HGOS and AllOffload.

Paper's reported shape: LP-HTA's rate is small and far below HGOS and
AllOffload (AllToC is omitted, as in the paper, because its rate is so
high it would flatten the other curves).
"""

import numpy as np
from conftest import BENCH_SEEDS, assert_dominates, run_once, show

from repro.experiments.figures import fig3


def test_fig3_unsatisfied_rate(benchmark):
    data = run_once(benchmark, fig3, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "LP-HTA", "HGOS", slack=1.001)
    assert_dominates(data, "LP-HTA", "AllOffload", slack=1.001)
    # On average the deadline-aware algorithm misses far less often.
    lp = float(np.mean(data.values_of("LP-HTA")))
    hgos = float(np.mean(data.values_of("HGOS")))
    offload = float(np.mean(data.values_of("AllOffload")))
    assert lp < 0.7 * hgos
    assert lp < 0.5 * offload
    # Rates are rates.
    for name in data.series:
        assert all(0.0 <= v <= 1.0 for v in data.values_of(name))
