"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify our implementation decisions:

- LP backend: the structured IPM vs the generic dense IPM vs scipy,
- rounding rule: argmax (the paper's Step 3) vs randomized rounding,
- repair order: largest-resource-first (the paper's greedy) vs smallest,
- HGOS's deadline/data blindness: what ignoring C1 and the data
  distribution costs it,
- DTA-Workload greedy vs the exact min–max division,
- the analytic no-contention assumption vs FIFO-contended replay.
"""

import numpy as np
import pytest

from repro.core.baselines import hgos, local_first
from repro.core.hta import LPHTAOptions, lp_hta
from repro.des.replay import replay_assignment
from repro.dta.coverage import dta_workload, exact_min_max_coverage
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=250), seed=0)


def test_lp_backend_structured_vs_dense(benchmark, scenario):
    """The structured IPM must match the generic backends' energy."""
    tasks = list(scenario.tasks)
    structured = benchmark.pedantic(
        lambda: lp_hta(scenario.system, tasks, LPHTAOptions(backend="structured")),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    dense = lp_hta(scenario.system, tasks, LPHTAOptions(backend="interior-point"))
    scipy_ref = lp_hta(scenario.system, tasks, LPHTAOptions(backend="scipy"))
    e = structured.assignment.total_energy_j()
    print(f"\nenergy: structured={e:.2f} dense={dense.assignment.total_energy_j():.2f} "
          f"scipy={scipy_ref.assignment.total_energy_j():.2f}")
    assert e == pytest.approx(dense.assignment.total_energy_j(), rel=1e-3)
    assert e == pytest.approx(scipy_ref.assignment.total_energy_j(), rel=1e-3)


def test_rounding_rule(benchmark, scenario):
    """Argmax rounding (Step 3) beats or matches randomized rounding."""
    tasks = list(scenario.tasks)
    argmax = benchmark.pedantic(
        lambda: lp_hta(scenario.system, tasks, LPHTAOptions(rounding="argmax")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    randomized = [
        lp_hta(
            scenario.system, tasks, LPHTAOptions(rounding="randomized", seed=s)
        ).assignment.total_energy_j()
        for s in range(3)
    ]
    print(f"\nargmax={argmax.assignment.total_energy_j():.2f} "
          f"randomized mean={np.mean(randomized):.2f}")
    assert argmax.assignment.total_energy_j() <= np.mean(randomized) * 1.05


def test_repair_order(benchmark, scenario):
    """Largest-resource-first repair (the paper's rule) vs smallest-first."""
    tasks = list(scenario.tasks)
    largest = benchmark.pedantic(
        lambda: lp_hta(
            scenario.system, tasks, LPHTAOptions(repair_order="largest-first")
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    smallest = lp_hta(
        scenario.system, tasks, LPHTAOptions(repair_order="smallest-first")
    )
    print(
        f"\nlargest-first={largest.assignment.total_energy_j():.2f} J "
        f"(unsat {largest.assignment.unsatisfied_rate():.3f})  "
        f"smallest-first={smallest.assignment.total_energy_j():.2f} J "
        f"(unsat {smallest.assignment.unsatisfied_rate():.3f})"
    )
    # Both repairs must produce feasible schedules; energies may differ.
    for report in (largest, smallest):
        caps = {
            d: scenario.system.device(d).max_resource for d in scenario.system.devices
        }
        problems = [
            p for p in report.assignment.violations(caps, float("inf"))
            if "C3" not in p
        ]
        assert problems == []


def test_hgos_blindness_cost(benchmark, scenario):
    """What deadline/data blindness costs HGOS vs a constraint-aware greedy."""
    tasks = list(scenario.tasks)
    blind = benchmark.pedantic(
        lambda: hgos(scenario.system, tasks), rounds=1, iterations=1, warmup_rounds=0
    )
    aware = local_first(scenario.system, tasks)
    print(
        f"\nHGOS unsat={blind.unsatisfied_rate():.3f}  "
        f"deadline-aware greedy unsat={aware.unsatisfied_rate():.3f}"
    )
    assert blind.unsatisfied_rate() >= aware.unsatisfied_rate() - 1e-9


def test_dta_workload_greedy_vs_exact(benchmark):
    """Empirical ratio of the DTA-Workload greedy against the exact min–max."""
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_tasks=40, num_devices=12, num_stations=2,
            divisible=True, num_data_items=120,
        ),
        seed=0,
    )
    universe = scenario.universe
    greedy = benchmark.pedantic(
        lambda: dta_workload(universe, scenario.ownership),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    exact = exact_min_max_coverage(universe, scenario.ownership)
    ratio = greedy.max_set_size() / max(exact.max_set_size(), 1)
    print(f"\ngreedy max|C|={greedy.max_set_size()} exact={exact.max_set_size()} "
          f"ratio={ratio:.2f}")
    assert ratio >= 1.0
    # The paper's Corollary 2 bound is 1/(1-1/e) ≈ 1.58; the greedy is a
    # whole-set variant, so allow a looser empirical band.
    assert ratio <= 4.0


def test_contention_overhead(benchmark, scenario):
    """How much FIFO queueing inflates the analytic makespan."""
    tasks = list(scenario.tasks)
    report = lp_hta(scenario.system, tasks)
    contended = benchmark.pedantic(
        lambda: replay_assignment(scenario.system, tasks, report.assignment,
                                  contention=True),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    dedicated = replay_assignment(scenario.system, tasks, report.assignment)
    overhead = contended.makespan_s / dedicated.makespan_s
    print(f"\nmakespan dedicated={dedicated.makespan_s:.3f}s "
          f"contended={contended.makespan_s:.3f}s (x{overhead:.2f})")
    assert overhead >= 1.0
