"""Shared helpers for the figure benchmarks.

Every benchmark regenerates one paper figure/table (rounds=1: a figure sweep
is seconds of work, not microseconds), prints the series the paper plots,
and asserts the *shape* the paper reports — who wins, in which direction the
curves move.  Absolute values depend on constants the paper does not publish
(see DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.series import SeriesData

#: Seeds used by the benches: averaging over two seeds keeps shapes stable
#: while staying fast enough to sweep nine figures.
BENCH_SEEDS: Sequence[int] = (0, 1)


def run_once(benchmark, producer, *args, **kwargs):
    """Run a figure producer exactly once under the benchmark clock."""
    return benchmark.pedantic(producer, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def show(data: SeriesData) -> None:
    """Print a figure's series (visible with -s / in failure output)."""
    print()
    print(data.format_table())


def assert_dominates(
    data: SeriesData, better: str, worse: str, slack: float = 1.0
) -> None:
    """Series ``better`` must lie at or below ``worse`` at every sweep point.

    :param slack: multiplicative tolerance (1.0 = strict, 1.05 = within 5%).
    """
    for x, b, w in zip(data.x_values, data.values_of(better), data.values_of(worse)):
        assert b <= w * slack, (
            f"{data.figure_id}: expected {better} <= {worse} at x={x}, "
            f"got {b:.4g} > {w:.4g}"
        )


def assert_nondecreasing(data: SeriesData, name: str, slack: float = 1.05) -> None:
    """A series must grow (within tolerance) along the sweep."""
    values = data.values_of(name)
    for left, right in zip(values, values[1:]):
        assert right >= left / slack, (
            f"{data.figure_id}: {name} should not drop along the sweep "
            f"({left:.4g} -> {right:.4g})"
        )
