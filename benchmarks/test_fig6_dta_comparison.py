"""Fig. 6: DTA-Workload vs DTA-Number head to head.

Paper's reported shape: DTA-Workload's balanced division gives much lower
processing time (6a); DTA-Number's set-cover division involves far fewer
mobile devices (6b).
"""

from conftest import BENCH_SEEDS, assert_dominates, run_once, show

from repro.experiments.figures import fig6a, fig6b


def test_fig6a_processing_time(benchmark):
    data = run_once(benchmark, fig6a, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "DTA-Workload", "DTA-Number", slack=1.02)
    # The balanced division is substantially faster on average.
    workload = data.values_of("DTA-Workload")
    number = data.values_of("DTA-Number")
    assert sum(workload) < 0.85 * sum(number)


def test_fig6b_involved_devices(benchmark):
    data = run_once(benchmark, fig6b, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "DTA-Number", "DTA-Workload", slack=1.001)
    # DTA-Number involves clearly fewer devices across the sweep.
    workload = data.values_of("DTA-Workload")
    number = data.values_of("DTA-Number")
    assert sum(number) < 0.85 * sum(workload)
    # Both grow (or saturate) as tasks touch more of the data universe.
    assert workload[-1] >= workload[0]
    assert number[-1] >= number[0]
