"""Benches for the extension modules (beyond the paper's figures).

Each quantifies one extension against the paper's core machinery:

- the decentralized game's price of anarchy vs LP-HTA,
- partial offloading's saving over binary assignment,
- the cache-capacity sweep of the [29]-style edge cache,
- the quasi-static violation rate vs planning-epoch length,
- LP-HTA's empirical approximation ratio vs exact optima.
"""

import pytest

from repro.caching import LRUCache, QueryCatalog, simulate_with_cache, zipf_query_stream
from repro.core.assignment import Subsystem
from repro.core.game import best_response_offloading
from repro.core.hta import lp_hta
from repro.experiments.ratio_study import run_ratio_study
from repro.mobility import RandomWaypointModel, analyse_handovers
from repro.partial import partial_offloading
from repro.units import MB
from repro.workload import PAPER_DEFAULTS, generate_scenario, generate_system


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=150), seed=4)


def test_game_price_of_anarchy(benchmark, scenario):
    game = benchmark.pedantic(
        lambda: best_response_offloading(scenario.system, list(scenario.tasks)),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    lp = lp_hta(scenario.system, list(scenario.tasks))
    assert game.converged
    cancelled = lp.assignment.subsystem_counts()[Subsystem.CANCELLED]
    poa = game.assignment.total_energy_j() / lp.assignment.total_energy_j()
    print(f"\nprice of anarchy = {poa:.3f} over {game.rounds} rounds")
    if cancelled == 0:
        assert 1.0 - 1e-9 <= poa
    # An equilibrium should still be far better than no coordination at all.
    from repro.core.baselines import all_to_cloud

    cloud = all_to_cloud(scenario.system, list(scenario.tasks))
    assert game.assignment.total_energy_j() < cloud.total_energy_j()


def test_partial_offloading_saving(benchmark, scenario):
    split = benchmark.pedantic(
        lambda: partial_offloading(scenario.system, list(scenario.tasks)),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    lp = lp_hta(scenario.system, list(scenario.tasks))
    binary = lp.assignment.total_energy_j()
    print(
        f"\nbinary {binary:.1f} J -> fractional {split.total_energy_j:.1f} J "
        f"({split.num_fractional} split tasks, {split.num_dropped} dropped)"
    )
    if lp.assignment.subsystem_counts()[Subsystem.CANCELLED] == 0:
        assert split.total_energy_j <= binary * 1.001


def test_cache_capacity_sweep(benchmark):
    system = generate_system(PAPER_DEFAULTS, seed=0)
    catalog = QueryCatalog.generate(system, PAPER_DEFAULTS, num_queries=80, seed=1)
    stream = zipf_query_stream(system, catalog, length=400, exponent=1.3, seed=2)

    def sweep():
        return [
            simulate_with_cache(system, stream, lambda c=cap: LRUCache(c * MB))
            for cap in (1, 5, 20, 80)
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    rates = [r.hit_rate for r in reports]
    savings = [r.energy_saving_fraction for r in reports]
    print("\ncapacity (MB) -> hit rate:", [f"{r:.2f}" for r in rates])
    print("capacity (MB) -> saving:  ", [f"{s:.2f}" for s in savings])
    # More capacity never hurts.
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))
    assert savings[-1] > 0.3


def test_quasi_static_violation_sweep(benchmark):
    system = generate_system(PAPER_DEFAULTS, seed=0)
    positions = {d: dev.position for d, dev in system.devices.items()}
    mobility = RandomWaypointModel(
        sorted(system.devices), area_side_m=2000.0,
        speed_range_mps=(2.0, 15.0), seed=1, initial_positions=positions,
    )
    stations = {sid: s.position for sid, s in system.stations.items()}

    def sweep():
        return [
            analyse_handovers(mobility, stations, 960.0, epoch)
            for epoch in (30.0, 120.0, 480.0)
        ]

    analyses = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    rates = [a.violation_rate for a in analyses]
    print("\nepoch 30/120/480 s violation rates:", [f"{r:.2f}" for r in rates])
    assert rates[0] < rates[1] < rates[2]
    assert rates[0] < 0.5 and rates[2] > 0.8


def test_empirical_ratio_study(benchmark):
    study = benchmark.pedantic(
        lambda: run_ratio_study(seeds=tuple(range(12))),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print(f"\nempirical ratio: {study.summary.format()}; "
          f"worst {study.summary.maximum:.3f}; skipped {study.skipped}")
    assert study.bound_violations == 0
    assert study.summary.maximum >= 1.0 - 1e-9
    # LP-HTA is near-optimal on small instances (far below the bound of 3).
    assert study.summary.mean < 1.5


def test_congestion_fixed_point(benchmark, scenario):
    from repro.congestion import congestion_aware_assignment
    from repro.system.interference import InterferenceChannel

    channel = InterferenceChannel(
        bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
        noise_power_w=1e-9, orthogonality_loss=0.02,
    )
    result = benchmark.pedantic(
        lambda: congestion_aware_assignment(
            scenario.system, list(scenario.tasks), channel
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print(
        f"\nfixed point in {result.iterations} rounds; "
        f"blind {result.naive_energy_j:.0f} J vs self-consistent "
        f"{result.final_energy_j:.0f} J"
    )
    assert result.converged
    # Blind pricing can only underestimate when uplinks are actually shared.
    offloaded = sum(result.concurrency_history[-1].values())
    if offloaded > len(scenario.system.stations):
        assert result.final_energy_j >= result.naive_energy_j - 1e-6


def test_lagrangian_vs_lp_hta(benchmark, scenario):
    from repro.core.lagrangian import lagrangian_hta

    lag = benchmark.pedantic(
        lambda: lagrangian_hta(scenario.system, list(scenario.tasks)),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    lp = lp_hta(scenario.system, list(scenario.tasks))
    print(
        f"\ndual bound {lag.best_dual_j:.1f} J vs E_LP_OPT "
        f"{lp.lp_objective_j:.1f} J; primal {lag.primal_energy_j:.1f} J vs "
        f"LP-HTA {lp.assignment.total_energy_j():.1f} J"
    )
    assert lag.best_dual_j <= lag.primal_energy_j + 1e-6
    # The dual can never exceed the LP relaxation optimum (same instance,
    # both relax C2/C3-coupled integrality; integrality property).
    assert lag.best_dual_j <= lp.lp_objective_j * 1.001


def test_dvfs_saving(benchmark, scenario):
    from repro.dvfs import rescale_assignment

    lp = lp_hta(scenario.system, list(scenario.tasks))
    result = benchmark.pedantic(
        lambda: rescale_assignment(
            scenario.system, list(scenario.tasks), lp.assignment
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print(
        f"\nDVFS: {result.nominal_energy_j:.1f} J -> "
        f"{result.scaled_energy_j:.1f} J ({result.saving_fraction:.1%} saved "
        "on the locally-run share)"
    )
    assert result.scaled_energy_j <= result.nominal_energy_j + 1e-9
    # Deadlines leave slack in this scenario: real savings must appear.
    assert result.saving_fraction > 0.01
