"""Fig. 5: energy of the divisible-task algorithms vs holistic LP-HTA.

Paper's reported shape: DTA-Workload and DTA-Number spend far less energy
than LP-HTA (only op-info and partial results move, not raw data); the gap
widens as the workload grows (5a) and as the result size shrinks (5b).
"""

from conftest import BENCH_SEEDS, assert_dominates, run_once, show

from repro.experiments.figures import fig5a, fig5b


def test_fig5a_energy_vs_tasks(benchmark):
    data = run_once(benchmark, fig5a, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "DTA-Workload", "LP-HTA")
    assert_dominates(data, "DTA-Number", "LP-HTA")
    # The absolute saving grows with the number of tasks (the paper: "more
    # raw data are avoided to transmit ... when the amount of tasks
    # increases"), and the saving is large throughout.
    lp, dta = data.values_of("LP-HTA"), data.values_of("DTA-Workload")
    assert lp[-1] - dta[-1] > lp[0] - dta[0]
    assert dta[-1] < 0.6 * lp[-1]


def test_fig5b_energy_vs_result_size(benchmark):
    data = run_once(benchmark, fig5b, seeds=BENCH_SEEDS)
    show(data)
    assert_dominates(data, "DTA-Workload", "LP-HTA")
    assert_dominates(data, "DTA-Number", "LP-HTA")
    for name in ("DTA-Workload", "DTA-Number"):
        values = data.values_of(name)
        # x = 0.4X, 0.2X, 0.1X, 0.05X, const: energy falls as results shrink.
        assert values[0] > values[1] > values[2] > values[3]
        # The constant (10 kB) series is the cheapest of all.
        assert values[4] <= values[3] * 1.02
