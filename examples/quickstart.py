"""Quickstart: build a tiny MEC system by hand and assign tasks with LP-HTA.

Run with::

    python examples/quickstart.py
"""

from repro import (
    FOUR_G,
    WIFI,
    BaseStation,
    MECSystem,
    MobileDevice,
    Subsystem,
    Task,
    lp_hta,
    task_costs,
)
from repro.units import KB, gigahertz


def build_system() -> MECSystem:
    """Two base stations, four devices (two per cluster)."""
    devices = [
        MobileDevice(0, gigahertz(1.2), FOUR_G, max_resource=4.0),
        MobileDevice(1, gigahertz(1.8), WIFI, max_resource=4.0),
        MobileDevice(2, gigahertz(1.0), FOUR_G, max_resource=4.0),
        MobileDevice(3, gigahertz(2.0), WIFI, max_resource=4.0),
    ]
    stations = [
        BaseStation(0, max_resource=20.0),
        BaseStation(1, max_resource=20.0),
    ]
    attachment = {0: 0, 1: 0, 2: 1, 3: 1}
    return MECSystem(devices, stations, attachment)


def build_tasks() -> list:
    """A few tasks, some with external data (in- and cross-cluster)."""
    return [
        # Purely local computation.
        Task(owner_device_id=0, index=0, local_bytes=800 * KB,
             external_bytes=0.0, external_source=None,
             resource_demand=0.8, deadline_s=2.0),
        # Needs data from its cluster neighbour.
        Task(owner_device_id=0, index=1, local_bytes=1200 * KB,
             external_bytes=400 * KB, external_source=1,
             resource_demand=1.6, deadline_s=3.0),
        # Needs data from the *other* cluster: a backhaul hop is priced in.
        Task(owner_device_id=1, index=0, local_bytes=2000 * KB,
             external_bytes=900 * KB, external_source=2,
             resource_demand=2.9, deadline_s=4.0),
        # Big task with a tight deadline: only the base station meets it.
        Task(owner_device_id=3, index=0, local_bytes=3000 * KB,
             external_bytes=1500 * KB, external_source=2,
             resource_demand=4.5, deadline_s=2.8),
    ]


def main() -> None:
    system = build_system()
    tasks = build_tasks()

    print("Per-task costs (energy J / latency s) on device | station | cloud:")
    for task in tasks:
        costs = task_costs(system, task)
        cells = " | ".join(
            f"{e:7.2f} J {t:5.2f} s"
            for e, t in zip(costs.total_energy_j, costs.total_time_s)
        )
        print(f"  task {task.task_id}: {cells}")

    report = lp_hta(system, tasks)
    print("\nLP-HTA assignment:")
    for task, decision in zip(tasks, report.assignment.decisions):
        label = decision.name.lower()
        latency = report.assignment.task_latency_s(tasks.index(task))
        extra = f"latency {latency:.2f} s" if decision is not Subsystem.CANCELLED else ""
        print(f"  task {task.task_id} -> {label:9s} {extra}")
    stats = report.assignment.stats()
    print(
        f"\ntotal energy {stats.total_energy_j:.2f} J, "
        f"mean latency {stats.mean_latency_s:.2f} s, "
        f"ratio bound <= {report.ratio_bound_theorem2:.2f} (Theorem 2)"
    )


if __name__ == "__main__":
    main()
