"""Object tracking: holistic tasks with distributed trajectory data.

The paper's second motivating scenario: a device must return the *whole*
trajectory of a monitored object, but only holds the segment it observed —
the rest lives on whichever device the object passed next.  Trajectory
stitching is order-sensitive, so the task is holistic: all segments must be
gathered at one subsystem.

The script builds trajectory-stitching tasks with tight deadlines, assigns
them with LP-HTA and the baselines, then *replays* the LP-HTA schedule on
the discrete-event simulator — first with the dedicated links the analytic
model assumes (latencies match exactly), then with FIFO contention to show
the queueing a real deployment would add.

Run with::

    python examples/object_tracking.py
"""

import numpy as np

from repro import Task, all_offload, all_to_cloud, hgos, lp_hta
from repro.des import replay_assignment
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_system

NUM_TRACKS = 80
SEGMENT_KB = (300, 1200)


def main() -> None:
    rng = np.random.default_rng(7)
    profile = PAPER_DEFAULTS.with_updates(num_devices=30, num_stations=3)
    system = generate_system(profile, seed=7)

    tasks = []
    for track in range(NUM_TRACKS):
        owner = int(rng.integers(0, profile.num_devices))
        # The local segment plus the segment observed by the next camera.
        local = float(rng.uniform(*SEGMENT_KB)) * KB
        external = float(rng.uniform(*SEGMENT_KB)) * KB
        source = int(rng.choice([d for d in system.devices if d != owner]))
        tasks.append(
            Task(
                owner_device_id=owner, index=track,
                local_bytes=local, external_bytes=external, external_source=source,
                resource_demand=(local + external) / 1e6,
                deadline_s=float(rng.uniform(0.8, 2.5)),  # tracking is urgent
                operation="trajectory-stitch",
            )
        )

    report = lp_hta(system, tasks)
    print("assignment comparison (80 trajectory-stitching tasks):")
    rows = [("LP-HTA", report.assignment)]
    for name, algorithm in (
        ("HGOS", hgos), ("AllToC", all_to_cloud), ("AllOffload", all_offload)
    ):
        rows.append((name, algorithm(system, tasks)))
    for name, assignment in rows:
        stats = assignment.stats()
        print(
            f"  {name:11s} energy {stats.total_energy_j:8.1f} J   "
            f"mean latency {stats.mean_latency_s:5.2f} s   "
            f"missed deadlines {stats.unsatisfied_rate:5.1%}"
        )

    print("\nevent-driven replay of the LP-HTA schedule:")
    dedicated = replay_assignment(system, tasks, report.assignment, contention=False)
    analytic = report.assignment.latencies_s()
    realized = [l for l in dedicated.latencies_s if l is not None]
    drift = max(abs(a - r) for a, r in zip(analytic, realized))
    print(
        f"  dedicated links: makespan {dedicated.makespan_s:.3f} s, "
        f"max drift vs analytic model {drift:.2e} s "
        f"({dedicated.events_processed} events)"
    )
    contended = replay_assignment(system, tasks, report.assignment, contention=True)
    print(
        f"  FIFO contention: makespan {contended.makespan_s:.3f} s, "
        f"mean queueing delay {contended.mean_queueing_delay_s:.3f} s"
    )


if __name__ == "__main__":
    main()
