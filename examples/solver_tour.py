"""A tour of the LP substrate and the approximation-quality machinery.

Shows the pieces LP-HTA is built on:

1. the from-scratch solvers (simplex, dense Mehrotra IPM, structured IPM)
   agreeing on a hand-built LP,
2. the relaxation P2 of a real scenario and what rounding costs,
3. LP-HTA's energy versus the *exact* optimum (branch and bound) on a small
   instance — the empirical approximation ratio next to the Theorem 2 bound.

Run with::

    python examples/solver_tour.py
"""

import numpy as np

from repro import LPHTAOptions, brute_force_hta, cluster_costs, lp_hta
from repro.lp import LinearProgram, solve
from repro.lp.structured import GroupedBoundedLP, solve_structured
from repro.workload import PAPER_DEFAULTS, generate_scenario


def solver_agreement() -> None:
    """All backends solve the same small LP to the same optimum."""
    # min -x0 - 2 x1  s.t.  x0 + x1 <= 4,  x0 <= 3,  x1 <= 3
    lp = LinearProgram(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([4.0]),
        upper_bounds=np.array([3.0, 3.0]),
    )
    print("hand-built LP, three backends:")
    for method in ("simplex", "interior-point", "scipy"):
        result = solve(lp, method)
        print(
            f"  {method:15s} objective {result.objective:8.4f}  "
            f"x = {np.round(result.x, 4)}  ({result.iterations} iterations)"
        )

    # The same feasible region in grouped-bounded form for the structured IPM
    # (groups need an equality, so model x0 + x1 + slack-to-4 = 4).
    grouped = GroupedBoundedLP(
        c=np.array([-1.0, -2.0, 0.0]),
        group_index=np.array([0, 0, 0]),
        group_rhs=np.array([4.0]),
        upper=np.array([3.0, 3.0, np.inf]),
    )
    result = solve_structured(grouped)
    print(
        f"  {'structured-ipm':15s} objective {result.objective:8.4f}  "
        f"x = {np.round(result.x[:2], 4)}  ({result.iterations} iterations)"
    )


def rounding_gap() -> None:
    """P2's fractional optimum vs LP-HTA's rounded, repaired energy."""
    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=160), seed=11)
    report = lp_hta(scenario.system, list(scenario.tasks))
    print("\nP2 relaxation on a 160-task scenario:")
    print(f"  LP optimum E_LP_OPT      {report.lp_objective_j:10.2f} J")
    rounded = sum(c.rounded_energy_j for c in report.clusters)
    print(f"  after rounding (Step 3)  {rounded:10.2f} J")
    print(f"  after repair (Steps 4-6) {report.assignment.total_energy_j():10.2f} J")
    print(f"  migration growth Δ       {report.delta_j:10.2f} J")
    print(f"  Theorem 2 bound          {report.ratio_bound_theorem2:10.2f}")


def empirical_ratio() -> None:
    """LP-HTA vs the exact optimum on a brute-forceable instance."""
    profile = PAPER_DEFAULTS.with_updates(
        num_tasks=10, num_devices=5, num_stations=1,
        device_max_resource=3.0, station_max_resource=8.0,
    )
    scenario = generate_scenario(profile, seed=3)
    costs = cluster_costs(scenario.system, list(scenario.tasks))
    caps = {d: scenario.system.device(d).max_resource for d in scenario.system.devices}
    optimal = brute_force_hta(costs, caps, scenario.system.station(0).max_resource)
    report = lp_hta(scenario.system, list(scenario.tasks), LPHTAOptions())
    print("\n10-task instance, exact vs approximate:")
    if optimal is None:
        print("  no feasible full assignment exists (LP-HTA cancels instead)")
        return
    approx = report.assignment.total_energy_j()
    print(f"  exact optimum   {optimal.total_energy_j():8.2f} J")
    print(f"  LP-HTA          {approx:8.2f} J")
    print(f"  empirical ratio {approx / optimal.total_energy_j():8.3f}  "
          f"(Theorem 2 bound {report.ratio_bound_theorem2:.2f})")


if __name__ == "__main__":
    solver_agreement()
    rounding_gap()
    empirical_ratio()
