"""Building a fully custom MEC system: physics-derived rates, archival.

The paper's experiments use Table I's fixed rates; this example shows the
lower-level substrate a deployment study would use instead:

1. derive each device's rates from physical-layer parameters with the
   Shannon channel model,
2. price the same cell under multi-user interference operating points,
3. run LP-HTA on the custom system, and
4. archive the scenario and assignment to JSON and reload them bit-exact.

Run with::

    python examples/custom_system.py
"""

import json
import tempfile
from pathlib import Path

from repro import BaseStation, MECSystem, MobileDevice, Task, lp_hta
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    load_scenario,
    save_scenario,
)
from repro.system.interference import InterferenceChannel
from repro.system.radio import ShannonChannel
from repro.units import KB, gigahertz
from repro.workload import PAPER_DEFAULTS, Scenario


def shannon_devices() -> list:
    """Four devices whose rates come from channel physics, not Table I."""
    devices = []
    for device_id, (gain_up, gain_down) in enumerate(
        [(2e-6, 4e-6), (1e-6, 2e-6), (6e-7, 1.5e-6), (3e-6, 5e-6)]
    ):
        channel = ShannonChannel(
            uplink_bandwidth_hz=5e6,
            downlink_bandwidth_hz=10e6,
            uplink_gain=gain_up,
            downlink_gain=gain_down,
            device_tx_power_w=0.8,
            station_tx_power_w=10.0,
            device_rx_power_w=1.2,
            noise_power_w=1e-9,
        )
        profile = channel.to_profile(name=f"shannon-{device_id}")
        devices.append(
            MobileDevice(
                device_id=device_id,
                cpu_frequency_hz=gigahertz(1.0 + 0.3 * device_id),
                wireless=profile,
                max_resource=5.0,
            )
        )
    return devices


def main() -> None:
    devices = shannon_devices()
    print("Shannon-derived rates (Mbps up / down):")
    for device in devices:
        print(
            f"  device {device.device_id}: "
            f"{device.wireless.upload_rate_bps / 1e6:6.2f} / "
            f"{device.wireless.download_rate_bps / 1e6:6.2f}"
        )

    system = MECSystem(
        devices=devices,
        stations=[BaseStation(0, max_resource=12.0)],
        attachment={d.device_id: 0 for d in devices},
    )
    tasks = [
        Task(owner_device_id=i % 4, index=i // 4,
             local_bytes=(800 + 400 * i) * KB,
             external_bytes=(200 * (i % 3)) * KB,
             external_source=((i + 1) % 4) if (i % 3) else None,
             resource_demand=1.0 + 0.4 * i, deadline_s=4.0)
        for i in range(8)
    ]
    report = lp_hta(system, tasks)
    print(f"\nLP-HTA on the custom cell: {report.assignment}")
    print(f"  energy {report.assignment.total_energy_j():.2f} J, "
          f"ratio bound <= {report.ratio_bound_theorem2:.2f}")

    # The same cell under shared-spectrum congestion.
    cell = InterferenceChannel(
        bandwidth_hz=5e6, channel_gain=1.5e-6, tx_power_w=0.8,
        noise_power_w=1e-9, orthogonality_loss=0.1,
    )
    print("\nper-user uplink rate if k devices offload simultaneously:")
    for k in (1, 2, 4, 8):
        print(f"  k={k}: {cell.uplink_rate_bps(k) / 1e6:6.2f} Mbps")

    # Archive and reload, bit-exact.
    scenario = Scenario(
        profile=PAPER_DEFAULTS, seed=0, system=system, tasks=tuple(tasks)
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cell.json"
        save_scenario(scenario, path)
        restored = load_scenario(path)
        data = assignment_to_dict(report.assignment)
        rebuilt = assignment_from_dict(data, restored.system, list(restored.tasks))
        print(
            f"\narchived to JSON ({path.stat().st_size} bytes) and reloaded: "
            f"energy {rebuilt.total_energy_j():.2f} J "
            f"(matches: {abs(rebuilt.total_energy_j() - report.assignment.total_energy_j()) < 1e-9})"
        )


if __name__ == "__main__":
    main()
