"""Beyond the paper: the four extension modules in one tour.

1. **Offloading game** — the decentralized Nash-equilibrium baseline the
   paper's related work ([8], [9]) contrasts against: how close does
   uncoordinated best-response get to the LP?
2. **Partial offloading** — the [25]/[26] relaxation: split each task's
   bytes across levels; how much does binary assignment leave on the table?
3. **Online scheduling under mobility** — the quasi-static assumption made
   measurable: devices move, the planner re-runs per epoch, and the report
   audits what association drift cost.
4. **Edge result caching** — the [29] mechanism: Zipf-popular queries hit
   their base station's cache and skip the whole pipeline.
5. **Congestion-aware pricing** — the [9] shared-channel model closed into
   a fixed point: uplink rates depend on how much the assignment offloads.

Run with::

    python examples/extensions_tour.py
"""

from repro import PAPER_DEFAULTS, generate_scenario, lp_hta
from repro.caching import LRUCache, QueryCatalog, simulate_with_cache, zipf_query_stream
from repro.congestion import congestion_aware_assignment
from repro.core.game import best_response_offloading
from repro.mobility import RandomWaypointModel, analyse_handovers
from repro.online import OnlineOptions, PoissonArrivals, simulate_online
from repro.partial import partial_offloading
from repro.system.interference import InterferenceChannel
from repro.units import MB
from repro.workload import generate_system


def game_section(scenario) -> None:
    print("1. decentralized offloading game vs LP-HTA")
    lp = lp_hta(scenario.system, list(scenario.tasks))
    game = best_response_offloading(scenario.system, list(scenario.tasks))
    lp_energy = lp.assignment.total_energy_j()
    game_energy = game.assignment.total_energy_j()
    print(f"   LP-HTA       {lp_energy:8.1f} J (coordinated)")
    print(
        f"   Nash equil.  {game_energy:8.1f} J "
        f"({game.rounds} best-response rounds, converged={game.converged}, "
        f"price of anarchy ~ {game_energy / lp_energy:.2f})"
    )


def partial_section(scenario) -> None:
    print("\n2. partial offloading (fractional splits)")
    lp = lp_hta(scenario.system, list(scenario.tasks))
    split = partial_offloading(scenario.system, list(scenario.tasks))
    print(f"   binary LP-HTA {lp.assignment.total_energy_j():8.1f} J")
    print(
        f"   fractional    {split.total_energy_j:8.1f} J "
        f"({split.num_fractional} tasks genuinely split)"
    )


def online_section() -> None:
    print("\n3. online scheduling under mobility")
    profile = PAPER_DEFAULTS
    system = generate_system(profile, seed=0)
    positions = {d: dev.position for d, dev in system.devices.items()}
    mobility = RandomWaypointModel(
        sorted(system.devices), area_side_m=2000.0,
        speed_range_mps=(2.0, 15.0), seed=1, initial_positions=positions,
    )
    stations = {sid: s.position for sid, s in system.stations.items()}
    for epoch in (30.0, 120.0, 480.0):
        analysis = analyse_handovers(mobility, stations, 960.0, epoch)
        print(
            f"   epoch {epoch:5.0f} s: quasi-static violated for "
            f"{analysis.violation_rate:5.1%} of device-epochs"
        )
    arrivals = PoissonArrivals(system, profile, rate_per_s=0.5, seed=2).generate(600.0)
    report = simulate_online(
        system, arrivals, OnlineOptions(epoch_length_s=60.0), mobility=mobility
    )
    print(
        f"   LP-HTA online: {report.total_tasks} tasks in {len(report.epochs)} "
        f"epochs, planned {report.total_planned_energy_j:.0f} J, drift cost "
        f"{report.drift_energy_gap_j:+.1f} J, realized miss rate "
        f"{report.mean_realized_unsatisfied:.1%}"
    )


def caching_section() -> None:
    print("\n4. edge result caching on a Zipf query stream")
    system = generate_system(PAPER_DEFAULTS, seed=0)
    catalog = QueryCatalog.generate(system, PAPER_DEFAULTS, num_queries=80, seed=1)
    stream = zipf_query_stream(system, catalog, length=600, exponent=1.3, seed=2)
    report = simulate_with_cache(system, stream, lambda: LRUCache(20 * MB))
    print(
        f"   hit rate {report.hit_rate:.0%}: energy "
        f"{report.uncached_energy_j:.0f} J -> {report.cached_energy_j:.0f} J "
        f"({report.energy_saving_fraction:.0%} saved), latency "
        f"{report.uncached_mean_latency_s:.2f} s -> "
        f"{report.cached_mean_latency_s:.2f} s"
    )


def congestion_section(scenario) -> None:
    print("\n5. congestion-aware pricing (shared uplink spectrum)")
    channel = InterferenceChannel(
        bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
        noise_power_w=1e-9, orthogonality_loss=0.02,
    )
    result = congestion_aware_assignment(
        scenario.system, list(scenario.tasks), channel
    )
    print(
        f"   fixed point in {result.iterations} rounds "
        f"(converged={result.converged}); congestion-blind estimate "
        f"{result.naive_energy_j:.0f} J, self-consistent energy "
        f"{result.final_energy_j:.0f} J "
        f"({result.congestion_penalty_j:+.0f} J hidden by blind pricing)"
    )


if __name__ == "__main__":
    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=150), seed=4)
    game_section(scenario)
    partial_section(scenario)
    online_section()
    caching_section()
    congestion_section(scenario)
