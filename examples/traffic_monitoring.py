"""Intelligent traffic monitoring: the paper's motivating divisible workload.

A city is divided into monitoring regions; each vehicle-mounted device
samples the traffic flow of the regions around it, so nearby devices hold
overlapping data.  Users ask for the *average flow rate over the whole
city* — a divisible (Sum/Count) task whose input is spread across devices.

The script contrasts three ways of answering the queries:

1. LP-HTA on the holistic reading (raw region data is shipped around),
2. DTA-Workload (balanced data division + task rearrangement),
3. DTA-Number (fewest devices involved).

Run with::

    python examples/traffic_monitoring.py
"""

import numpy as np

from repro import Task, lp_hta, run_dta
from repro.data import spatial_grid_universe
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_system

CITY_SIDE_M = 2000.0
GRID_SIDE = 16
SENSING_RADIUS_M = 450.0
NUM_QUERIES = 60
REGIONS_PER_QUERY = 24


def main() -> None:
    rng = np.random.default_rng(42)
    profile = PAPER_DEFAULTS.with_updates(num_devices=40, num_stations=4)
    system = generate_system(profile, seed=42, area_side_m=CITY_SIDE_M)

    positions = {
        device_id: device.position for device_id, device in system.devices.items()
    }
    catalog, ownership = spatial_grid_universe(
        grid_side=GRID_SIDE,
        device_positions=positions,
        area_side_m=CITY_SIDE_M,
        sensing_radius_m=SENSING_RADIUS_M,
        mean_size_bytes=200 * KB,
        seed=42,
    )
    print(
        f"city universe: {len(catalog)} sensed regions, "
        f"{len(ownership.all_items())} covered, "
        f"mean replication "
        f"{np.mean([ownership.replication_of(i) for i in catalog.item_ids]):.1f}"
    )

    # Each query averages the flow over a random set of regions.
    item_ids = sorted(catalog.item_ids)
    tasks = []
    for query in range(NUM_QUERIES):
        owner = int(rng.integers(0, profile.num_devices))
        required = frozenset(
            int(i)
            for i in rng.choice(item_ids, size=min(REGIONS_PER_QUERY, len(item_ids)),
                                replace=False)
        )
        owned = ownership.items_of(owner) & required
        missing = required - owned
        alpha = catalog.total_bytes(owned)
        beta = catalog.total_bytes(missing)
        source = None
        if beta > 0:
            holders = {}
            for item in missing:
                for holder in ownership.owners_of(item):
                    if holder != owner:
                        holders[holder] = holders.get(holder, 0) + 1
            source = max(sorted(holders), key=lambda d: holders[d])
        tasks.append(
            Task(
                owner_device_id=owner, index=query,
                local_bytes=alpha, external_bytes=beta, external_source=source,
                resource_demand=(alpha + beta) / 1e6,
                deadline_s=5.0, divisible=True, required_items=required,
                operation="avg-flow-rate",
            )
        )

    holistic = lp_hta(system, tasks)
    print(
        f"\nholistic (LP-HTA, raw data moves):   "
        f"energy {holistic.assignment.total_energy_j():9.1f} J"
    )
    for objective in ("workload", "number"):
        outcome = run_dta(system, tasks, ownership, catalog, objective=objective)
        name = "DTA-Workload" if objective == "workload" else "DTA-Number  "
        print(
            f"{name} (rearranged):          "
            f"energy {outcome.total_energy_j:9.1f} J  "
            f"processing {outcome.processing_time_s:6.2f} s  "
            f"devices {outcome.involved_devices:2d}  "
            f"(op-info {outcome.op_info_energy_j:.1f} J, "
            f"partials {outcome.partial_result_energy_j:.1f} J)"
        )


if __name__ == "__main__":
    main()
