"""The structured (grouped-bounded) interior-point solver."""

import numpy as np
import pytest

from repro.lp.result import LPStatus
from repro.lp.structured import (
    GroupedBoundedLP,
    StructuredIPMOptions,
    solve_structured,
)


def _assignment_lp() -> GroupedBoundedLP:
    """Two tasks × three subsystems, one coupling row."""
    return GroupedBoundedLP(
        c=np.array([1.0, 2.0, 3.0, 3.0, 2.0, 1.0]),
        group_index=np.array([0, 0, 0, 1, 1, 1]),
        group_rhs=np.array([1.0, 1.0]),
        coupling_a=np.array([[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]]),
        coupling_b=np.array([1.0]),
        upper=np.ones(6),
    )


class TestValidation:
    def test_group_index_range(self):
        with pytest.raises(ValueError):
            GroupedBoundedLP(
                c=np.ones(2), group_index=np.array([0, 5]), group_rhs=np.ones(1)
            )

    def test_coupling_dimensions(self):
        with pytest.raises(ValueError):
            GroupedBoundedLP(
                c=np.ones(2), group_index=np.zeros(2, dtype=int),
                group_rhs=np.ones(1),
                coupling_a=np.ones((1, 3)), coupling_b=np.ones(1),
            )

    def test_nonpositive_upper_rejected(self):
        with pytest.raises(ValueError):
            GroupedBoundedLP(
                c=np.ones(1), group_index=np.zeros(1, dtype=int),
                group_rhs=np.ones(1), upper=np.array([0.0]),
            )


class TestSmallSolutions:
    def test_picks_cheapest_in_each_group(self):
        lp = GroupedBoundedLP(
            c=np.array([5.0, 1.0, 9.0, 2.0, 8.0, 8.0]),
            group_index=np.array([0, 0, 0, 1, 1, 1]),
            group_rhs=np.array([1.0, 1.0]),
            upper=np.ones(6),
        )
        result = solve_structured(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(3.0, abs=1e-6)
        assert result.x[1] == pytest.approx(1.0, abs=1e-6)
        assert result.x[3] == pytest.approx(1.0, abs=1e-6)

    def test_coupling_forces_split(self):
        lp = _assignment_lp()
        result = solve_structured(lp)
        assert result.status is LPStatus.OPTIMAL
        # Both groups want their cost-1 variable, but the coupling row caps
        # x0 + x3 at 1; group 1's cheapest (x5) is outside the coupling row.
        assert result.objective == pytest.approx(2.0, abs=1e-6)
        assert lp.is_feasible(result.x, tol=1e-6)

    def test_group_sums(self):
        lp = _assignment_lp()
        sums = lp.group_sums(np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
        assert sums == pytest.approx([6.0, 15.0])

    def test_upper_bounds_respected(self):
        lp = GroupedBoundedLP(
            c=np.array([1.0, 10.0]),
            group_index=np.array([0, 0]),
            group_rhs=np.array([1.0]),
            upper=np.array([0.25, np.inf]),
        )
        result = solve_structured(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.x[0] == pytest.approx(0.25, abs=1e-6)
        assert result.x[1] == pytest.approx(0.75, abs=1e-6)


class TestAgainstScipy:
    @staticmethod
    def _reference(lp: GroupedBoundedLP):
        from scipy.optimize import linprog

        n = lp.num_vars
        a_eq = np.zeros((lp.num_groups, n))
        for i, g in enumerate(lp.group_index):
            a_eq[g, i] = 1.0
        bounds = [(0.0, u if np.isfinite(u) else None) for u in lp.upper]
        return linprog(
            lp.c,
            A_ub=lp.coupling_a if lp.num_coupling else None,
            b_ub=lp.coupling_b if lp.num_coupling else None,
            A_eq=a_eq, b_eq=lp.group_rhs, bounds=bounds, method="highs",
        )

    def test_random_instances(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            groups = int(rng.integers(2, 8))
            n = groups * 3
            c = rng.uniform(0.1, 10.0, size=n)
            gidx = np.repeat(np.arange(groups), 3)
            k = int(rng.integers(0, 4))
            coupling = np.zeros((k, n))
            for row in range(k):
                mask = rng.uniform(size=n) < 0.4
                coupling[row, mask] = rng.uniform(0.5, 2.0, size=int(mask.sum()))
            b = coupling @ np.full(n, 1 / 3) * rng.uniform(0.9, 1.5, size=k) + 0.05
            ub = np.where(rng.uniform(size=n) < 0.5, rng.uniform(0.5, 1.5, size=n), np.inf)
            lp = GroupedBoundedLP(c, gidx, np.ones(groups),
                                  coupling if k else None, b if k else None, ub)
            ours = solve_structured(lp)
            ref = self._reference(lp)
            if ref.status == 0:
                assert ours.status is LPStatus.OPTIMAL
                assert ours.objective == pytest.approx(ref.fun, abs=1e-5)
                assert lp.is_feasible(ours.x, tol=1e-5)

    def test_large_instance_converges_fast(self):
        rng = np.random.default_rng(9)
        groups = 500
        n = groups * 3
        gidx = np.repeat(np.arange(groups), 3)
        c = rng.uniform(0.1, 10.0, size=n)
        lp = GroupedBoundedLP(c, gidx, np.ones(groups), upper=np.ones(n))
        result = solve_structured(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.iterations < 60
        # Without coupling the optimum is the per-group minimum.
        expected = c.reshape(groups, 3).min(axis=1).sum()
        assert result.objective == pytest.approx(expected, abs=1e-4)

    def test_iteration_limit(self):
        lp = _assignment_lp()
        result = solve_structured(lp, StructuredIPMOptions(max_iterations=1))
        assert result.status in (LPStatus.ITERATION_LIMIT, LPStatus.OPTIMAL)
