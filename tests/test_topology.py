"""The MECSystem topology container."""

import pytest

from repro.system.devices import BaseStation, MobileDevice
from repro.system.radio import FOUR_G
from repro.system.topology import MECSystem, nearest_station_attachment
from repro.units import gigahertz


def _device(device_id: int) -> MobileDevice:
    return MobileDevice(device_id, gigahertz(1.0), FOUR_G, max_resource=1.0)


class TestConstruction:
    def test_clusters(self, two_cluster_system):
        assert two_cluster_system.num_devices == 4
        assert two_cluster_system.num_stations == 2
        assert two_cluster_system.cluster_members(0) == (0, 1)
        assert two_cluster_system.cluster_members(1) == (2, 3)
        assert two_cluster_system.cluster_sizes() == {0: 2, 1: 2}

    def test_same_cluster(self, two_cluster_system):
        assert two_cluster_system.same_cluster(0, 1)
        assert not two_cluster_system.same_cluster(0, 2)

    def test_station_of(self, two_cluster_system):
        assert two_cluster_system.station_of(3).station_id == 1
        assert two_cluster_system.cluster_of(3) == 1

    def test_duplicate_device_rejected(self):
        with pytest.raises(ValueError, match="duplicate device"):
            MECSystem([_device(0), _device(0)], [BaseStation(0)], {0: 0})

    def test_duplicate_station_rejected(self):
        with pytest.raises(ValueError, match="duplicate station"):
            MECSystem([_device(0)], [BaseStation(0), BaseStation(0)], {0: 0})

    def test_unattached_device_rejected(self):
        with pytest.raises(ValueError, match="without a base station"):
            MECSystem([_device(0), _device(1)], [BaseStation(0)], {0: 0})

    def test_unknown_station_rejected(self):
        with pytest.raises(ValueError, match="unknown station"):
            MECSystem([_device(0)], [BaseStation(0)], {0: 7})

    def test_unknown_device_in_attachment_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            MECSystem([_device(0)], [BaseStation(0)], {0: 0, 9: 0})

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            MECSystem([], [BaseStation(0)], {})
        with pytest.raises(ValueError):
            MECSystem([_device(0)], [], {0: 0})


class TestNetworkxExport:
    def test_graph_shape(self, two_cluster_system):
        graph = two_cluster_system.to_networkx()
        # 4 devices + 2 stations + cloud.
        assert graph.number_of_nodes() == 7
        # 4 radio + 1 backhaul + 2 wan.
        kinds = [data["kind"] for _, _, data in graph.edges(data=True)]
        assert kinds.count("radio") == 4
        assert kinds.count("backhaul") == 1
        assert kinds.count("wan") == 2

    def test_devices_attach_to_their_station(self, two_cluster_system):
        graph = two_cluster_system.to_networkx()
        assert graph.has_edge(("device", 0), ("station", 0))
        assert graph.has_edge(("device", 2), ("station", 1))
        assert not graph.has_edge(("device", 0), ("station", 1))

    def test_repr(self, two_cluster_system):
        assert "devices=4" in repr(two_cluster_system)


def _placed_device(device_id: int, position) -> MobileDevice:
    return MobileDevice(
        device_id, gigahertz(1.0), FOUR_G, max_resource=1.0, position=position
    )


class TestNearestStationAttachment:
    def test_single_station_takes_everyone(self):
        attachment = nearest_station_attachment(
            [_placed_device(0, (0.0, 0.0)), _placed_device(1, (900.0, 900.0))],
            [BaseStation(0, position=(50.0, 50.0))],
        )
        assert attachment == {0: 0, 1: 0}

    def test_equidistant_tie_breaks_to_lowest_id(self):
        # Device 0 sits exactly halfway between stations 0 and 1 — and the
        # station list is given in descending id order to prove the tie
        # break depends on ids, not input ordering.
        attachment = nearest_station_attachment(
            [_placed_device(0, (50.0, 0.0))],
            [
                BaseStation(1, position=(100.0, 0.0)),
                BaseStation(0, position=(0.0, 0.0)),
            ],
        )
        assert attachment == {0: 0}

    def test_nearest_wins(self):
        attachment = nearest_station_attachment(
            [_placed_device(0, (10.0, 0.0)), _placed_device(1, (90.0, 0.0))],
            [
                BaseStation(0, position=(0.0, 0.0)),
                BaseStation(1, position=(100.0, 0.0)),
            ],
        )
        assert attachment == {0: 0, 1: 1}

    def test_missing_positions_rejected(self):
        with pytest.raises(ValueError, match="has no position"):
            nearest_station_attachment(
                [_device(0)], [BaseStation(0, position=(0.0, 0.0))]
            )
        with pytest.raises(ValueError, match="has no position"):
            nearest_station_attachment(
                [_placed_device(0, (0.0, 0.0))], [BaseStation(0)]
            )

    def test_no_stations_rejected(self):
        with pytest.raises(ValueError, match="at least one station"):
            nearest_station_attachment([_placed_device(0, (0.0, 0.0))], [])


class TestWithoutDevices:
    def test_departure_can_empty_a_cluster(self, two_cluster_system):
        # Cluster 1 loses both members; its station must survive, empty.
        smaller = two_cluster_system.without_devices([2, 3])
        assert smaller.num_devices == 2
        assert smaller.num_stations == 2
        assert smaller.cluster_members(1) == ()
        assert smaller.cluster_sizes() == {0: 2, 1: 0}

    def test_unknown_device_rejected(self, two_cluster_system):
        with pytest.raises(KeyError, match="unknown device"):
            two_cluster_system.without_devices([99])

    def test_removing_every_device_rejected(self, two_cluster_system):
        with pytest.raises(ValueError):
            two_cluster_system.without_devices([0, 1, 2, 3])

    def test_survivors_keep_their_attachment(self, two_cluster_system):
        smaller = two_cluster_system.without_devices([1])
        assert smaller.cluster_of(0) == two_cluster_system.cluster_of(0)
        assert smaller.cluster_of(2) == two_cluster_system.cluster_of(2)
