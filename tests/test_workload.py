"""Workload profiles and scenario generation."""

import pytest

from repro.units import KB
from repro.workload.generator import (
    _tasks_per_device,
    generate_scenario,
    generate_system,
    generate_tasks,
)
from repro.workload.profiles import PAPER_DEFAULTS


class TestProfile:
    def test_paper_defaults(self):
        assert PAPER_DEFAULTS.max_input_bytes == pytest.approx(3000 * KB)
        assert PAPER_DEFAULTS.external_ratio_range == (0.0, 0.5)
        assert PAPER_DEFAULTS.result_ratio == 0.2
        assert PAPER_DEFAULTS.device_frequency_range_hz == (1e9, 2e9)

    def test_with_updates(self):
        profile = PAPER_DEFAULTS.with_updates(num_tasks=999)
        assert profile.num_tasks == 999
        assert profile.num_devices == PAPER_DEFAULTS.num_devices
        assert PAPER_DEFAULTS.num_tasks != 999  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(num_tasks=0)
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(num_devices=2, num_stations=4)
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(external_ratio_range=(0.5, 0.1))
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(deadline_range_s=(0.0, 1.0))
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(wifi_probability=1.5)
        with pytest.raises(ValueError):
            PAPER_DEFAULTS.with_updates(item_replication=0.2)


class TestSystemGeneration:
    def test_counts(self):
        system = generate_system(PAPER_DEFAULTS, seed=0)
        assert system.num_devices == PAPER_DEFAULTS.num_devices
        assert system.num_stations == PAPER_DEFAULTS.num_stations

    def test_frequencies_in_range(self):
        system = generate_system(PAPER_DEFAULTS, seed=0)
        lo, hi = PAPER_DEFAULTS.device_frequency_range_hz
        for device in system.devices.values():
            assert lo <= device.cpu_frequency_hz <= hi

    def test_radio_mix(self):
        system = generate_system(PAPER_DEFAULTS.with_updates(num_devices=200,
                                                             num_tasks=200), seed=0)
        names = {device.wireless.name for device in system.devices.values()}
        assert names == {"4G", "Wi-Fi"}

    def test_round_robin_attachment(self):
        system = generate_system(PAPER_DEFAULTS, seed=0)
        sizes = system.cluster_sizes()
        assert max(sizes.values()) - min(sizes.values()) <= 1

    def test_deterministic(self):
        a = generate_system(PAPER_DEFAULTS, seed=3)
        b = generate_system(PAPER_DEFAULTS, seed=3)
        assert a.device(5).cpu_frequency_hz == b.device(5).cpu_frequency_hz
        assert a.device(5).wireless.name == b.device(5).wireless.name


class TestTaskGeneration:
    def test_task_spread(self):
        assert _tasks_per_device(10, 4) == [3, 3, 2, 2]
        assert _tasks_per_device(8, 4) == [2, 2, 2, 2]
        assert sum(_tasks_per_device(450, 40)) == 450

    def test_sizes_respect_maximum(self):
        scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=100), seed=1)
        for task in scenario.tasks:
            assert task.input_bytes <= PAPER_DEFAULTS.max_input_bytes + 1e-6

    def test_external_ratio_band(self):
        scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=200), seed=1)
        for task in scenario.tasks:
            if task.local_bytes > 0:
                ratio = task.external_bytes / task.local_bytes
                assert ratio <= 0.5 + 1e-9

    def test_external_sources_valid(self):
        scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=150), seed=2)
        for task in scenario.tasks:
            if task.has_external_data:
                assert task.external_source in scenario.system.devices
                assert task.external_source != task.owner_device_id

    def test_deadlines_in_range(self):
        scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=80), seed=0)
        lo, hi = PAPER_DEFAULTS.deadline_range_s
        for task in scenario.tasks:
            assert lo <= task.deadline_s <= hi

    def test_divisible_needs_catalog(self):
        system = generate_system(PAPER_DEFAULTS, seed=0)
        with pytest.raises(ValueError, match="catalog"):
            generate_tasks(system, PAPER_DEFAULTS.with_updates(divisible=True), seed=0)


class TestDivisibleScenario:
    def test_catalog_and_ownership_present(self, divisible_scenario):
        assert divisible_scenario.catalog is not None
        assert divisible_scenario.ownership is not None

    def test_required_items_exist(self, divisible_scenario):
        for task in divisible_scenario.tasks:
            assert task.required_items <= divisible_scenario.catalog.item_ids

    def test_alpha_beta_match_item_sizes(self, divisible_scenario):
        catalog = divisible_scenario.catalog
        ownership = divisible_scenario.ownership
        for task in divisible_scenario.tasks:
            owned = ownership.items_of(task.owner_device_id) & task.required_items
            missing = task.required_items - owned
            if task.external_source is not None:
                assert task.local_bytes == pytest.approx(catalog.total_bytes(owned))
                assert task.external_bytes == pytest.approx(
                    catalog.total_bytes(missing)
                )

    def test_universe_property(self, divisible_scenario):
        universe = divisible_scenario.universe
        for task in divisible_scenario.tasks:
            assert task.required_items <= universe

    def test_scenario_determinism(self):
        profile = PAPER_DEFAULTS.with_updates(
            num_tasks=30, num_devices=8, num_stations=2, divisible=True,
            num_data_items=40,
        )
        a = generate_scenario(profile, seed=9)
        b = generate_scenario(profile, seed=9)
        assert [t.task_id for t in a.tasks] == [t.task_id for t in b.tasks]
        assert [t.local_bytes for t in a.tasks] == [t.local_bytes for t in b.tasks]
