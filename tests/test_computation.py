"""Computation model: cycles, compute time/energy, result sizes."""

import pytest

from repro.system.computation import (
    DEFAULT_CYCLES_PER_BYTE,
    DEFAULT_KAPPA,
    CyclesModel,
    ResultSizeModel,
    compute_energy_j,
    compute_time_s,
)


class TestPaperConstants:
    def test_lambda_is_330_cycles_per_byte(self):
        assert DEFAULT_CYCLES_PER_BYTE == 330.0

    def test_kappa_is_1e_minus_27(self):
        assert DEFAULT_KAPPA == 1e-27


class TestComputeTime:
    def test_time_is_cycles_over_frequency(self):
        assert compute_time_s(3e9, 1.5e9) == pytest.approx(2.0)

    def test_zero_cycles_take_no_time(self):
        assert compute_time_s(0.0, 1e9) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_time_s(-1.0, 1e9)
        with pytest.raises(ValueError):
            compute_time_s(1.0, 0.0)


class TestComputeEnergy:
    def test_eq2_formula(self):
        # E = kappa * cycles * f^2
        assert compute_energy_j(1e9, 2e9, kappa=1e-27) == pytest.approx(
            1e-27 * 1e9 * 4e18
        )

    def test_quadratic_in_frequency(self):
        e1 = compute_energy_j(1e9, 1e9)
        e2 = compute_energy_j(1e9, 2e9)
        assert e2 == pytest.approx(4 * e1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_energy_j(-1.0, 1e9)
        with pytest.raises(ValueError):
            compute_energy_j(1.0, -1e9)
        with pytest.raises(ValueError):
            compute_energy_j(1.0, 1e9, kappa=-1.0)


class TestCyclesModel:
    def test_linear_in_input(self):
        model = CyclesModel()
        assert model.cycles_on_device(1000.0) == pytest.approx(330_000.0)

    def test_per_subsystem_multipliers(self):
        model = CyclesModel(
            cycles_per_byte=100.0,
            device_multiplier=1.0,
            station_multiplier=2.0,
            cloud_multiplier=0.5,
        )
        assert model.cycles_on_device(10.0) == pytest.approx(1000.0)
        assert model.cycles_on_station(10.0) == pytest.approx(2000.0)
        assert model.cycles_on_cloud(10.0) == pytest.approx(500.0)

    def test_rejects_nonpositive_multipliers(self):
        with pytest.raises(ValueError):
            CyclesModel(station_multiplier=0.0)


class TestResultSizeModel:
    def test_proportional(self):
        model = ResultSizeModel.proportional(0.2)
        assert model.result_bytes(1000.0) == pytest.approx(200.0)
        assert not model.is_constant

    def test_constant(self):
        model = ResultSizeModel.constant(5000.0)
        assert model.result_bytes(10.0) == 5000.0
        assert model.result_bytes(1e9) == 5000.0
        assert model.is_constant

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError):
            ResultSizeModel().result_bytes(-1.0)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ResultSizeModel(ratio=-0.1)
        with pytest.raises(ValueError):
            ResultSizeModel.constant(-1.0)
