"""The batched block-diagonal LP path: batched == sequential, block for block.

The lockstep mega-solvers (:func:`solve_structured_batch`,
:func:`solve_interior_point_batch`) advance every pooled block through the
exact floating-point trajectory the sequential solver would produce:
elementwise work runs on the concatenated state, every reduction and
factorisation runs on a block's contiguous slice, and converged blocks are
frozen while stragglers continue.  These tests pin that contract — same
objectives (to 1e-9 and bitwise), same iteration counts, same ``lp_hta``
assignments with batching on or off — over ragged batches, batches of one,
and batches whose blocks converge at very different iterations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.context import RunContext, use_context
from repro.core.hta import LPHTAOptions, lp_hta, lp_hta_batch
from repro.core.lp_builder import BatchedProblem
from repro.lp import LinearProgram
from repro.lp.interior_point import solve_interior_point, solve_interior_point_batch
from repro.lp.structured import (
    GroupedBoundedLP,
    solve_structured,
    solve_structured_batch,
)
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _random_grouped(rng: np.random.Generator, num_groups: int) -> GroupedBoundedLP:
    """A feasible random P2-shaped block (transportation-like)."""
    sizes = rng.integers(2, 5, size=num_groups)
    n = int(sizes.sum())
    group_index = np.repeat(np.arange(num_groups), sizes)
    c = rng.uniform(0.5, 10.0, size=n)
    upper = np.ones(n)
    upper[rng.random(n) < 0.25] = np.inf
    # Spreading each group's unit mass evenly is feasible for the groups and
    # the bounds; padding the coupling rhs above that point keeps K rows
    # feasible too.
    x_feasible = 1.0 / np.repeat(sizes, sizes)
    k = int(rng.integers(0, 3))
    if k:
        coupling_a = (rng.random((k, n)) < 0.4).astype(float)
        coupling_b = coupling_a @ x_feasible + rng.uniform(0.1, 1.0, size=k)
    else:
        coupling_a = None
        coupling_b = None
    return GroupedBoundedLP(
        c=c,
        group_index=group_index,
        group_rhs=np.ones(num_groups),
        coupling_a=coupling_a,
        coupling_b=coupling_b,
        upper=upper,
    )


def _random_generic(rng: np.random.Generator, num_groups: int) -> LinearProgram:
    """The same shape as :func:`_random_grouped`, in generic bounded form."""
    grouped = _random_grouped(rng, num_groups)
    n = grouped.c.shape[0]
    a_eq = np.zeros((num_groups, n))
    a_eq[grouped.group_index, np.arange(n)] = 1.0
    a_ub = grouped.coupling_a if grouped.coupling_a is not None else None
    b_ub = grouped.coupling_b if a_ub is not None else None
    return LinearProgram(
        c=grouped.c,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=grouped.group_rhs,
        upper_bounds=grouped.upper,
    )


def _assert_block_equal(batched, sequential):
    """One block of a batch solve must replay its sequential solve exactly."""
    assert batched.status is sequential.status
    assert batched.iterations == sequential.iterations
    assert batched.objective == pytest.approx(sequential.objective, abs=1e-9)
    if sequential.x is None:
        assert batched.x is None
    else:
        assert np.array_equal(batched.x, sequential.x)


class TestStructuredBatch:
    """solve_structured_batch vs per-block solve_structured."""

    def test_ragged_batch_block_for_block(self):
        rng = np.random.default_rng(0)
        blocks = [_random_grouped(rng, int(g)) for g in (1, 7, 2, 12, 4, 30)]
        batched = solve_structured_batch(blocks)
        sequential = [solve_structured(block) for block in blocks]
        assert len(batched) == len(blocks)
        for b, s in zip(batched, sequential):
            _assert_block_equal(b, s)

    def test_batch_of_one(self):
        rng = np.random.default_rng(1)
        block = _random_grouped(rng, 5)
        (batched,) = solve_structured_batch([block])
        _assert_block_equal(batched, solve_structured(block))

    def test_converged_blocks_freeze_while_stragglers_continue(self):
        # A trivial block converges many iterations before a large coupled
        # one; lockstep masking must report each block's own convergence
        # iteration (a frozen block does not keep counting), and freezing
        # must not perturb the straggler's trajectory.
        rng = np.random.default_rng(2)
        trivial = GroupedBoundedLP(
            c=np.array([1.0, 2.0]),
            group_index=np.array([0, 0]),
            group_rhs=np.array([1.0]),
            upper=np.ones(2),
        )
        straggler = _random_grouped(rng, 40)
        sequential = [solve_structured(b) for b in (trivial, straggler)]
        assert sequential[0].iterations < sequential[1].iterations
        for order in ((trivial, straggler), (straggler, trivial)):
            batched = solve_structured_batch(list(order))
            expected = sequential if order[0] is trivial else sequential[::-1]
            for b, s in zip(batched, expected):
                _assert_block_equal(b, s)


class TestInteriorPointBatch:
    """solve_interior_point_batch vs per-problem solve_interior_point."""

    def test_ragged_batch_block_for_block(self):
        rng = np.random.default_rng(3)
        problems = [_random_generic(rng, int(g)) for g in (1, 6, 3, 15)]
        batched = solve_interior_point_batch(problems)
        sequential = [solve_interior_point(p) for p in problems]
        for b, s in zip(batched, sequential):
            _assert_block_equal(b, s)

    def test_batch_of_one(self):
        rng = np.random.default_rng(4)
        problem = _random_generic(rng, 4)
        (batched,) = solve_interior_point_batch([problem])
        _assert_block_equal(batched, solve_interior_point(problem))

    def test_batched_problem_input_equals_sequence_input(self):
        rng = np.random.default_rng(5)
        problems = [_random_generic(rng, int(g)) for g in (2, 9, 5)]
        from_sequence = solve_interior_point_batch(problems)
        from_batched = solve_interior_point_batch(BatchedProblem(problems))
        for b, s in zip(from_batched, from_sequence):
            _assert_block_equal(b, s)


@st.composite
def small_profile(draw):
    """A small random scenario profile + seed (multi-cluster by default)."""
    num_stations = draw(st.integers(min_value=1, max_value=3))
    num_devices = num_stations * draw(st.integers(min_value=2, max_value=4))
    profile = PAPER_DEFAULTS.with_updates(
        num_stations=num_stations,
        num_devices=num_devices,
        num_tasks=draw(st.integers(min_value=5, max_value=30)),
        max_input_bytes=draw(st.floats(min_value=500e3, max_value=4000e3)),
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return profile, seed


def _reports_identical(a, b):
    assert a.assignment.decisions == b.assignment.decisions
    assert a.clusters == b.clusters  # exact energies, objectives, deltas


class TestLPHTABatched:
    """lp_hta with batching on emits exactly the sequential output."""

    @settings(max_examples=10, deadline=None)
    @given(small_profile())
    def test_batched_equals_sequential_assignments(self, case):
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        tasks = list(scenario.tasks)
        with use_context(RunContext(lp_batch=True)) as batched_ctx:
            batched = lp_hta(scenario.system, tasks, context=batched_ctx)
        with use_context(RunContext(lp_batch=False)) as sequential_ctx:
            sequential = lp_hta(scenario.system, tasks, context=sequential_ctx)
        _reports_identical(batched, sequential)
        assert sequential_ctx.telemetry.batch_solves == 0
        if len(batched.clusters) >= 2:
            assert batched_ctx.telemetry.batch_solves == 1
            assert (
                batched_ctx.telemetry.batched_blocks == len(batched.clusters)
            )
        # Batched or not, the same per-block iterations are observed —
        # unless a block failed its primary solve: the batch path then
        # falls back to the full sequential ladder, whose first rung
        # repeats the failed solve, so its iterations are counted twice.
        # Equal solve counts mean no fallback fired.
        if batched_ctx.telemetry.solves == sequential_ctx.telemetry.solves:
            assert (
                batched_ctx.telemetry.lp_iterations
                == sequential_ctx.telemetry.lp_iterations
            )

    def test_interior_point_backend_batches_identically(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=40), seed=2
        )
        tasks = list(scenario.tasks)
        options = LPHTAOptions(backend="interior-point")
        with use_context(RunContext(lp_batch=True)) as batched_ctx:
            batched = lp_hta(scenario.system, tasks, options, context=batched_ctx)
        with use_context(RunContext(lp_batch=False)) as sequential_ctx:
            sequential = lp_hta(
                scenario.system, tasks, options, context=sequential_ctx
            )
        _reports_identical(batched, sequential)
        assert batched_ctx.telemetry.batch_solves == 1

    def test_single_cluster_stays_sequential(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(
                num_stations=1, num_devices=4, num_tasks=10
            ),
            seed=0,
        )
        context = RunContext(lp_batch=True)
        report = lp_hta(scenario.system, list(scenario.tasks), context=context)
        assert len(report.clusters) == 1
        assert context.telemetry.batch_solves == 0  # blocks >= 2 gate
        assert context.telemetry.solves == 1


class TestLPHTABatchEntryPoint:
    """lp_hta_batch pools every input's clusters into one mega-solve."""

    def _jobs(self):
        jobs = []
        for seed in range(3):
            scenario = generate_scenario(
                PAPER_DEFAULTS.with_updates(num_tasks=10 + 5 * seed), seed=seed
            )
            jobs.append((scenario.system, list(scenario.tasks)))
        return jobs

    def test_matches_per_job_lp_hta(self):
        jobs = self._jobs()
        with use_context(RunContext(lp_batch=True)) as batched_ctx:
            batched = lp_hta_batch(jobs, context=batched_ctx)
        sequential = []
        with use_context(RunContext(lp_batch=False)) as sequential_ctx:
            for system, tasks in jobs:
                sequential.append(lp_hta(system, tasks, context=sequential_ctx))
        assert len(batched) == len(sequential)
        for b, s in zip(batched, sequential):
            _reports_identical(b, s)
        total_clusters = sum(len(r.clusters) for r in sequential)
        assert batched_ctx.telemetry.batch_solves == 1
        assert batched_ctx.telemetry.batched_blocks == total_clusters

    def test_reference_context_never_batches(self):
        jobs = self._jobs()[:1]
        context = RunContext(
            reference=True, vectorized_costs=False, cached_costs=False,
            lp_batch=False,
        )
        reports = lp_hta_batch(jobs, context=context)
        assert len(reports) == 1
        assert context.telemetry.batch_solves == 0

    def test_repeated_column_is_a_whole_batch_cache_hit(self):
        jobs = self._jobs()
        context = RunContext(lp_batch=True)
        first = lp_hta_batch(jobs, context=context)
        assert context.telemetry.batch_cache_hits == 0
        second = lp_hta_batch(jobs, context=context)
        assert context.telemetry.batch_cache_hits == 1
        assert context.telemetry.batch_solves == 1  # no second mega-solve
        for a, b in zip(first, second):
            _reports_identical(a, b)
