"""The online extension: arrivals and epoch scheduling."""

import pytest

from repro.mobility.waypoint import RandomWaypointModel
from repro.online.arrivals import PoissonArrivals
from repro.online.scheduler import OnlineOptions, simulate_online
from repro.workload import PAPER_DEFAULTS, generate_system


@pytest.fixture(scope="module")
def system():
    return generate_system(
        PAPER_DEFAULTS.with_updates(num_devices=12, num_stations=3), seed=0
    )


@pytest.fixture(scope="module")
def arrivals(system):
    return PoissonArrivals(
        system,
        PAPER_DEFAULTS.with_updates(num_devices=12, num_stations=3),
        rate_per_s=0.4,
        seed=1,
    ).generate(300.0)


class TestArrivals:
    def test_sorted_and_within_horizon(self, arrivals):
        times = [t.arrival_s for t in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 300.0 for t in times)

    def test_rate_roughly_respected(self, arrivals):
        # 0.4/s over 300 s → ~120 expected arrivals.
        assert 70 <= len(arrivals) <= 180

    def test_unique_task_indices(self, arrivals):
        indices = [t.task.index for t in arrivals]
        assert len(indices) == len(set(indices))

    def test_owners_valid(self, system, arrivals):
        for timed in arrivals:
            assert timed.task.owner_device_id in system.devices

    def test_validation(self, system):
        with pytest.raises(ValueError):
            PoissonArrivals(system, PAPER_DEFAULTS, rate_per_s=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(system, PAPER_DEFAULTS, 1.0).generate(0.0)


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineOptions(epoch_length_s=0.0)
        with pytest.raises(ValueError):
            OnlineOptions(policy="dqn")


class TestStaticScheduling:
    def test_every_task_planned_once(self, system, arrivals):
        report = simulate_online(system, arrivals, OnlineOptions(epoch_length_s=60.0))
        assert report.total_tasks == len(arrivals)

    def test_no_mobility_means_no_drift(self, system, arrivals):
        report = simulate_online(system, arrivals, OnlineOptions(epoch_length_s=60.0))
        assert report.drift_energy_gap_j == 0.0
        for epoch in report.epochs:
            assert epoch.handovers == 0
            assert epoch.planned_energy_j == epoch.realized_energy_j

    def test_empty_arrivals(self, system):
        report = simulate_online(system, [], OnlineOptions())
        assert report.epochs == ()
        assert report.total_tasks == 0
        assert report.mean_realized_unsatisfied == 0.0

    def test_policy_ordering(self, system, arrivals):
        energies = {}
        for policy in ("lp-hta", "hgos", "cloud"):
            report = simulate_online(
                system, arrivals, OnlineOptions(epoch_length_s=60.0, policy=policy)
            )
            energies[policy] = report.total_planned_energy_j
        assert energies["lp-hta"] <= energies["hgos"] * 1.02
        assert energies["hgos"] < energies["cloud"]

    def test_game_policy_runs(self, system, arrivals):
        report = simulate_online(
            system, arrivals, OnlineOptions(epoch_length_s=60.0, policy="game")
        )
        assert report.total_tasks == len(arrivals)
        assert report.total_planned_energy_j > 0


class TestMobileScheduling:
    def test_drift_audit(self, system, arrivals):
        positions = {d: dev.position for d, dev in system.devices.items()}
        mobility = RandomWaypointModel(
            sorted(system.devices), area_side_m=2000.0,
            speed_range_mps=(5.0, 20.0), pause_range_s=(0.0, 0.0),
            seed=3, initial_positions=positions,
        )
        report = simulate_online(
            system, arrivals, OnlineOptions(epoch_length_s=60.0), mobility=mobility
        )
        assert report.total_tasks == len(arrivals)
        assert sum(e.handovers for e in report.epochs) > 0

    def test_mobility_requires_positioned_stations(self, arrivals):
        from repro.system.devices import BaseStation, MobileDevice
        from repro.system.radio import FOUR_G
        from repro.system.topology import MECSystem
        from repro.units import gigahertz

        bare = MECSystem(
            [MobileDevice(0, gigahertz(1.0), FOUR_G, max_resource=1.0)],
            [BaseStation(0)],  # no position
            {0: 0},
        )
        mobility = RandomWaypointModel([0], area_side_m=100.0, seed=0)
        with pytest.raises(ValueError, match="positioned"):
            simulate_online(bare, arrivals, OnlineOptions(), mobility=mobility)
