"""The online extension: arrivals and epoch scheduling."""

import pytest

from repro.context import RunContext, use_context
from repro.faults import FaultConfig, generate_fault_plan
from repro.mobility.waypoint import RandomWaypointModel
from repro.online.arrivals import PoissonArrivals
from repro.online.scheduler import OnlineOptions, simulate_online
from repro.workload import PAPER_DEFAULTS, generate_system


@pytest.fixture(scope="module")
def system():
    return generate_system(
        PAPER_DEFAULTS.with_updates(num_devices=12, num_stations=3), seed=0
    )


@pytest.fixture(scope="module")
def arrivals(system):
    return PoissonArrivals(
        system,
        PAPER_DEFAULTS.with_updates(num_devices=12, num_stations=3),
        rate_per_s=0.4,
        seed=1,
    ).generate(300.0)


class TestArrivals:
    def test_sorted_and_within_horizon(self, arrivals):
        times = [t.arrival_s for t in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 300.0 for t in times)

    def test_rate_roughly_respected(self, arrivals):
        # 0.4/s over 300 s → ~120 expected arrivals.
        assert 70 <= len(arrivals) <= 180

    def test_unique_task_indices(self, arrivals):
        indices = [t.task.index for t in arrivals]
        assert len(indices) == len(set(indices))

    def test_owners_valid(self, system, arrivals):
        for timed in arrivals:
            assert timed.task.owner_device_id in system.devices

    def test_validation(self, system):
        with pytest.raises(ValueError):
            PoissonArrivals(system, PAPER_DEFAULTS, rate_per_s=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(system, PAPER_DEFAULTS, 1.0).generate(0.0)


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineOptions(epoch_length_s=0.0)
        with pytest.raises(ValueError):
            OnlineOptions(policy="dqn")
        with pytest.raises(ValueError):
            OnlineOptions(recovery="reboot")


class TestStaticScheduling:
    def test_every_task_planned_once(self, system, arrivals):
        report = simulate_online(system, arrivals, OnlineOptions(epoch_length_s=60.0))
        assert report.total_tasks == len(arrivals)

    def test_no_mobility_means_no_drift(self, system, arrivals):
        report = simulate_online(system, arrivals, OnlineOptions(epoch_length_s=60.0))
        assert report.drift_energy_gap_j == 0.0
        for epoch in report.epochs:
            assert epoch.handovers == 0
            assert epoch.planned_energy_j == epoch.realized_energy_j

    def test_empty_arrivals(self, system):
        report = simulate_online(system, [], OnlineOptions())
        assert report.epochs == ()
        assert report.total_tasks == 0
        assert report.mean_realized_unsatisfied == 0.0

    def test_policy_ordering(self, system, arrivals):
        energies = {}
        for policy in ("lp-hta", "hgos", "cloud"):
            report = simulate_online(
                system, arrivals, OnlineOptions(epoch_length_s=60.0, policy=policy)
            )
            energies[policy] = report.total_planned_energy_j
        assert energies["lp-hta"] <= energies["hgos"] * 1.02
        assert energies["hgos"] < energies["cloud"]

    def test_game_policy_runs(self, system, arrivals):
        report = simulate_online(
            system, arrivals, OnlineOptions(epoch_length_s=60.0, policy="game")
        )
        assert report.total_tasks == len(arrivals)
        assert report.total_planned_energy_j > 0


class TestFaultyScheduling:
    @pytest.fixture(scope="class")
    def fault_plan(self, system):
        config = FaultConfig(
            horizon_s=300.0, intensity_per_s=0.1, mean_outage_s=6.0,
            departure_ratio=0.01, crash_ratio=0.005,
        )
        return generate_fault_plan(system, config, seed=42)

    def test_no_fault_plan_reports_no_events(self, system, arrivals):
        report = simulate_online(system, arrivals, OnlineOptions())
        assert report.events == ()
        assert report.recovery == "none"
        assert report.total_dropped == 0

    def test_arrivals_still_all_accounted(self, system, arrivals, fault_plan):
        report = simulate_online(
            system, arrivals, OnlineOptions(), fault_plan=fault_plan
        )
        # Dropped tasks count as arrivals, not silent disappearances.
        assert report.total_tasks == len(arrivals)

    def test_dropped_tasks_counted_unsatisfied(
        self, system, arrivals, fault_plan
    ):
        clean = simulate_online(system, arrivals, OnlineOptions())
        faulty = simulate_online(
            system, arrivals, OnlineOptions(), fault_plan=fault_plan
        )
        if faulty.total_dropped:
            assert (
                faulty.mean_realized_unsatisfied
                > clean.mean_realized_unsatisfied - 1e-12
            )

    def test_fault_extras_flow_into_energy_gap(
        self, system, arrivals, fault_plan
    ):
        report = simulate_online(
            system, arrivals, OnlineOptions(), fault_plan=fault_plan
        )
        expected = sum(e.extra_energy_j for e in report.events)
        assert report.drift_energy_gap_j == pytest.approx(expected)
        per_epoch = sum(e.fault_extra_energy_j for e in report.epochs)
        assert per_epoch == pytest.approx(expected)

    def test_telemetry_counters_match_events(
        self, system, arrivals, fault_plan
    ):
        context = RunContext(seed=0)
        with use_context(context):
            report = simulate_online(
                system, arrivals, OnlineOptions(recovery="retry"),
                context=context, fault_plan=fault_plan,
            )
        telemetry = context.telemetry
        assert telemetry.faults_detected == len(report.events)
        assert telemetry.retries == sum(
            1 for e in report.events if e.action == "retry"
        )
        assert telemetry.tasks_dropped == sum(
            1 for e in report.events if e.action == "drop"
        )
        assert telemetry.tasks_recovered == sum(
            1 for e in report.events if e.recovered
        )

    def test_event_trace_deterministic(self, system, arrivals, fault_plan):
        def run():
            return simulate_online(
                system, arrivals, OnlineOptions(recovery="reassign"),
                context=RunContext(seed=0), fault_plan=fault_plan,
            ).event_trace()

        assert run() == run()

    @pytest.mark.parametrize("recovery", ("retry", "degrade", "reassign"))
    def test_recovery_never_worse_than_fail_stop(
        self, system, arrivals, fault_plan, recovery
    ):
        baseline = simulate_online(
            system, arrivals, OnlineOptions(recovery="none"),
            context=RunContext(seed=0), fault_plan=fault_plan,
        )
        recovered = simulate_online(
            system, arrivals, OnlineOptions(recovery=recovery),
            context=RunContext(seed=0), fault_plan=fault_plan,
        )
        assert (
            recovered.total_realized_energy_j
            <= baseline.total_realized_energy_j + 1e-9
        )
        assert (
            recovered.mean_realized_unsatisfied
            <= baseline.mean_realized_unsatisfied + 1e-12
        )


class TestMobileScheduling:
    def test_drift_audit(self, system, arrivals):
        positions = {d: dev.position for d, dev in system.devices.items()}
        mobility = RandomWaypointModel(
            sorted(system.devices), area_side_m=2000.0,
            speed_range_mps=(5.0, 20.0), pause_range_s=(0.0, 0.0),
            seed=3, initial_positions=positions,
        )
        report = simulate_online(
            system, arrivals, OnlineOptions(epoch_length_s=60.0), mobility=mobility
        )
        assert report.total_tasks == len(arrivals)
        assert sum(e.handovers for e in report.epochs) > 0

    def test_mobility_requires_positioned_stations(self, arrivals):
        from repro.system.devices import BaseStation, MobileDevice
        from repro.system.radio import FOUR_G
        from repro.system.topology import MECSystem
        from repro.units import gigahertz

        bare = MECSystem(
            [MobileDevice(0, gigahertz(1.0), FOUR_G, max_resource=1.0)],
            [BaseStation(0)],  # no position
            {0: 0},
        )
        mobility = RandomWaypointModel([0], area_side_m=100.0, seed=0)
        with pytest.raises(ValueError, match="positioned"):
            simulate_online(bare, arrivals, OnlineOptions(), mobility=mobility)
