"""Data-division algorithms: DTA-Workload, DTA-Number and exact solvers."""

import pytest

from repro.data.items import DataCatalog, DataItem
from repro.data.ownership import OwnershipMap
from repro.dta.coverage import (
    Coverage,
    dta_number,
    dta_workload,
    exact_min_max_coverage,
    exact_min_set_number,
)


@pytest.fixture
def ownership():
    return OwnershipMap({
        0: {0, 1, 2, 3, 4, 5},   # large holder
        1: {0, 1},
        2: {2, 3},
        3: {4, 5, 6},
        4: {6, 7},
    })


@pytest.fixture
def universe():
    return frozenset(range(8))


def _assert_valid(coverage: Coverage, ownership: OwnershipMap):
    assert coverage.violations(ownership) == []


class TestCoverageContainer:
    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            Coverage(universe=frozenset({1}), sets={0: frozenset()})

    def test_metrics(self):
        coverage = Coverage(
            universe=frozenset({1, 2, 3}),
            sets={0: frozenset({1, 2}), 1: frozenset({3})},
        )
        assert coverage.involved_devices == 2
        assert coverage.max_set_size() == 2
        assert coverage.device_of(3) == 1
        assert coverage.device_of(99) is None

    def test_max_set_bytes(self):
        catalog = DataCatalog([DataItem(1, 10.0), DataItem(2, 20.0), DataItem(3, 5.0)])
        coverage = Coverage(
            universe=frozenset({1, 2, 3}),
            sets={0: frozenset({1, 2}), 1: frozenset({3})},
        )
        assert coverage.max_set_bytes(catalog) == pytest.approx(30.0)

    def test_violations_detect_problems(self, ownership):
        bad = Coverage(
            universe=frozenset({0, 1, 9}),
            sets={1: frozenset({0, 1, 9})},  # 9 is not owned, not in D... and D misses
        )
        problems = bad.violations(ownership)
        assert any("does not own" in p for p in problems)


class TestDTAWorkload:
    def test_valid_coverage(self, universe, ownership):
        _assert_valid(dta_workload(universe, ownership), ownership)

    def test_covers_exactly(self, universe, ownership):
        coverage = dta_workload(universe, ownership)
        union = frozenset()
        for items in coverage.sets.values():
            union |= items
        assert union == universe

    def test_smallest_nonempty_first(self):
        """The paper's argmin rule: the device with the least remaining
        coverage claims its whole set first."""
        ownership = OwnershipMap({0: {0}, 1: {0, 1, 2}})
        coverage = dta_workload(frozenset({0, 1, 2}), ownership)
        assert coverage.sets[0] == frozenset({0})
        assert coverage.sets[1] == frozenset({1, 2})

    def test_uncoverable_universe_rejected(self, ownership):
        with pytest.raises(ValueError, match="owned by no device"):
            dta_workload(frozenset({0, 99}), ownership)

    def test_empty_universe(self, ownership):
        coverage = dta_workload(frozenset(), ownership)
        assert coverage.sets == {}
        assert coverage.involved_devices == 0

    def test_balances_better_than_set_cover(self, universe, ownership):
        workload = dta_workload(universe, ownership)
        number = dta_number(universe, ownership)
        assert workload.max_set_size() <= number.max_set_size()


class TestDTANumber:
    def test_valid_coverage(self, universe, ownership):
        _assert_valid(dta_number(universe, ownership), ownership)

    def test_greedy_takes_largest_first(self, universe, ownership):
        coverage = dta_number(universe, ownership)
        # Device 0 owns 6 of 8 items: the greedy must start there.
        assert 0 in coverage.sets
        assert coverage.sets[0] == frozenset(range(6))

    def test_fewer_devices_than_workload(self, universe, ownership):
        workload = dta_workload(universe, ownership)
        number = dta_number(universe, ownership)
        assert number.involved_devices <= workload.involved_devices

    def test_uncoverable_universe_rejected(self, ownership):
        with pytest.raises(ValueError):
            dta_number(frozenset({0, 99}), ownership)


class TestExactMinMax:
    def test_valid_and_optimal_bound(self, universe, ownership):
        exact = exact_min_max_coverage(universe, ownership)
        greedy = dta_workload(universe, ownership)
        _assert_valid(exact, ownership)
        assert exact.max_set_size() <= greedy.max_set_size()

    def test_perfect_balance_possible(self):
        # Two devices each owning half: optimal max size is 2.
        ownership = OwnershipMap({0: {0, 1, 2, 3}, 1: {0, 1, 2, 3}})
        exact = exact_min_max_coverage(frozenset({0, 1, 2, 3}), ownership)
        assert exact.max_set_size() == 2

    def test_empty_universe(self, ownership):
        exact = exact_min_max_coverage(frozenset(), ownership)
        assert exact.sets == {}


class TestExactMinSetNumber:
    def test_optimal_count(self, universe, ownership):
        exact = exact_min_set_number(universe, ownership)
        _assert_valid(exact, ownership)
        greedy = dta_number(universe, ownership)
        assert exact.involved_devices <= greedy.involved_devices

    def test_single_device_cover(self):
        ownership = OwnershipMap({0: {0, 1}, 1: {0}, 2: {1}})
        exact = exact_min_set_number(frozenset({0, 1}), ownership)
        assert exact.involved_devices == 1

    def test_enumeration_limit(self, universe):
        big = OwnershipMap({d: {0} for d in range(30)} | {99: set(range(8))})
        with pytest.raises(ValueError, match="enumeration"):
            exact_min_set_number(universe, big, max_devices=5)
