"""Warm-started LP solves: same optimum, fewer iterations, safe fallback."""

import numpy as np
import pytest

from repro.context import RunContext, use_context
from repro.lp import LinearProgram, LPStatus, solve
from repro.lp.interior_point import IPMOptions, solve_interior_point
from repro.lp.simplex import SimplexOptions, solve_simplex
from repro.lp.warmstart import IPMIterate, SimplexBasis


@pytest.fixture
def lp():
    return LinearProgram(
        c=np.array([-1.0, -2.0, 0.5]),
        a_ub=np.array([[1.0, 1.0, 1.0], [2.0, 0.5, 1.0]]),
        b_ub=np.array([4.0, 5.0]),
        upper_bounds=np.array([3.0, 3.0, 3.0]),
    )


@pytest.fixture
def nearby_lp():
    """The same polytope with a slightly perturbed objective."""
    return LinearProgram(
        c=np.array([-1.0, -2.05, 0.5]),
        a_ub=np.array([[1.0, 1.0, 1.0], [2.0, 0.5, 1.0]]),
        b_ub=np.array([4.0, 5.0]),
        upper_bounds=np.array([3.0, 3.0, 3.0]),
    )


def test_solvers_return_warm_start_payloads(lp):
    simplex = solve_simplex(lp, SimplexOptions())
    assert isinstance(simplex.warm_start, SimplexBasis)
    ipm = solve_interior_point(lp, IPMOptions())
    assert isinstance(ipm.warm_start, IPMIterate)


def test_simplex_warm_start_reuses_basis(lp):
    cold = solve_simplex(lp, SimplexOptions())
    warm = solve_simplex(lp, SimplexOptions(), warm_start=cold.warm_start)
    assert warm.status is LPStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
    np.testing.assert_allclose(warm.x, cold.x, atol=1e-9)
    assert warm.iterations <= cold.iterations
    assert warm.message == "warm-started"


def test_simplex_warm_start_on_nearby_problem(lp, nearby_lp):
    cold = solve_simplex(nearby_lp, SimplexOptions())
    basis = solve_simplex(lp, SimplexOptions()).warm_start
    warm = solve_simplex(nearby_lp, SimplexOptions(), warm_start=basis)
    assert warm.status is LPStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-9)


def test_ipm_warm_start_converges_faster(lp):
    cold = solve_interior_point(lp, IPMOptions())
    warm = solve_interior_point(lp, IPMOptions(), warm_start=cold.warm_start)
    assert warm.status is LPStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
    assert warm.iterations <= cold.iterations


def test_mismatched_warm_start_is_ignored(lp):
    stale_basis = SimplexBasis(columns=(0, 99))
    result = solve_simplex(lp, SimplexOptions(), warm_start=stale_basis)
    assert result.status is LPStatus.OPTIMAL

    stale_iterate = IPMIterate(
        x=np.ones(2), y=np.zeros(1), s=np.ones(2)
    )
    result = solve_interior_point(lp, IPMOptions(), warm_start=stale_iterate)
    assert result.status is LPStatus.OPTIMAL


def test_backend_dispatcher_threads_warm_start(lp):
    # Cache off: a default-context hit would short-circuit before the
    # warm start is ever threaded to the solver.
    with use_context(RunContext(lp_cache_capacity=0)):
        cold = solve(lp, "simplex")
        warm = solve(lp, "simplex", warm_start=cold.warm_start)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.message == "warm-started"
        # A payload of the wrong flavour is silently dropped, not an error.
        cross = solve(lp, "interior-point", warm_start=cold.warm_start)
        assert cross.status is LPStatus.OPTIMAL
