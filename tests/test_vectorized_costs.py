"""Vectorised cost tables must match the scalar reference bit for bit."""

import numpy as np
import pytest

from repro.core.costs import (
    ClusterCosts,
    cluster_costs,
    costs_config,
    task_costs,
)
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS


def _tables(system, tasks, vectorized):
    with costs_config(cached=False):
        return cluster_costs(system, tasks, vectorized=vectorized)


def _assert_tables_equal(a: ClusterCosts, b: ClusterCosts) -> None:
    np.testing.assert_array_equal(a.time_s, b.time_s)
    np.testing.assert_array_equal(a.energy_j, b.energy_j)
    np.testing.assert_array_equal(a.resource, b.resource)
    np.testing.assert_array_equal(a.deadline_s, b.deadline_s)


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_vectorized_matches_scalar_on_random_scenarios(seed):
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=40), seed=seed
    )
    scalar = _tables(scenario.system, scenario.tasks, vectorized=False)
    vector = _tables(scenario.system, scenario.tasks, vectorized=True)
    _assert_tables_equal(scalar, vector)


def test_vectorized_matches_scalar_divisible_workload():
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=25, divisible=True), seed=3
    )
    scalar = _tables(scenario.system, scenario.tasks, vectorized=False)
    vector = _tables(scenario.system, scenario.tasks, vectorized=True)
    _assert_tables_equal(scalar, vector)


def test_vectorized_matches_per_task_costs(two_cluster_system, shared_task_cross_cluster):
    table = _tables(two_cluster_system, [shared_task_cross_cluster], vectorized=True)
    single = task_costs(two_cluster_system, shared_task_cross_cluster)
    np.testing.assert_array_equal(table.time_s[0], np.asarray(single.total_time_s))
    np.testing.assert_array_equal(table.energy_j[0], np.asarray(single.total_energy_j))


def test_cache_returns_identical_object():
    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=10), seed=0)
    with costs_config(cached=True):
        first = cluster_costs(scenario.system, scenario.tasks)
        second = cluster_costs(scenario.system, scenario.tasks)
    assert first is second


def test_cache_disabled_recomputes():
    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=10), seed=0)
    with costs_config(cached=False):
        first = cluster_costs(scenario.system, scenario.tasks)
        second = cluster_costs(scenario.system, scenario.tasks)
    assert first is not second
    _assert_tables_equal(first, second)


def test_costs_config_restores_previous_settings():
    from repro.context import current_context

    def flags():
        context = current_context()
        return (context.vectorized_costs, context.cached_costs)

    before = flags()
    with costs_config(vectorized=False, cached=False):
        assert flags() == (False, False)
    assert flags() == before


def test_owner_rows_is_cached():
    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=10), seed=0)
    table = cluster_costs(scenario.system, scenario.tasks, vectorized=True)
    assert table.owner_rows() is table.owner_rows()
