"""Task rearrangement (Section IV-C)."""

import pytest

from repro.core.task import Task
from repro.data.items import DataCatalog, DataItem
from repro.dta.coverage import Coverage, dta_workload
from repro.dta.rearrange import rearrange_tasks


@pytest.fixture
def catalog():
    return DataCatalog([DataItem(i, 100.0 * (i + 1)) for i in range(6)])


@pytest.fixture
def coverage():
    return Coverage(
        universe=frozenset(range(6)),
        sets={0: frozenset({0, 1}), 1: frozenset({2, 3}), 2: frozenset({4, 5})},
    )


def _divisible_task(owner, index, items, deadline=5.0):
    return Task(
        owner_device_id=owner, index=index,
        local_bytes=100.0, external_bytes=0.0, external_source=None,
        resource_demand=3.0, deadline_s=deadline,
        divisible=True, required_items=frozenset(items),
    )


class TestRearrangement:
    def test_subtasks_cover_required_items(self, catalog, coverage):
        task = _divisible_task(0, 0, {0, 2, 4})
        plan = rearrange_tasks([task], coverage, catalog)
        assert plan.num_subtasks == 3  # one per covering device
        covered = frozenset()
        for subtask in plan.subtasks:
            covered |= subtask.required_items
        assert covered == task.required_items

    def test_subtasks_have_no_external_data(self, catalog, coverage):
        task = _divisible_task(1, 0, {0, 1, 2})
        plan = rearrange_tasks([task], coverage, catalog)
        for subtask in plan.subtasks:
            assert subtask.external_bytes == 0.0
            assert subtask.external_source is None

    def test_subtask_sizes_match_catalog(self, catalog, coverage):
        task = _divisible_task(0, 0, {2, 3})
        plan = rearrange_tasks([task], coverage, catalog)
        assert plan.num_subtasks == 1
        assert plan.subtasks[0].owner_device_id == 1
        assert plan.subtasks[0].local_bytes == pytest.approx(300.0 + 400.0)

    def test_deadlines_inherited(self, catalog, coverage):
        task = _divisible_task(0, 0, {0, 4}, deadline=2.5)
        plan = rearrange_tasks([task], coverage, catalog)
        assert all(s.deadline_s == 2.5 for s in plan.subtasks)

    def test_parent_mapping(self, catalog, coverage):
        tasks = [_divisible_task(0, 0, {0, 2}), _divisible_task(1, 1, {4})]
        plan = rearrange_tasks(tasks, coverage, catalog)
        assert len(plan.parents) == plan.num_subtasks
        assert set(plan.subtasks_of_parent(tasks[0])) | set(
            plan.subtasks_of_parent(tasks[1])
        ) == set(range(plan.num_subtasks))

    def test_executor_devices(self, catalog, coverage):
        plan = rearrange_tasks([_divisible_task(0, 0, {0, 5})], coverage, catalog)
        assert plan.executor_device_ids() == (0, 2)

    def test_tasks_without_items_skipped(self, catalog, coverage):
        task = Task(
            owner_device_id=0, index=0, local_bytes=0.0,
            external_bytes=0.0, external_source=None,
            resource_demand=0.0, deadline_s=1.0, divisible=True,
        )
        plan = rearrange_tasks([task], coverage, catalog)
        assert plan.num_subtasks == 0


class TestValidation:
    def test_non_divisible_rejected(self, catalog, coverage):
        holistic = Task(
            owner_device_id=0, index=0, local_bytes=10.0,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=1.0, divisible=False,
            required_items=frozenset({0}),
        )
        with pytest.raises(ValueError, match="not divisible"):
            rearrange_tasks([holistic], coverage, catalog)

    def test_items_outside_universe_rejected(self, catalog, coverage):
        task = _divisible_task(0, 0, {0, 77})
        with pytest.raises(ValueError, match="outside the coverage"):
            rearrange_tasks([task], coverage, catalog)

    def test_plan_rejects_external_subtasks(self, coverage):
        from repro.dta.rearrange import RearrangedPlan

        bad = Task(
            owner_device_id=0, index=0, local_bytes=10.0,
            external_bytes=5.0, external_source=1,
            resource_demand=1.0, deadline_s=1.0, divisible=True,
        )
        with pytest.raises(ValueError, match="no external data"):
            RearrangedPlan(coverage=coverage, subtasks=(bad,), parents=(bad,))


class TestIntegrationWithGreedy:
    def test_full_pipeline_small(self, divisible_scenario):
        universe = divisible_scenario.universe
        coverage = dta_workload(universe, divisible_scenario.ownership)
        plan = rearrange_tasks(
            [t for t in divisible_scenario.tasks if t.required_items],
            coverage,
            divisible_scenario.catalog,
        )
        assert plan.num_subtasks > 0
        # Every sub-task's data is owned by its executor.
        for subtask in plan.subtasks:
            owned = divisible_scenario.ownership.items_of(subtask.owner_device_id)
            assert subtask.required_items <= owned
