"""The partial-offloading extension."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.hta import lp_hta
from repro.core.task import Task
from repro.partial import PartialOptions, partial_offloading
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=60, num_devices=10, num_stations=2),
        seed=3,
    )


@pytest.fixture(scope="module")
def result(scenario):
    return partial_offloading(scenario.system, list(scenario.tasks))


class TestSplits:
    def test_every_task_split_or_dropped(self, scenario, result):
        assert len(result.splits) == len(scenario.tasks)

    def test_bytes_partition_exactly(self, scenario, result):
        for task, split in zip(scenario.tasks, result.splits):
            total = (
                split.device_bytes + split.station_bytes + split.cloud_bytes
                + split.unserved_bytes
            )
            assert total == pytest.approx(task.input_bytes, rel=1e-5)

    def test_fractions_account_for_unserved(self, result):
        for split in result.splits:
            if split.task.input_bytes == 0:
                continue
            assert sum(split.fractions) == pytest.approx(
                split.served_fraction, abs=1e-6
            )

    def test_energy_decomposes(self, result):
        assert result.total_energy_j == pytest.approx(
            sum(s.energy_j for s in result.splits)
        )

    def test_device_caps_respected(self, scenario, result):
        loads = {}
        for split in result.splits:
            if split.task.input_bytes == 0:
                continue
            density = split.task.resource_demand / split.task.input_bytes
            owner = split.task.owner_device_id
            loads[owner] = loads.get(owner, 0.0) + density * split.device_bytes
        for owner, load in loads.items():
            assert load <= scenario.system.device(owner).max_resource * (1 + 1e-6)


class TestRelaxationQuality:
    def test_beats_binary_lp_hta(self, scenario, result):
        """The fractional optimum can only improve on the binary assignment
        (when LP-HTA cancels nothing, so the workloads are comparable)."""
        report = lp_hta(scenario.system, list(scenario.tasks))
        cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if cancelled == 0:
            assert result.total_energy_j <= report.assignment.total_energy_j() * 1.001

    def test_some_tasks_genuinely_fractional(self, result):
        # Resource caps bind, so at least a few tasks straddle two levels.
        assert result.num_fractional >= 1


class TestEdgeCases:
    def test_impossible_task_dropped(self, two_cluster_system):
        # A deadline below every branch's fixed-latency floor.
        impossible = Task(
            owner_device_id=0, index=0, local_bytes=1000 * KB,
            external_bytes=500 * KB, external_source=2,  # cross-cluster: 15 ms floor
            resource_demand=100.0,  # no room on the device either
            deadline_s=0.001,
        )
        # Make the device unable to take the work locally.
        result = partial_offloading(two_cluster_system, [impossible])
        # The device branch has no latency floor, so the task is splittable
        # unless the device lacks resources; with demand 100 > cap 5 the
        # deadline row still admits only a tiny local slice — the LP must
        # stay feasible either way.
        assert len(result.splits) == 1

    def test_local_only_task(self, two_cluster_system, local_task):
        result = partial_offloading(two_cluster_system, [local_task])
        split = result.splits[0]
        assert split is not None
        # A cheap local task should stay (almost) entirely on the device.
        assert split.fractions[0] > 0.9

    def test_unknown_backend_rejected(self, two_cluster_system, local_task):
        with pytest.raises(ValueError):
            partial_offloading(
                two_cluster_system, [local_task],
                PartialOptions(backend="cplex", fallback_backends=()),
            )
