"""The task model."""

import pytest

from repro.core.task import Task
from repro.units import KB


def _task(**overrides) -> Task:
    params = dict(
        owner_device_id=0, index=0, local_bytes=100 * KB,
        external_bytes=50 * KB, external_source=1,
        resource_demand=1.0, deadline_s=2.0,
    )
    params.update(overrides)
    return Task(**params)


class TestConstruction:
    def test_task_id(self):
        assert _task(owner_device_id=3, index=7).task_id == (3, 7)

    def test_input_bytes(self):
        assert _task().input_bytes == pytest.approx(150 * KB)

    def test_has_external_data(self):
        assert _task().has_external_data
        assert not _task(external_bytes=0.0, external_source=None).has_external_data

    def test_with_deadline(self):
        copy = _task().with_deadline(9.0)
        assert copy.deadline_s == 9.0
        assert copy.task_id == _task().task_id
        assert copy.local_bytes == _task().local_bytes


class TestValidation:
    def test_external_bytes_require_source(self):
        with pytest.raises(ValueError, match="no external_source"):
            _task(external_source=None)

    def test_source_requires_external_bytes(self):
        with pytest.raises(ValueError, match="external_bytes is zero"):
            _task(external_bytes=0.0)

    def test_source_cannot_be_owner(self):
        with pytest.raises(ValueError, match="owner itself"):
            _task(external_source=0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            _task(local_bytes=-1.0)
        with pytest.raises(ValueError):
            _task(external_bytes=-1.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            _task(deadline_s=0.0)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            _task(owner_device_id=-1)
        with pytest.raises(ValueError):
            _task(index=-1)

    def test_negative_resource_rejected(self):
        with pytest.raises(ValueError):
            _task(resource_demand=-0.1)
