"""The resilience experiment: acceptance bounds and sweep bit-identity."""

import json

import pytest

from repro.experiments.resilience import (
    RESILIENCE_PROFILE,
    ResilienceEvaluator,
    resilience_sweep,
    spread_arrivals,
)
from repro.faults.model import FaultConfig
from repro.faults.recovery import RECOVERY_POLICIES

INTENSITIES = (0.0, 0.05, 0.2)


@pytest.fixture(scope="module")
def study():
    return resilience_sweep(intensities=INTENSITIES, seeds=(0,), jobs=1)


class TestAcceptanceCriteria:
    def test_baseline_miss_monotone_in_intensity(self, study):
        miss = study.miss_series().values_of("none")
        for lower, higher in zip(miss, miss[1:]):
            assert lower <= higher + 1e-12

    @pytest.mark.parametrize("policy", ("retry", "degrade", "reassign"))
    def test_policy_energy_bounded_by_baseline(self, study, policy):
        energy = study.energy_series()
        for ours, base in zip(
            energy.values_of(policy), energy.values_of("none")
        ):
            assert ours <= base + 1e-9

    @pytest.mark.parametrize("policy", ("retry", "degrade", "reassign"))
    def test_policy_miss_bounded_by_baseline(self, study, policy):
        miss = study.miss_series()
        for ours, base in zip(miss.values_of(policy), miss.values_of("none")):
            assert ours <= base + 1e-12

    def test_zero_intensity_policies_agree(self, study):
        energy = study.energy_series()
        baseline = energy.values_of("none")[0]
        for policy in RECOVERY_POLICIES:
            assert energy.values_of(policy)[0] == pytest.approx(baseline)
            result = study.results[(0.0, policy, 0)]
            assert result.faults == 0
            assert result.trace == ()

    def test_faults_fire_at_high_intensity(self, study):
        for policy in RECOVERY_POLICIES:
            assert study.results[(0.2, policy, 0)].faults > 0

    def test_trace_reproducible_for_fixed_seed(self, study):
        again = resilience_sweep(intensities=INTENSITIES, seeds=(0,), jobs=1)
        assert again.trace_json() == study.trace_json()


class TestParallelBitIdentity:
    def test_jobs2_fork_matches_sequential(self, study):
        fork = resilience_sweep(
            intensities=INTENSITIES, seeds=(0,), jobs=2, start_method="fork"
        )
        assert fork.trace_json() == study.trace_json()
        assert fork.energy_series().series == study.energy_series().series

    def test_jobs2_spawn_matches_sequential(self, study):
        spawn = resilience_sweep(
            intensities=INTENSITIES, seeds=(0,), jobs=2, start_method="spawn"
        )
        assert spawn.trace_json() == study.trace_json()
        assert spawn.miss_series().series == study.miss_series().series


class TestStudyPlumbing:
    def test_series_shapes(self, study):
        energy = study.energy_series()
        assert energy.x_values == INTENSITIES
        assert set(energy.series) == set(RECOVERY_POLICIES)

    def test_trace_json_is_canonical(self, study):
        parsed = json.loads(study.trace_json())
        assert len(parsed) == len(INTENSITIES) * len(RECOVERY_POLICIES)
        for entry in parsed.values():
            inner = json.loads(entry)
            assert set(inner) == {"policy", "intensity_per_s", "seed", "events"}

    def test_result_digest_stable(self, study):
        result = study.results[(0.2, "retry", 0)]
        assert result.trace_digest() == result.trace_digest()
        assert len(result.trace_digest()) == 64

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            resilience_sweep(intensities=())
        with pytest.raises(ValueError, match="unknown recovery policy"):
            resilience_sweep(policies=("reboot",))
        with pytest.raises(ValueError, match="recovery"):
            ResilienceEvaluator(recovery="reboot", fault_config=FaultConfig())

    def test_spread_arrivals_deterministic_and_even(self):
        from repro.workload.generator import generate_scenario

        scenario = generate_scenario(RESILIENCE_PROFILE, seed=0)
        arrivals = spread_arrivals(scenario, 600.0)
        assert len(arrivals) == len(scenario.tasks)
        times = [a.arrival_s for a in arrivals]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] < 600.0
        assert arrivals == spread_arrivals(scenario, 600.0)
        with pytest.raises(ValueError, match="positive"):
            spread_arrivals(scenario, 0.0)

    def test_ceiling_raised_to_cover_requested_intensities(self):
        # max λ above the default ceiling must not raise.
        study = resilience_sweep(
            intensities=(0.6,), policies=("none",), seeds=(0,), jobs=1
        )
        assert (0.6, "none", 0) in study.results
