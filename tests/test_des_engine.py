"""The struct-of-arrays DES engine versus the closure-chain simulator.

Every test replays the same assignment through both engines and asserts
the full :class:`RealizedMetrics` are *equal* — not approximately equal:
the array engine's contract is bit-identical floats, identical event
counts, identical queueing delays.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.context import RunContext, use_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.des import engine
from repro.des.replay import replay_assignment
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _replay_both(system, tasks, assignment, **kwargs):
    with use_context(RunContext(des_vectorized=True)):
        fast = replay_assignment(system, tasks, assignment, **kwargs)
    with use_context(RunContext(des_vectorized=False)):
        slow = replay_assignment(system, tasks, assignment, **kwargs)
    assert fast == slow
    return fast


class TestZeroTaskDevices:
    """Devices without any tasks must not perturb the replay."""

    def test_fewer_tasks_than_devices(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=3, num_devices=8, num_stations=2),
            seed=1,
        )
        tasks = list(scenario.tasks)
        assignment = lp_hta(scenario.system, tasks).assignment
        for contention in (False, True):
            metrics = _replay_both(
                scenario.system, tasks, assignment, contention=contention
            )
            assert metrics.makespan_s > 0.0

    def test_empty_assignment(self, two_cluster_system):
        costs = cluster_costs(two_cluster_system, [])
        assignment = Assignment(costs, [])
        metrics = _replay_both(two_cluster_system, [], assignment)
        assert metrics.latencies_s == ()
        assert metrics.makespan_s == 0.0

    def test_all_rows_cancelled(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.CANCELLED])
        metrics = _replay_both(two_cluster_system, [local_task], assignment)
        assert metrics.latencies_s == (None,)
        assert metrics.makespan_s == 0.0


class TestSimultaneousFinishTies:
    """Identical tasks finishing at the same instant on a shared FIFO."""

    def _clone_tasks(self, count):
        from repro.core.task import Task

        return [
            Task(
                owner_device_id=0,
                index=i,
                local_bytes=1000 * KB,
                external_bytes=0.0,
                external_source=None,
                resource_demand=1.0,
                deadline_s=50.0,
            )
            for i in range(count)
        ]

    @pytest.mark.parametrize(
        "subsystem", [Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD]
    )
    def test_identical_tasks_tie_on_every_subsystem(
        self, two_cluster_system, subsystem
    ):
        tasks = self._clone_tasks(4)
        costs = cluster_costs(two_cluster_system, tasks)
        assignment = Assignment(costs, [subsystem] * len(tasks))
        metrics = _replay_both(
            two_cluster_system, tasks, assignment, contention=True
        )
        if subsystem is not Subsystem.DEVICE:
            # The shared uplink serialises the equal transfers.
            assert metrics.mean_queueing_delay_s > 0.0

    def test_tied_tasks_with_staggered_starts(self, two_cluster_system):
        tasks = self._clone_tasks(3)
        costs = cluster_costs(two_cluster_system, tasks)
        assignment = Assignment(costs, [Subsystem.STATION] * 3)
        _replay_both(
            two_cluster_system,
            tasks,
            assignment,
            contention=True,
            start_times={0: 0.0, 1: 0.0, 2: 0.5},
        )


class TestDivisibleBranchJoins:
    """Divisible tasks with external shares exercise the fork/join path."""

    def _assignments(self, scenario):
        tasks = list(scenario.tasks)
        costs = cluster_costs(scenario.system, tasks)
        for subsystem in (Subsystem.STATION, Subsystem.CLOUD):
            yield tasks, Assignment(costs, [subsystem] * len(tasks))

    def test_station_and_cloud_joins(self, divisible_scenario):
        joined = 0
        for tasks, assignment in self._assignments(divisible_scenario):
            for contention in (False, True):
                _replay_both(
                    divisible_scenario.system,
                    tasks,
                    assignment,
                    contention=contention,
                )
            joined += sum(1 for t in tasks if t.has_external_data)
        assert joined > 0  # the scenario actually forked branches

    def test_joins_under_outages(self, divisible_scenario):
        for tasks, assignment in self._assignments(divisible_scenario):
            _replay_both(
                divisible_scenario.system,
                tasks,
                assignment,
                contention=True,
                backhaul_outages=((0.0, 0.3), (0.6, 0.9)),
                wan_outages=((0.1, 0.5),),
            )


class TestFaultyReplayEveryAlgorithm:
    """Outage-aware replay through the array engine, per registry entry."""

    @pytest.fixture(scope="class")
    def tiny_scenario(self):
        # (num_tasks=8, seed=0) keeps every algorithm feasible — BnB-Exact
        # refuses instances where no full assignment fits the caps.
        return generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=8, num_devices=4, num_stations=2),
            seed=0,
        )

    @pytest.mark.parametrize("name", registry.names(assignable=True))
    def test_engine_matches_object_replay(self, tiny_scenario, name):
        tasks = list(tiny_scenario.tasks)
        assignment = registry.resolve_assignment(name, tiny_scenario.system, tasks)
        metrics = _replay_both(
            tiny_scenario.system,
            tasks,
            assignment,
            contention=True,
            backhaul_outages=((0.2, 0.5),),
            wan_outages=((0.4, 0.9),),
        )
        assert metrics.events_processed > 0


class TestEventLoopBackends:
    """The njit-able array loop and the heapq twin must agree exactly."""

    def _arrays(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=40, num_devices=8, num_stations=2),
            seed=3,
        )
        tasks = list(scenario.tasks)
        assignment = lp_hta(scenario.system, tasks).assignment
        programs, num_resources, backhaul_id, wan_id = engine.compile_rows(
            scenario.system, tasks, assignment, None
        )
        arrays = engine._build_event_arrays(
            programs,
            num_resources,
            True,
            backhaul_id,
            wan_id,
            ((0.2, 0.5),),
            ((0.4, 0.9),),
        )
        return arrays, len(tasks)

    def test_array_loop_equals_heapq_loop(self):
        arrays, n_tasks = self._arrays()
        out_arr = engine._event_loop(
            arrays["stage_res"],
            arrays["stage_service"],
            arrays["stage_next"],
            arrays["stage_end_kind"],
            arrays["stage_end_ref"],
            arrays["join_tail"],
            arrays["init_kind"],
            arrays["init_target"],
            arrays["init_value"],
            arrays["init_time"],
            arrays["res_shared"],
            arrays["out_lo"],
            arrays["out_hi"],
            arrays["out_start"],
            arrays["out_end"],
            n_tasks,
            arrays["cap"],
        )
        out_py = engine._event_loop_py(
            arrays["stage_res"].tolist(),
            arrays["stage_service"].tolist(),
            arrays["stage_next"].tolist(),
            arrays["stage_end_kind"].tolist(),
            arrays["stage_end_ref"].tolist(),
            arrays["join_tail"].tolist(),
            arrays["init_kind"].tolist(),
            arrays["init_target"].tolist(),
            arrays["init_value"].tolist(),
            arrays["init_time"].tolist(),
            arrays["res_shared"].tolist(),
            arrays["out_lo"].tolist(),
            arrays["out_hi"].tolist(),
            arrays["out_start"].tolist(),
            arrays["out_end"].tolist(),
            n_tasks,
        )
        task_finish, task_done, wait_res, wait_val, n_wait, now, n_events = out_arr
        py_finish, py_done, py_wait_res, py_wait_val, py_now, py_events = out_py
        n_wait = int(n_wait)
        assert task_finish.tolist() == py_finish
        assert [bool(d) for d in task_done] == [bool(d) for d in py_done]
        assert wait_res[:n_wait].tolist() == py_wait_res
        assert wait_val[:n_wait].tolist() == py_wait_val
        assert now == py_now
        assert n_events == py_events


class TestNumbaGating:
    def test_no_numba_env_disables_jit(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        assert engine._detect_numba() is None

    def test_reference_context_uses_object_path(self, small_scenario):
        tasks = list(small_scenario.tasks)
        assignment = lp_hta(small_scenario.system, tasks).assignment
        with use_context(RunContext(reference=True)):
            reference = replay_assignment(small_scenario.system, tasks, assignment)
        with use_context(RunContext()):
            default = replay_assignment(small_scenario.system, tasks, assignment)
        assert reference == default

    def test_closed_form_matches_event_loop_when_dedicated(self, small_scenario):
        # Dedicated replay takes the closed-form path; forcing the event
        # loop (contention machinery with no shared resources) must agree.
        tasks = list(small_scenario.tasks)
        assignment = lp_hta(small_scenario.system, tasks).assignment
        closed = engine.replay_with_engine(
            small_scenario.system, tasks, assignment, False, (), (), None
        )
        looped = engine.replay_with_engine(
            small_scenario.system,
            tasks,
            assignment,
            False,
            ((1e9, 2e9),),
            (),
            None,
        )
        # An outage window far beyond the makespan defers nothing but
        # routes the replay through the event loop.
        assert closed[0] == looped[0]
        assert closed[1] == looped[1]
