"""RunContext propagation into worker processes, fork and spawn.

The historical bug: perf/cost flags lived in module globals, which fork
workers inherit but spawn workers silently reset — a spawn-started sweep
would quietly run the optimised paths even inside ``perf_config
(reference=True)``.  Cells now carry their :class:`repro.context.RunContext`
explicitly, so these tests pin down both halves of the fix:

- the flag demonstrably *reaches* spawn workers (probe test), and
- reference-mode results are bit-identical across in-process, fork and
  spawn execution (differential test).
"""

import multiprocessing

import pytest

from repro.context import RunContext, current_context, use_context
from repro.experiments.parallel import (
    SweepCell,
    as_spec,
    holistic_spec,
    run_cells,
)
from repro.perf import perf_config, reference_mode
from repro.registry import ALL_TO_CLOUD, LP_HTA, AlgorithmResult
from repro.workload.profiles import PAPER_DEFAULTS

_PROFILE = PAPER_DEFAULTS.with_updates(num_tasks=8)


def _probe_reference_mode(scenario) -> AlgorithmResult:
    """Module-level evaluator (pickles by reference) that reports the
    worker's effective perf mode in ``involved_devices``."""
    return AlgorithmResult(
        name="probe",
        total_energy_j=0.0,
        mean_latency_s=0.0,
        unsatisfied_rate=0.0,
        processing_time_s=0.0,
        involved_devices=int(reference_mode()),
    )


def _spawn_available() -> bool:
    return "spawn" in multiprocessing.get_all_start_methods()


def _probe_cells(n=2):
    spec = as_spec("probe", _probe_reference_mode)
    return [
        SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=(spec,))
        for i in range(n)
    ]


class TestFlagPropagation:
    def test_in_process_sees_ambient_context(self):
        with perf_config(reference=True):
            results = run_cells(_probe_cells(), jobs=1)
        assert all(row[0].involved_devices == 1 for row in results)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_see_submitters_context(self, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        with perf_config(reference=True):
            results = run_cells(
                _probe_cells(), jobs=2, start_method=start_method
            )
        # Without explicit contexts, spawn workers would report 0 here:
        # their processes start fresh and never see the parent's flag.
        assert all(row[0].involved_devices == 1 for row in results)

    def test_explicit_cell_context_beats_ambient(self):
        spec = as_spec("probe", _probe_reference_mode)
        cells = [
            SweepCell(
                index=0,
                profile=_PROFILE,
                seed=0,
                evaluators=(spec,),
                context=RunContext(reference=True),
            )
        ]
        # Ambient context is optimised; the cell's own context must win.
        assert run_cells(cells, jobs=1)[0][0].involved_devices == 1


class TestReferenceDifferential:
    """RunContext(reference=True) is bit-identical across start methods."""

    def _cells(self):
        specs = (holistic_spec(LP_HTA), holistic_spec(ALL_TO_CLOUD))
        return [
            SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=specs)
            for i in range(2)
        ]

    @pytest.mark.parametrize("reference", [False, True])
    def test_fork_and_spawn_match_sequential(self, reference):
        with use_context(RunContext(reference=reference)):
            sequential = run_cells(self._cells(), jobs=1)
            fork = run_cells(self._cells(), jobs=2, start_method="fork")
        assert sequential == fork
        if _spawn_available():
            with use_context(RunContext(reference=reference)):
                spawn = run_cells(
                    self._cells(), jobs=2, start_method="spawn"
                )
            assert sequential == spawn

    def test_reference_matches_optimized(self):
        with use_context(RunContext(reference=True)):
            reference = run_cells(self._cells(), jobs=1)
        with use_context(RunContext(reference=False)):
            optimized = run_cells(self._cells(), jobs=1)
        # The perf contract: mode changes speed, never results.
        assert reference == optimized


class TestTelemetryMergeAcrossProcesses:
    def test_worker_telemetry_merges_into_submitter(self):
        context = RunContext()
        cells = [
            SweepCell(
                index=i,
                profile=_PROFILE,
                seed=i,
                evaluators=(holistic_spec(LP_HTA),),
            )
            for i in range(2)
        ]
        with use_context(context):
            run_cells(cells, jobs=2, start_method="fork")
        # LP-HTA solves at least one LP per cluster per cell; the workers'
        # counters must land in the submitting context's sink.
        assert context.telemetry.solves > 0
        assert context.telemetry.solve_wall_s > 0.0

    def test_context_pickle_resets_telemetry(self):
        import pickle

        context = RunContext()
        context.telemetry.record_solve(wall_time_s=1.0, iterations=5)
        clone = pickle.loads(pickle.dumps(context))
        assert clone == context  # telemetry is excluded from equality
        assert clone.telemetry.solves == 0
        assert context.telemetry.solves == 1

    def test_ambient_context_restored_after_run(self):
        before = current_context()
        run_cells(_probe_cells(1), jobs=1)
        assert current_context() is before
