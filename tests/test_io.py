"""JSON serialization round-trips."""

import json

import numpy as np
import pytest

from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.experiments.figures import fig2a
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    series_from_dict,
    series_to_dict,
    system_from_dict,
    system_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def holistic_scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=30, num_devices=8, num_stations=2),
        seed=5,
    )


class TestTaskRoundTrip:
    def test_all_fields_preserved(self, holistic_scenario):
        for task in holistic_scenario.tasks:
            restored = task_from_dict(task_to_dict(task))
            assert restored == task

    def test_json_serializable(self, holistic_scenario):
        text = json.dumps([task_to_dict(t) for t in holistic_scenario.tasks])
        assert len(text) > 0


class TestSystemRoundTrip:
    def test_costs_identical_after_round_trip(self, holistic_scenario):
        restored = system_from_dict(system_to_dict(holistic_scenario.system))
        original_costs = cluster_costs(
            holistic_scenario.system, list(holistic_scenario.tasks)
        )
        restored_costs = cluster_costs(restored, list(holistic_scenario.tasks))
        np.testing.assert_allclose(original_costs.energy_j, restored_costs.energy_j)
        np.testing.assert_allclose(original_costs.time_s, restored_costs.time_s)

    def test_topology_preserved(self, holistic_scenario):
        restored = system_from_dict(system_to_dict(holistic_scenario.system))
        assert restored.cluster_sizes() == holistic_scenario.system.cluster_sizes()
        for device_id in holistic_scenario.system.devices:
            assert restored.cluster_of(device_id) == (
                holistic_scenario.system.cluster_of(device_id)
            )


class TestScenarioRoundTrip:
    def test_holistic(self, holistic_scenario):
        restored = scenario_from_dict(scenario_to_dict(holistic_scenario))
        assert restored.seed == holistic_scenario.seed
        assert restored.tasks == holistic_scenario.tasks
        assert restored.profile == holistic_scenario.profile

    def test_divisible(self, divisible_scenario):
        restored = scenario_from_dict(scenario_to_dict(divisible_scenario))
        assert restored.catalog.item_ids == divisible_scenario.catalog.item_ids
        for item_id in restored.catalog.item_ids:
            assert restored.catalog.size_of(item_id) == pytest.approx(
                divisible_scenario.catalog.size_of(item_id)
            )
        for device_id in divisible_scenario.ownership.device_ids:
            assert restored.ownership.items_of(device_id) == (
                divisible_scenario.ownership.items_of(device_id)
            )

    def test_file_round_trip(self, holistic_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(holistic_scenario, path)
        restored = load_scenario(path)
        assert restored.tasks == holistic_scenario.tasks

    def test_unknown_version_rejected(self, holistic_scenario):
        data = scenario_to_dict(holistic_scenario)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            scenario_from_dict(data)


class TestAssignmentRoundTrip:
    def test_energy_preserved(self, holistic_scenario):
        report = lp_hta(holistic_scenario.system, list(holistic_scenario.tasks))
        data = assignment_to_dict(report.assignment)
        restored = assignment_from_dict(
            data, holistic_scenario.system, list(holistic_scenario.tasks)
        )
        assert restored.decisions == report.assignment.decisions
        assert restored.total_energy_j() == pytest.approx(
            report.assignment.total_energy_j()
        )

    def test_missing_decision_rejected(self, holistic_scenario):
        report = lp_hta(holistic_scenario.system, list(holistic_scenario.tasks))
        data = assignment_to_dict(report.assignment)
        data["decisions"].pop()
        with pytest.raises(ValueError, match="no stored decision"):
            assignment_from_dict(
                data, holistic_scenario.system, list(holistic_scenario.tasks)
            )


class TestSeriesRoundTrip:
    def test_round_trip(self):
        data = fig2a(seeds=(0,))
        restored = series_from_dict(series_to_dict(data))
        assert restored == data
        assert restored.format_table() == data.format_table()
