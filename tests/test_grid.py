"""The parameter-grid sweep utility."""

import pytest

from repro.experiments.grid import pivot, run_grid
from repro.experiments.runner import evaluate_holistic
from repro.workload import PAPER_DEFAULTS

_BASE = PAPER_DEFAULTS.with_updates(num_tasks=30, num_devices=8, num_stations=2)
_EVALUATORS = {"LP-HTA": lambda scenario: evaluate_holistic(scenario, "LP-HTA")}


@pytest.fixture(scope="module")
def cells():
    return run_grid(
        _BASE,
        {"num_tasks": [20, 40], "device_max_resource": [3.0, 9.0]},
        _EVALUATORS,
        seeds=(0,),
    )


class TestRunGrid:
    def test_full_cross_product(self, cells):
        assert len(cells) == 4  # 2 × 2 points × 1 evaluator
        points = {tuple(sorted(c.point.items())) for c in cells}
        assert len(points) == 4

    def test_metrics_populated(self, cells):
        for cell in cells:
            assert cell.metric("total_energy_j") > 0
            assert 0 <= cell.metric("unsatisfied_rate") <= 1

    def test_multiple_evaluators(self):
        evaluators = {
            name: (lambda s, n=name: evaluate_holistic(s, n))
            for name in ("LP-HTA", "AllToC")
        }
        cells = run_grid(_BASE, {"num_tasks": [20]}, evaluators, seeds=(0,))
        assert {c.evaluator for c in cells} == {"LP-HTA", "AllToC"}

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one axis"):
            run_grid(_BASE, {}, _EVALUATORS)
        with pytest.raises(ValueError, match="at least one evaluator"):
            run_grid(_BASE, {"num_tasks": [10]}, {})
        with pytest.raises(ValueError, match="unknown profile field"):
            run_grid(_BASE, {"warp_factor": [9]}, _EVALUATORS)

    def test_unknown_metric_raises(self, cells):
        with pytest.raises(KeyError):
            cells[0].metric("flux")


class TestPivot:
    def test_axis_extraction(self, cells):
        series = pivot(cells, "num_tasks", "total_energy_j", "LP-HTA")
        assert [point for point, _ in series] == [20, 40]
        # More tasks → more energy (the other axis is averaged out).
        assert series[1][1] > series[0][1]

    def test_other_axes_averaged(self, cells):
        series = pivot(cells, "device_max_resource", "total_energy_j", "LP-HTA")
        assert len(series) == 2

    def test_no_match_raises(self, cells):
        with pytest.raises(ValueError, match="no cells match"):
            pivot(cells, "num_tasks", "total_energy_j", "SGD")
