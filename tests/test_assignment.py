"""Assignment representation and metrics."""

import numpy as np
import pytest

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.task import Task
from repro.units import KB


@pytest.fixture
def costs(two_cluster_system):
    tasks = [
        Task(owner_device_id=0, index=0, local_bytes=500 * KB,
             external_bytes=0.0, external_source=None,
             resource_demand=1.0, deadline_s=5.0),
        Task(owner_device_id=0, index=1, local_bytes=800 * KB,
             external_bytes=200 * KB, external_source=1,
             resource_demand=2.0, deadline_s=5.0),
        Task(owner_device_id=1, index=0, local_bytes=300 * KB,
             external_bytes=0.0, external_source=None,
             resource_demand=0.5, deadline_s=0.001),  # nothing meets this
    ]
    return cluster_costs(two_cluster_system, tasks)


class TestSubsystem:
    def test_columns(self):
        assert Subsystem.DEVICE.column == 0
        assert Subsystem.STATION.column == 1
        assert Subsystem.CLOUD.column == 2

    def test_cancelled_has_no_column(self):
        with pytest.raises(ValueError):
            Subsystem.CANCELLED.column

    def test_values_match_paper_indices(self):
        assert int(Subsystem.DEVICE) == 1
        assert int(Subsystem.STATION) == 2
        assert int(Subsystem.CLOUD) == 3


class TestConstruction:
    def test_length_mismatch_rejected(self, costs):
        with pytest.raises(ValueError):
            Assignment(costs, [Subsystem.DEVICE])

    def test_uniform(self, costs):
        a = Assignment.uniform(costs, Subsystem.CLOUD)
        assert all(d is Subsystem.CLOUD for d in a.decisions)

    def test_indicator_roundtrip(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.STATION, Subsystem.CANCELLED])
        x = a.to_indicator()
        assert x.shape == (3, 3)
        assert x[0, 0] == 1 and x[1, 1] == 1
        assert np.all(x[2] == 0)
        b = Assignment.from_indicator(costs, x)
        assert b.decisions == a.decisions

    def test_indicator_rejects_double_assignment(self, costs):
        x = np.zeros((3, 3))
        x[0, 0] = x[0, 1] = 1.0
        with pytest.raises(ValueError, match="multiple"):
            Assignment.from_indicator(costs, x)

    def test_replace(self, costs):
        a = Assignment.uniform(costs, Subsystem.DEVICE)
        b = a.replace(1, Subsystem.CLOUD)
        assert a.decisions[1] is Subsystem.DEVICE  # original untouched
        assert b.decisions[1] is Subsystem.CLOUD


class TestMetrics:
    def test_total_energy_sums_decisions(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD])
        expected = costs.energy_j[0, 0] + costs.energy_j[1, 1] + costs.energy_j[2, 2]
        assert a.total_energy_j() == pytest.approx(expected)

    def test_cancelled_tasks_cost_nothing(self, costs):
        a = Assignment(costs, [Subsystem.CANCELLED] * 3)
        assert a.total_energy_j() == 0.0
        assert a.latencies_s() == []

    def test_unsatisfied_rate_counts_misses_and_cancels(self, costs):
        # Task 2 misses any deadline; task 0 cancelled; task 1 fine.
        a = Assignment(costs, [Subsystem.CANCELLED, Subsystem.DEVICE, Subsystem.DEVICE])
        assert a.unsatisfied_rate() == pytest.approx(2 / 3)

    def test_device_loads(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.STATION])
        loads = a.device_loads()
        assert loads[0] == pytest.approx(3.0)
        assert loads[1] == pytest.approx(0.0)

    def test_station_load(self, costs):
        a = Assignment(costs, [Subsystem.STATION, Subsystem.DEVICE, Subsystem.STATION])
        assert a.station_load() == pytest.approx(1.5)

    def test_involved_devices(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.CLOUD])
        assert a.involved_devices() == 1

    def test_stats_consistency(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD])
        stats = a.stats()
        assert stats.total_energy_j == pytest.approx(a.total_energy_j())
        assert stats.per_subsystem[Subsystem.DEVICE] == 1
        assert stats.max_latency_s >= stats.mean_latency_s


class TestViolations:
    def test_feasible_assignment_has_none(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.CANCELLED])
        assert a.violations({0: 5.0, 1: 5.0}, station_cap=10.0) == []

    def test_deadline_violation_reported(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.DEVICE])
        problems = a.violations({0: 5.0, 1: 5.0}, station_cap=10.0)
        assert any("C1" in p for p in problems)

    def test_device_cap_violation_reported(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.CANCELLED])
        problems = a.violations({0: 1.0}, station_cap=10.0)
        assert any("C2" in p for p in problems)

    def test_station_cap_violation_reported(self, costs):
        a = Assignment(costs, [Subsystem.STATION, Subsystem.STATION, Subsystem.CANCELLED])
        problems = a.violations({}, station_cap=0.5)
        assert any("C3" in p for p in problems)

    def test_require_all_assigned(self, costs):
        a = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE, Subsystem.CANCELLED])
        problems = a.violations({}, station_cap=10.0, require_all_assigned=True)
        assert any("C4" in p for p in problems)
