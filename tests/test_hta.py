"""LP-HTA: the six-step algorithm and its reports."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import LPHTAOptions, lp_hta, lp_hta_cluster
from repro.core.task import Task
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _caps(system):
    return {d: system.device(d).max_resource for d in system.devices}


class TestOptions:
    def test_bad_rounding_rejected(self):
        with pytest.raises(ValueError):
            LPHTAOptions(rounding="ceil")

    def test_bad_repair_order_rejected(self):
        with pytest.raises(ValueError):
            LPHTAOptions(repair_order="random")


class TestFeasibility:
    """LP-HTA's output must satisfy every constraint (Section III-B.1)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_result_is_always_feasible(self, seed):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=60, num_devices=10, num_stations=2),
            seed=seed,
        )
        report = lp_hta(scenario.system, list(scenario.tasks))
        assignment = report.assignment
        caps = _caps(scenario.system)
        # Check C1/C2 globally; C3 per cluster.
        problems = [
            p
            for p in assignment.violations(caps, station_cap=float("inf"))
            if "C3" not in p
        ]
        assert problems == []
        for station_id in scenario.system.stations:
            load = sum(
                assignment.costs.resource[row]
                for row, decision in enumerate(assignment.decisions)
                if decision is Subsystem.STATION
                and scenario.system.cluster_of(
                    assignment.costs.tasks[row].owner_device_id
                )
                == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    def test_impossible_task_is_cancelled(self, two_cluster_system):
        task = Task(
            owner_device_id=0, index=0, local_bytes=5000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=0.001,
        )
        report = lp_hta(two_cluster_system, [task])
        assert report.assignment.decisions[0] is Subsystem.CANCELLED
        assert report.clusters[0].cancelled_tasks == ((0, 0),)


class TestSteps:
    def test_zero_device_cap_forces_offload(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=400 * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=1.0, deadline_s=10.0)
            for j in range(3)
        ]
        costs = cluster_costs(two_cluster_system, tasks)
        decisions, report = lp_hta_cluster(costs, {0: 0.0}, station_cap=100.0)
        assert all(d is not Subsystem.DEVICE for d in decisions)
        assert all(d is not Subsystem.CANCELLED for d in decisions)

    def test_zero_station_cap_pushes_to_cloud(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=400 * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=1.0, deadline_s=10.0)
            for j in range(4)
        ]
        costs = cluster_costs(two_cluster_system, tasks)
        decisions, _ = lp_hta_cluster(costs, {0: 0.0}, station_cap=0.0)
        assert all(d is Subsystem.CLOUD for d in decisions)

    def test_knapsack_special_case(self, two_cluster_system):
        """Theorem 1's reduction: max_i = 0, T = inf — tasks split between
        station and cloud by the knapsack on max_S."""
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=(300 + 200 * j) * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=1.0 + j, deadline_s=1e9)
            for j in range(4)
        ]
        costs = cluster_costs(two_cluster_system, tasks)
        decisions, report = lp_hta_cluster(costs, {0: 0.0}, station_cap=5.0)
        assert all(d in (Subsystem.STATION, Subsystem.CLOUD) for d in decisions)
        station_load = sum(
            costs.resource[r]
            for r, d in enumerate(decisions) if d is Subsystem.STATION
        )
        assert station_load <= 5.0

    def test_empty_cluster(self, two_cluster_system):
        costs = cluster_costs(two_cluster_system, [])
        decisions, report = lp_hta_cluster(costs, {}, station_cap=1.0)
        assert decisions == []
        assert report.num_tasks == 0


class TestReports:
    def test_cluster_reports_cover_all_clusters(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        assert {c.station_id for c in report.clusters} == set(
            small_scenario.system.stations
        )
        assert sum(c.num_tasks for c in report.clusters) == len(small_scenario.tasks)

    def test_energy_decomposes_over_clusters(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        assert report.assignment.total_energy_j() == pytest.approx(
            sum(c.final_energy_j for c in report.clusters)
        )

    def test_theorem2_bound_at_least_three(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        assert report.ratio_bound_theorem2 >= 3.0
        for cluster in report.clusters:
            assert cluster.ratio_bound_corollary1 <= cluster.ratio_bound_theorem2 + 1e-12

    def test_lp_objective_lower_bounds_feasible_energy(self, small_scenario):
        """The relaxation optimum can only underestimate the rounded cost
        when no tasks were cancelled."""
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if cancelled == 0:
            assert (
                report.assignment.total_energy_j() >= report.lp_objective_j - 1e-6
            )


class TestAblationOptions:
    def test_randomized_rounding_still_feasible(self, small_scenario):
        options = LPHTAOptions(rounding="randomized", seed=5)
        report = lp_hta(small_scenario.system, list(small_scenario.tasks), options)
        caps = _caps(small_scenario.system)
        problems = [
            p for p in report.assignment.violations(caps, float("inf"))
            if "C3" not in p
        ]
        assert problems == []

    def test_smallest_first_repair_still_feasible(self, small_scenario):
        options = LPHTAOptions(repair_order="smallest-first")
        report = lp_hta(small_scenario.system, list(small_scenario.tasks), options)
        caps = _caps(small_scenario.system)
        problems = [
            p for p in report.assignment.violations(caps, float("inf"))
            if "C3" not in p
        ]
        assert problems == []

    @pytest.mark.parametrize("backend", ["structured", "interior-point", "simplex", "scipy"])
    def test_backends_agree_on_energy(self, backend):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=20, num_devices=5, num_stations=1),
            seed=7,
        )
        base = lp_hta(scenario.system, list(scenario.tasks), LPHTAOptions())
        other = lp_hta(
            scenario.system, list(scenario.tasks), LPHTAOptions(backend=backend)
        )
        assert other.assignment.total_energy_j() == pytest.approx(
            base.assignment.total_energy_j(), rel=1e-4
        )
