"""Figure reproducers: sweep configurations match the paper's setups."""

import pytest

from repro.experiments import figures


class TestSweepRanges:
    def test_task_sweep_matches_paper(self):
        assert figures.TASK_SWEEP[0] == 100
        assert figures.TASK_SWEEP[-1] == 450

    def test_input_sweep_matches_paper(self):
        assert figures.INPUT_SWEEP_KB == (1000, 2000, 3000, 4000, 5000)

    def test_default_seeds(self):
        assert len(figures.DEFAULT_SEEDS) >= 3


class TestFigureConfigurations:
    """Pin each figure's sweep/competitors to what the paper describes."""

    def test_fig2a(self):
        data = figures.fig2a(seeds=(0,))
        assert data.x_values == figures.TASK_SWEEP
        assert set(data.series) == {"LP-HTA", "HGOS", "AllToC", "AllOffload"}
        assert data.y_label.startswith("total energy")

    def test_fig3_drops_alltoc(self):
        data = figures.fig3(seeds=(0,))
        assert "AllToC" not in data.series  # as in the paper

    def test_fig5b_result_sizes(self):
        data = figures.fig5b(seeds=(0,))
        assert data.x_values == ("0.4X", "0.2X", "0.1X", "0.05X", "const")

    def test_fig6a_sweep(self):
        data = figures.fig6a(seeds=(0,))
        assert data.x_values == (1200, 1400, 1600, 1800, 2000)
        assert set(data.series) == {"DTA-Workload", "DTA-Number"}

    def test_fig6b_extends_to_900(self):
        data = figures.fig6b(seeds=(0,))
        assert data.x_values[-1] == 900


class TestDivisibleProfileHelper:
    def test_marks_divisible_and_scales_universe(self):
        from repro.workload import PAPER_DEFAULTS

        profile = figures._divisible(PAPER_DEFAULTS.with_updates(num_tasks=500))
        assert profile.divisible
        assert profile.num_data_items == 1000
        assert profile.item_replication == figures._DTA_REPLICATION

    def test_small_workloads_keep_floor(self):
        from repro.workload import PAPER_DEFAULTS

        profile = figures._divisible(PAPER_DEFAULTS.with_updates(num_tasks=50))
        assert profile.num_data_items == 200

    def test_deadlines_loosened_for_energy_comparability(self):
        from repro.workload import PAPER_DEFAULTS

        profile = figures._divisible(PAPER_DEFAULTS)
        lo, hi = profile.deadline_range_s
        assert lo >= 2.0  # see the helper's docstring


class TestSeriesNumerics:
    def test_seed_averaging_changes_values(self):
        one = figures.fig2b(seeds=(0,))
        two = figures.fig2b(seeds=(1,))
        avg = figures.fig2b(seeds=(0, 1))
        for name in one.series:
            for a, b, m in zip(
                one.values_of(name), two.values_of(name), avg.values_of(name)
            ):
                assert m == pytest.approx((a + b) / 2, rel=1e-9)

    def test_deterministic_per_seed(self):
        a = figures.fig2b(seeds=(0,))
        b = figures.fig2b(seeds=(0,))
        assert a.series == b.series
