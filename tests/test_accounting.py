"""DTA pipeline accounting."""

import pytest

from repro.core.hta import lp_hta
from repro.dta.accounting import evaluate_plan, run_dta
from repro.dta.coverage import dta_number, dta_workload
from repro.dta.rearrange import rearrange_tasks


class TestRunDTA:
    def test_outcome_components_positive(self, divisible_scenario):
        outcome = run_dta(
            divisible_scenario.system,
            list(divisible_scenario.tasks),
            divisible_scenario.ownership,
            divisible_scenario.catalog,
            objective="workload",
        )
        assert outcome.execution_energy_j > 0
        assert outcome.op_info_energy_j > 0
        assert outcome.partial_result_energy_j > 0
        assert outcome.final_result_energy_j > 0
        assert outcome.total_energy_j == pytest.approx(
            outcome.execution_energy_j
            + outcome.op_info_energy_j
            + outcome.partial_result_energy_j
            + outcome.final_result_energy_j
        )
        assert outcome.processing_time_s > 0

    def test_unknown_objective_rejected(self, divisible_scenario):
        with pytest.raises(ValueError, match="unknown DTA objective"):
            run_dta(
                divisible_scenario.system,
                list(divisible_scenario.tasks),
                divisible_scenario.ownership,
                divisible_scenario.catalog,
                objective="fastest",
            )

    def test_number_uses_fewer_or_equal_devices(self, divisible_scenario):
        workload = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "workload",
        )
        number = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "number",
        )
        assert number.involved_devices <= workload.involved_devices

    def test_dta_saves_energy_versus_holistic(self, divisible_scenario):
        """The Fig. 5 claim: rearrangement beats shipping raw data."""
        holistic = lp_hta(
            divisible_scenario.system, list(divisible_scenario.tasks)
        ).assignment.total_energy_j()
        outcome = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "workload",
        )
        assert outcome.total_energy_j < holistic

    def test_coverage_matches_objective(self, divisible_scenario):
        universe = divisible_scenario.universe
        outcome = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "number",
        )
        expected = dta_number(universe, divisible_scenario.ownership)
        assert outcome.coverage.sets == expected.sets


class TestEvaluatePlan:
    def test_explicit_pipeline_equals_run_dta(self, divisible_scenario):
        universe = divisible_scenario.universe
        coverage = dta_workload(universe, divisible_scenario.ownership)
        plan = rearrange_tasks(
            list(divisible_scenario.tasks), coverage, divisible_scenario.catalog
        )
        outcome = evaluate_plan(
            divisible_scenario.system, plan, divisible_scenario.catalog
        )
        shortcut = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "workload",
        )
        assert outcome.total_energy_j == pytest.approx(shortcut.total_energy_j)
        assert outcome.processing_time_s == pytest.approx(shortcut.processing_time_s)

    def test_hta_report_attached(self, divisible_scenario):
        outcome = run_dta(
            divisible_scenario.system, list(divisible_scenario.tasks),
            divisible_scenario.ownership, divisible_scenario.catalog, "workload",
        )
        assert outcome.hta_report.assignment is outcome.assignment
        assert outcome.assignment.costs.num_tasks == outcome.plan.num_subtasks
