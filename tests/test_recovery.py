"""Recovery policies: threat detection, policy behaviour, cost bounds."""

import pytest

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.faults.recovery import (
    RECOVERY_POLICIES,
    RecoveryOptions,
    apply_recovery,
    detect_threats,
    surviving_system,
)

BACKHAUL = ((0.0, 3.0),)
_CLOUD = Subsystem.CLOUD.column


@pytest.fixture
def batch(local_task, shared_task_cross_cluster):
    """Row 0: no external data; row 1: cross-cluster external data."""
    return [local_task, shared_task_cross_cluster]


@pytest.fixture
def device_assignment(two_cluster_system, batch):
    costs = cluster_costs(two_cluster_system, batch)
    return Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE])


class TestDetectThreats:
    def test_no_faults_no_threats(self, two_cluster_system, batch, device_assignment):
        threats = detect_threats(two_cluster_system, batch, device_assignment)
        assert not threats.any_faults
        assert threats.threatened_rows == ()

    def test_backhaul_outage_threatens_cross_cluster_task(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            backhaul_outages=BACKHAUL,
        )
        assert threats.outage_rows == (1,)
        assert threats.crash_rows == ()
        assert threats.dropped_rows == ()

    def test_departed_owner_beats_outage(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            backhaul_outages=BACKHAUL, departed=frozenset({0}),
        )
        # Both tasks belong to device 0 — they are dropped, not threatened.
        assert threats.dropped_rows == (0, 1)
        assert threats.outage_rows == ()

    def test_departed_data_source_is_data_loss(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            departed=frozenset({2}),
        )
        assert threats.data_loss_rows == (1,)
        assert threats.dropped_rows == ()

    def test_crashed_station_threatens_station_tasks(
        self, two_cluster_system, batch
    ):
        costs = cluster_costs(two_cluster_system, batch)
        assignment = Assignment(costs, [Subsystem.STATION, Subsystem.STATION])
        threats = detect_threats(
            two_cluster_system, batch, assignment, crashed=frozenset({0}),
        )
        assert threats.crash_rows == (0, 1)

    def test_cancelled_rows_never_threatened(
        self, two_cluster_system, batch
    ):
        costs = cluster_costs(two_cluster_system, batch)
        assignment = Assignment(costs, [Subsystem.DEVICE, Subsystem.CANCELLED])
        threats = detect_threats(
            two_cluster_system, batch, assignment,
            backhaul_outages=BACKHAUL, crashed=frozenset({0}),
        )
        assert 1 not in threats.threatened_rows

    def test_planned_miss_is_not_a_threat(
        self, two_cluster_system, local_task, shared_task_cross_cluster
    ):
        # A deadline below the healthy latency means the planner already
        # missed; outages cannot make recovery responsible for it.
        import dataclasses

        doomed = dataclasses.replace(shared_task_cross_cluster, deadline_s=0.1)
        batch = [local_task, doomed]
        costs = cluster_costs(two_cluster_system, batch)
        assignment = Assignment(costs, [Subsystem.DEVICE, Subsystem.DEVICE])
        threats = detect_threats(
            two_cluster_system, batch, assignment, backhaul_outages=BACKHAUL,
        )
        assert threats.outage_rows == ()

    def test_start_times_shift_exposure(
        self, two_cluster_system, batch, device_assignment
    ):
        # Launched at 10 s, the cross-cluster task misses a window that
        # ends at 3 s entirely.
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            backhaul_outages=BACKHAUL, start_times=[10.0, 10.0],
        )
        assert threats.outage_rows == ()
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            backhaul_outages=((9.0, 13.0),), start_times=[10.0, 10.0],
        )
        assert threats.outage_rows == (1,)


class TestSurvivingSystem:
    def test_departed_devices_removed(self, two_cluster_system):
        survivors = surviving_system(two_cluster_system, departed=frozenset({1}))
        assert sorted(survivors.devices) == [0, 2, 3]
        assert sorted(survivors.stations) == [0, 1]

    def test_crashed_station_reattaches_cluster(self, two_cluster_system):
        survivors = surviving_system(two_cluster_system, crashed=frozenset({1}))
        assert sorted(survivors.stations) == [0]
        # Devices 2 and 3 lived under station 1; they re-home to station 0.
        assert survivors.cluster_of(2) == 0
        assert survivors.cluster_of(3) == 0

    def test_none_when_nothing_survives(self, two_cluster_system):
        assert (
            surviving_system(two_cluster_system, crashed=frozenset({0, 1}))
            is None
        )
        assert (
            surviving_system(
                two_cluster_system, departed=frozenset({0, 1, 2, 3})
            )
            is None
        )


class TestApplyRecovery:
    def _threats(self, system, batch, assignment):
        return detect_threats(
            system, batch, assignment, backhaul_outages=BACKHAUL
        )

    def test_unknown_policy_rejected(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        with pytest.raises(ValueError, match="policy"):
            apply_recovery(
                "reboot", 0, two_cluster_system, batch, device_assignment,
                threats,
            )

    def test_fail_stop_charges_cloud_redo(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "none", 0, two_cluster_system, batch, device_assignment, threats,
            backhaul_outages=BACKHAUL,
        )
        (event,) = outcome.events
        assert event.action == "none"
        assert not event.recovered
        redo = float(device_assignment.costs.energy_j[1, _CLOUD])
        assert event.extra_energy_j == pytest.approx(redo)
        assert outcome.unsatisfied_rows == frozenset({1})

    def test_retry_recovers_within_budget(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "retry", 0, two_cluster_system, batch, device_assignment, threats,
            backhaul_outages=BACKHAUL,
        )
        (event,) = outcome.events
        assert event.action == "retry"
        assert event.recovered
        redo = float(device_assignment.costs.energy_j[1, _CLOUD])
        assert 0.0 < event.extra_energy_j <= redo
        assert outcome.recovered_rows == frozenset({1})

    def test_retry_gives_up_when_backoff_breaks_deadline(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "retry", 0, two_cluster_system, batch, device_assignment, threats,
            options=RecoveryOptions(backoff_base_s=100.0),
            backhaul_outages=BACKHAUL,
        )
        (event,) = outcome.events
        assert not event.recovered
        # A failed retry costs exactly the fail-stop baseline.
        redo = float(device_assignment.costs.energy_j[1, _CLOUD])
        assert event.extra_energy_j == pytest.approx(redo)

    def test_degrade_recovers_at_baseline_cost(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "degrade", 0, two_cluster_system, batch, device_assignment,
            threats, backhaul_outages=BACKHAUL,
        )
        (event,) = outcome.events
        assert event.action == "degrade"
        assert event.recovered
        redo = float(device_assignment.costs.energy_j[1, _CLOUD])
        assert event.extra_energy_j == pytest.approx(redo)

    def test_reassign_recovers_cheaper_than_redo(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "reassign", 0, two_cluster_system, batch, device_assignment,
            threats, backhaul_outages=BACKHAUL,
        )
        (event,) = outcome.events
        assert event.action == "reassign"
        assert event.recovered
        redo = float(device_assignment.costs.energy_j[1, _CLOUD])
        assert event.extra_energy_j <= redo

    def test_every_policy_bounded_by_fail_stop(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        baseline = apply_recovery(
            "none", 0, two_cluster_system, batch, device_assignment, threats,
            backhaul_outages=BACKHAUL,
        )
        for policy in RECOVERY_POLICIES:
            outcome = apply_recovery(
                policy, 0, two_cluster_system, batch, device_assignment,
                threats, backhaul_outages=BACKHAUL,
            )
            assert outcome.extra_energy_j <= baseline.extra_energy_j + 1e-9
            assert len(outcome.unsatisfied_rows) <= len(
                baseline.unsatisfied_rows
            )

    def test_departure_refunds_planned_energy(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            departed=frozenset({0}),
        )
        outcome = apply_recovery(
            "none", 0, two_cluster_system, batch, device_assignment, threats,
            departed=frozenset({0}),
        )
        assert {e.kind for e in outcome.events} == {"departure"}
        for event in outcome.events:
            assert event.action == "drop"
            assert event.extra_energy_j == pytest.approx(
                -device_assignment.task_energy_j(event.row)
            )

    def test_data_loss_costs_nothing_extra(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            departed=frozenset({2}),
        )
        outcome = apply_recovery(
            "retry", 0, two_cluster_system, batch, device_assignment, threats,
            departed=frozenset({2}),
        )
        (event,) = outcome.events
        assert event.kind == "data-loss"
        assert event.action == "drop"
        assert event.extra_energy_j == 0.0

    def test_outcome_counts_and_event_tuples(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = self._threats(two_cluster_system, batch, device_assignment)
        outcome = apply_recovery(
            "retry", 3, two_cluster_system, batch, device_assignment, threats,
            backhaul_outages=BACKHAUL,
        )
        assert outcome.counts == {"retry": 1}
        (event,) = outcome.events
        assert event.as_tuple() == (
            3, batch[1].task_id, 1, "outage", "retry", True,
            event.extra_energy_j,
        )

    def test_extra_energy_is_sum_of_events(
        self, two_cluster_system, batch, device_assignment
    ):
        threats = detect_threats(
            two_cluster_system, batch, device_assignment,
            backhaul_outages=BACKHAUL, departed=frozenset({2}),
        )
        outcome = apply_recovery(
            "degrade", 0, two_cluster_system, batch, device_assignment,
            threats, backhaul_outages=BACKHAUL, departed=frozenset({2}),
        )
        assert outcome.extra_energy_j == pytest.approx(
            sum(e.extra_energy_j for e in outcome.events)
        )
