"""The baseline assignment schemes."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.baselines import (
    all_offload,
    all_to_cloud,
    hgos,
    local_first,
    random_assignment,
)
from repro.core.task import Task
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture
def scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=50, num_devices=10, num_stations=2),
        seed=4,
    )


class TestAllToC:
    def test_everything_on_cloud(self, scenario):
        assignment = all_to_cloud(scenario.system, list(scenario.tasks))
        assert all(d is Subsystem.CLOUD for d in assignment.decisions)

    def test_energy_positive(self, scenario):
        assignment = all_to_cloud(scenario.system, list(scenario.tasks))
        assert assignment.total_energy_j() > 0


class TestAllOffload:
    def test_no_device_execution(self, scenario):
        assignment = all_offload(scenario.system, list(scenario.tasks))
        assert all(
            d in (Subsystem.STATION, Subsystem.CLOUD) for d in assignment.decisions
        )

    def test_station_caps_respected(self, scenario):
        assignment = all_offload(scenario.system, list(scenario.tasks))
        for station_id in scenario.system.stations:
            load = sum(
                assignment.costs.resource[row]
                for row, d in enumerate(assignment.decisions)
                if d is Subsystem.STATION
                and scenario.system.cluster_of(
                    assignment.costs.tasks[row].owner_device_id
                ) == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    def test_overflow_goes_to_cloud(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=100 * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=15.0, deadline_s=10.0)
            for j in range(3)
        ]
        assignment = all_offload(two_cluster_system, tasks)
        # Station cap is 20: one task fits, two overflow to the cloud.
        counts = assignment.subsystem_counts()
        assert counts[Subsystem.STATION] == 1
        assert counts[Subsystem.CLOUD] == 2


class TestHGOS:
    def test_never_cancels(self, scenario):
        assignment = hgos(scenario.system, list(scenario.tasks))
        assert all(d is not Subsystem.CANCELLED for d in assignment.decisions)

    def test_respects_resource_caps(self, scenario):
        assignment = hgos(scenario.system, list(scenario.tasks))
        for device_id, load in assignment.device_loads().items():
            assert load <= scenario.system.device(device_id).max_resource + 1e-9

    def test_charged_true_costs_not_perceived(self, two_cluster_system):
        """HGOS decides with data-blind prices but pays the real ones."""
        task = Task(
            owner_device_id=0, index=0, local_bytes=500 * KB,
            external_bytes=400 * KB, external_source=2,  # cross-cluster
            resource_demand=1.0, deadline_s=10.0,
        )
        assignment = hgos(two_cluster_system, [task])
        decision = assignment.decisions[0]
        true_cost = assignment.costs.energy_j[0, decision.column]
        assert assignment.total_energy_j() == pytest.approx(true_cost)

    def test_deadline_blindness(self, scenario):
        """HGOS misses at least as many deadlines as a deadline-aware greedy."""
        blind = hgos(scenario.system, list(scenario.tasks))
        aware = local_first(scenario.system, list(scenario.tasks))
        assert blind.unsatisfied_rate() >= aware.unsatisfied_rate() - 0.05


class TestLocalFirst:
    def test_constraints_respected(self, scenario):
        assignment = local_first(scenario.system, list(scenario.tasks))
        caps = {
            d: scenario.system.device(d).max_resource for d in scenario.system.devices
        }
        problems = [
            p for p in assignment.violations(caps, float("inf")) if "C3" not in p
        ]
        assert problems == []


class TestRandomAssignment:
    def test_deterministic_under_seed(self, scenario):
        a = random_assignment(scenario.system, list(scenario.tasks), seed=1)
        b = random_assignment(scenario.system, list(scenario.tasks), seed=1)
        assert a.decisions == b.decisions

    def test_different_seeds_differ(self, scenario):
        a = random_assignment(scenario.system, list(scenario.tasks), seed=1)
        b = random_assignment(scenario.system, list(scenario.tasks), seed=2)
        assert a.decisions != b.decisions


class TestOrdering:
    """The qualitative energy ordering the paper's Fig. 2 shows."""

    def test_lp_hta_beats_every_baseline(self, scenario):
        from repro.core.hta import lp_hta

        ours = lp_hta(scenario.system, list(scenario.tasks)).assignment
        for baseline in (hgos, all_to_cloud, all_offload):
            other = baseline(scenario.system, list(scenario.tasks))
            assert ours.total_energy_j() <= other.total_energy_j() * 1.02

    def test_cloud_is_most_expensive(self, scenario):
        cloud = all_to_cloud(scenario.system, list(scenario.tasks))
        offload = all_offload(scenario.system, list(scenario.tasks))
        assert cloud.total_energy_j() >= offload.total_energy_j()
