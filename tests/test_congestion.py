"""Congestion-aware fixed-point assignment."""

import pytest

from repro.congestion import (
    CongestionOptions,
    congestion_aware_assignment,
    degraded_system,
)
from repro.system.interference import InterferenceChannel
from repro.workload import PAPER_DEFAULTS, generate_scenario

CHANNEL = InterferenceChannel(
    bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
    noise_power_w=1e-9, orthogonality_loss=0.02,
)


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=120, num_devices=20, num_stations=2),
        seed=2,
    )


@pytest.fixture(scope="module")
def result(scenario):
    return congestion_aware_assignment(scenario.system, list(scenario.tasks), CHANNEL)


class TestDegradedSystem:
    def test_uplinks_scaled_per_cluster(self, scenario):
        degraded = degraded_system(scenario.system, CHANNEL, {0: 10, 1: 1})
        factor = CHANNEL.uplink_rate_bps(10) / CHANNEL.uplink_rate_bps(1)
        for device_id in scenario.system.devices:
            original = scenario.system.device(device_id).wireless
            scaled = degraded.device(device_id).wireless
            if scenario.system.cluster_of(device_id) == 0:
                assert scaled.upload_rate_bps == pytest.approx(
                    original.upload_rate_bps * factor
                )
            else:
                assert scaled.upload_rate_bps == pytest.approx(
                    original.upload_rate_bps
                )
            # Downlink and powers untouched.
            assert scaled.download_rate_bps == original.download_rate_bps
            assert scaled.tx_power_w == original.tx_power_w

    def test_zero_concurrency_means_nominal(self, scenario):
        degraded = degraded_system(scenario.system, CHANNEL, {0: 0, 1: 0})
        for device_id in scenario.system.devices:
            assert degraded.device(device_id).wireless.upload_rate_bps == (
                pytest.approx(
                    scenario.system.device(device_id).wireless.upload_rate_bps
                )
            )

    def test_topology_preserved(self, scenario):
        degraded = degraded_system(scenario.system, CHANNEL, {0: 3, 1: 3})
        assert degraded.cluster_sizes() == scenario.system.cluster_sizes()


class TestFixedPoint:
    def test_damped_loop_converges(self, result):
        assert result.converged
        assert result.iterations <= CongestionOptions().max_iterations

    def test_history_recorded(self, result):
        assert len(result.concurrency_history) == result.iterations

    def test_final_energy_consistent_with_decisions(self, result):
        assert result.final_energy_j == pytest.approx(
            result.assignment.total_energy_j()
        )

    def test_congestion_costs_something(self, result):
        """With offloading present, congested pricing cannot be cheaper
        than the congestion-blind estimate."""
        offloaded = sum(sum(h.values()) for h in result.concurrency_history[-1:])
        if offloaded > 1:
            assert result.final_energy_j >= result.naive_energy_j - 1e-6

    def test_orthogonal_channel_converges_immediately(self, scenario):
        clean = InterferenceChannel(
            bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
            noise_power_w=1e-9, orthogonality_loss=0.0,
        )
        result = congestion_aware_assignment(
            scenario.system, list(scenario.tasks), clean
        )
        # No interference: the first assignment already prices correctly
        # (round 2 just confirms the fixed point).
        assert result.converged
        assert result.iterations <= 2
        assert result.congestion_penalty_j == pytest.approx(0.0, abs=1e-6)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            CongestionOptions(max_iterations=0)
        with pytest.raises(ValueError):
            CongestionOptions(rate_tolerance=-0.1)
