"""The crash-safe execution runtime: journal, supervisor, fallback ladder.

Covers the three tentpole pieces end to end:

- the append-only checkpoint journal (roundtrip, torn-line tolerance,
  ``--resume`` replay producing bit-identical sweep output),
- the supervisor (retries, timeout quarantine, poison-cell isolation
  under injected ``os._exit`` worker crashes, remote-traceback
  preservation, config-error passthrough), across fork and spawn,
- the solver fallback ladder (rigged non-convergence degrades through
  the backends down to greedy HTA without aborting, rungs recorded).
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.lp.backends as backends_mod
import repro.runtime.journal as journal_mod
from repro.context import RunContext, use_context
from repro.core.hta import lp_hta
from repro.experiments.parallel import (
    SweepCell,
    TileCell,
    as_spec,
    holistic_spec,
    pool_scope,
    run_cells,
    run_tiles,
)
from repro.experiments.parallel import _POOLS
from repro.experiments.runner import AlgorithmResult
from repro.lp import LinearProgram, LPStatus
from repro.lp.backends import solve_with_fallback
from repro.lp.interior_point import (
    IPMOptions,
    solve_interior_point,
    solve_interior_point_batch,
)
from repro.lp.result import LPResult
from repro.runtime import (
    CellFailedError,
    Journal,
    RemoteCellError,
    RetryPolicy,
    Supervisor,
    config_error_of,
    context_fingerprint,
    fingerprint,
    is_config_error,
    journal_for,
)
from repro.system.sharding import ShardSpec
from repro.workload.profiles import PAPER_DEFAULTS

_PROFILE = PAPER_DEFAULTS.with_updates(num_tasks=8)
_SPECS = (holistic_spec("AllToC"), holistic_spec("HGOS"))

#: Seed that the injected-fault evaluators treat as the poison cell.
_POISON_SEED = 1


@pytest.fixture(autouse=True)
def _fresh_journals():
    """Each test sees a clean process-wide journal cache (the cache is
    how one CLI invocation shares a journal; tests simulate *separate*
    invocations)."""
    journal_mod._close_journals()
    yield
    journal_mod._close_journals()


def _fast_policy(**overrides):
    defaults = dict(max_attempts=2, backoff_base_s=0.0, backoff_cap_s=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _cells(n=3, specs=_SPECS):
    return [
        SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=specs)
        for i in range(n)
    ]


def _ok_result(name="probe"):
    return AlgorithmResult(
        name=name, total_energy_j=1.0, mean_latency_s=0.0,
        unsatisfied_rate=0.0, processing_time_s=0.0, involved_devices=0,
    )


def _crash_on_poison(scenario) -> AlgorithmResult:
    """Module-level evaluator (pickles by reference): hard-kills the
    worker on the poison seed — no exception, no cleanup, like an OOM
    kill."""
    if scenario.seed == _POISON_SEED:
        os._exit(1)
    return _ok_result()


def _raise_on_poison(scenario) -> AlgorithmResult:
    if scenario.seed == _POISON_SEED:
        raise RuntimeError(f"rigged failure on seed {scenario.seed}")
    return _ok_result()


def _hang_on_poison(scenario) -> AlgorithmResult:
    if scenario.seed == _POISON_SEED:
        time.sleep(3.0)
    return _ok_result()


def _spawn_available() -> bool:
    return "spawn" in multiprocessing.get_all_start_methods()


_START_METHODS = ["fork"] + (["spawn"] if _spawn_available() else [])


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.record("k1", {"a": 1})
            journal.record("k2", (1.5, "x"))
        with Journal(path, resume=True) as journal:
            assert len(journal) == 2
            assert journal.get("k1") == {"a": 1}
            assert journal.get("k2") == (1.5, "x")
            assert journal.get("missing") is None

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.record("k1", 42)
        with open(path, "a") as handle:
            handle.write('{"kind": "cell", "key": "k2", "da')  # torn append
        with Journal(path, resume=True) as journal:
            assert journal.get("k1") == 42
            assert "k2" not in journal

    def test_fresh_open_truncates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.record("k1", 42)
        with Journal(path, resume=False) as journal:
            assert "k1" not in journal

    def test_journal_for_shares_one_handle_per_path(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = journal_for(path)
        first.record("k1", 1)
        # A later sweep in the same invocation must append, not truncate.
        assert journal_for(path) is first
        assert journal_for(None) is None

    def test_fingerprint_ignores_runtime_knobs(self):
        base = context_fingerprint(RunContext())
        tweaked = context_fingerprint(
            RunContext(
                max_attempts=9, cell_timeout_s=3.0, retry_backoff_s=1.0,
                quarantine=False, journal_path="/tmp/x", resume=True,
                trace=True, lp_cache_capacity=0,
            )
        )
        assert base == tweaked
        assert context_fingerprint(RunContext(seed=7)) != base
        assert fingerprint("a", 1) == fingerprint("a", 1)
        assert fingerprint("a", 1) != fingerprint("a", 2)


# ---------------------------------------------------------------------------
# Supervisor (in-process)
# ---------------------------------------------------------------------------


class TestSupervisorLocal:
    def test_retry_then_success(self):
        context = RunContext()
        supervisor = Supervisor(_fast_policy(max_attempts=3), context)
        failures = {"left": 2}

        def evaluate(ids):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return [f"v{i}" for i in ids]

        results, quarantined = supervisor.run_local([(0, 1)], evaluate)
        assert quarantined == []
        assert results == {0: "v0", 1: "v1"}
        assert context.telemetry.cell_retries >= 1

    def test_quarantine_after_exhaustion(self):
        context = RunContext()
        supervisor = Supervisor(_fast_policy(max_attempts=2), context)

        def evaluate(ids):
            if 1 in ids:
                raise RuntimeError("poison")
            return [f"v{i}" for i in ids]

        results, quarantined = supervisor.run_local([(0, 1, 2)], evaluate)
        # The failing column split into singletons: innocents complete.
        assert results[0] == "v0" and results[2] == "v2"
        assert quarantined == [1]
        assert context.telemetry.cells_quarantined == 1
        entry = context.telemetry.quarantines[0]
        assert "poison" in entry["error"]
        assert entry["attempts"] == 2

    def test_quarantine_disabled_raises(self):
        context = RunContext()
        supervisor = Supervisor(
            _fast_policy(max_attempts=1, quarantine=False), context
        )

        def evaluate(ids):
            raise RuntimeError("poison")

        with pytest.raises(CellFailedError, match="poison"):
            supervisor.run_local([(0,)], evaluate)

    def test_config_error_fatal_not_retried(self):
        context = RunContext()
        supervisor = Supervisor(_fast_policy(), context)
        calls = {"n": 0}

        def evaluate(ids):
            calls["n"] += 1
            raise ValueError("unknown algorithm 'typo'")

        with pytest.raises(ValueError, match="typo"):
            supervisor.run_local([(0,)], evaluate)
        assert calls["n"] == 1
        assert context.telemetry.cell_retries == 0

    def test_policy_from_context(self):
        policy = RetryPolicy.from_context(
            RunContext(max_attempts=5, cell_timeout_s=2.5, quarantine=False)
        )
        assert policy.max_attempts == 5
        assert policy.timeout_s == 2.5
        assert policy.quarantine is False
        # max_attempts is clamped to at least one real attempt.
        assert RetryPolicy.from_context(RunContext(max_attempts=0)).max_attempts == 1


# ---------------------------------------------------------------------------
# Error types
# ---------------------------------------------------------------------------


class TestErrorTypes:
    def test_remote_error_preserves_traceback_through_pickle(self):
        import pickle

        try:
            raise RuntimeError("boom at the bottom")
        except RuntimeError as exc:
            wrapped = RemoteCellError.wrap(exc, "cell 3 (seed 1)")
        restored = pickle.loads(pickle.dumps(wrapped))
        assert "cell 3 (seed 1)" in str(restored)
        assert "RuntimeError" in str(restored)
        assert "boom at the bottom" in restored.remote_traceback
        assert "Traceback" in restored.remote_traceback

    def test_config_classification_sees_through_wrapper(self):
        try:
            raise ValueError("bad profile")
        except ValueError as exc:
            wrapped = RemoteCellError.wrap(exc, "cell 0")
        assert is_config_error(wrapped)
        assert isinstance(config_error_of(wrapped), ValueError)
        try:
            raise RuntimeError("transient")
        except RuntimeError as exc:
            wrapped = RemoteCellError.wrap(exc, "cell 0")
        assert not is_config_error(wrapped)


# ---------------------------------------------------------------------------
# Pooled sweeps with injected faults
# ---------------------------------------------------------------------------


@pytest.fixture
def _multi_cpu(monkeypatch):
    """Pretend the box has CPUs to spare: ``run_cells`` clamps its worker
    count to ``os.cpu_count()``, which would silently route these tests
    in-process on a single-core runner — and an in-process ``os._exit``
    would take pytest down with it."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


@pytest.mark.usefixtures("_multi_cpu")
@pytest.mark.parametrize("start_method", _START_METHODS)
class TestPooledFaults:
    def _fault_cells(self, evaluator, n=3):
        spec = as_spec("probe", evaluator)
        return [
            SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=(spec,))
            for i in range(n)
        ]

    def test_worker_crash_quarantines_only_poison_cell(self, start_method):
        # lp_batch off keeps the cells singleton dispatch units, so the
        # sweep genuinely crosses the pool (a single batched column would
        # short-circuit to in-process execution).
        context = RunContext(max_attempts=1, retry_backoff_s=0.0, lp_batch=False)
        with use_context(context), pool_scope():
            results = run_cells(
                self._fault_cells(_crash_on_poison),
                jobs=2, start_method=start_method,
            )
        assert results[_POISON_SEED] is None
        assert results[0] is not None and results[2] is not None
        assert context.telemetry.cells_quarantined == 1
        entry = context.telemetry.quarantines[0]
        assert f"seed {_POISON_SEED}" in entry["label"]

    def test_worker_exception_carries_remote_traceback(self, start_method):
        context = RunContext(max_attempts=1, retry_backoff_s=0.0, lp_batch=False)
        with use_context(context), pool_scope():
            results = run_cells(
                self._fault_cells(_raise_on_poison),
                jobs=2, start_method=start_method,
            )
        assert results[_POISON_SEED] is None
        entry = context.telemetry.quarantines[0]
        assert "RuntimeError" in entry["error"]
        assert "rigged failure" in entry["error"]
        assert "Traceback" in entry["error"]

    def test_config_error_raises_in_parent(self, start_method):
        cells = _cells(2, specs=(holistic_spec("NoSuchAlgorithm"),))
        context = RunContext(max_attempts=3, retry_backoff_s=0.0, lp_batch=False)
        with use_context(context), pool_scope():
            with pytest.raises(ValueError, match="NoSuchAlgorithm"):
                run_cells(cells, jobs=2, start_method=start_method)
        assert context.telemetry.cells_quarantined == 0


@pytest.mark.usefixtures("_multi_cpu")
def test_cell_timeout_quarantines_hung_cell():
    context = RunContext(
        max_attempts=2, cell_timeout_s=0.4, retry_backoff_s=0.0,
        lp_batch=False,
    )
    with use_context(context), pool_scope():
        results = run_cells(
            [
                SweepCell(
                    index=i, profile=_PROFILE, seed=i,
                    evaluators=(as_spec("probe", _hang_on_poison),),
                )
                for i in range(3)
            ],
            jobs=2, start_method="fork",
        )
    assert results[_POISON_SEED] is None
    assert results[0] is not None and results[2] is not None
    assert context.telemetry.cell_timeouts >= 1
    assert context.telemetry.cells_quarantined == 1
    assert "timed out" in context.telemetry.quarantines[0]["error"]


@pytest.mark.usefixtures("_multi_cpu")
def test_pool_scope_reaps_cached_pools():
    with pool_scope():
        with use_context(RunContext(lp_batch=False)):
            run_cells(_cells(3), jobs=2, start_method="fork")
        assert _POOLS  # warm inside the scope
    assert not _POOLS  # reaped on exit


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


class TestResume:
    def test_resume_replays_bit_identically(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        cells = _cells(4)
        with use_context(RunContext()):
            reference = run_cells(_cells(4))

        # "Interrupted" run: only the first half of the cells completes.
        with use_context(RunContext(journal_path=path)):
            run_cells(cells[:2])
        journal_mod._close_journals()  # simulate the process dying

        resumed = RunContext(journal_path=path, resume=True)
        with use_context(resumed):
            results = run_cells(_cells(4))
        assert repr(results) == repr(reference)
        assert resumed.telemetry.journal_replays == 2

    @pytest.mark.parametrize("start_method", _START_METHODS)
    def test_resume_matches_across_pool(self, tmp_path, start_method):
        path = str(tmp_path / "sweep.jsonl")
        with use_context(RunContext()):
            reference = run_cells(_cells(4))
        with use_context(RunContext(journal_path=path)):
            run_cells(_cells(4)[:3])
        journal_mod._close_journals()

        resumed = RunContext(journal_path=path, resume=True)
        with use_context(resumed), pool_scope():
            results = run_cells(_cells(4), jobs=2, start_method=start_method)
        assert repr(results) == repr(reference)
        assert resumed.telemetry.journal_replays == 3

    def test_changed_inputs_recompute(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with use_context(RunContext(journal_path=path)):
            run_cells(_cells(2))
        journal_mod._close_journals()

        # A different seed set shares no fingerprints with the journal.
        resumed = RunContext(journal_path=path, resume=True)
        other = [
            SweepCell(index=i, profile=_PROFILE, seed=i + 10, evaluators=_SPECS)
            for i in range(2)
        ]
        with use_context(resumed):
            results = run_cells(other)
        assert all(r is not None for r in results)
        assert resumed.telemetry.journal_replays == 0

    def test_callable_evaluators_never_journalled(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        spec = as_spec("probe", _raise_on_poison)
        cells = [
            SweepCell(index=0, profile=_PROFILE, seed=0, evaluators=(spec,))
        ]
        with use_context(RunContext(journal_path=path)):
            run_cells(cells)
        journal_mod._close_journals()
        with Journal(path, resume=True) as journal:
            assert len(journal) == 0

    def test_tile_resume_replays(self, tmp_path):
        path = str(tmp_path / "tiles.jsonl")
        profile = PAPER_DEFAULTS.with_updates(
            num_devices=14, num_stations=4, num_tasks=30
        )
        spec = ShardSpec.balanced(range(4), 2)
        cells = [
            TileCell(profile=profile, spec=spec, shard_id=s, seed=0)
            for s in range(2)
        ]
        with use_context(RunContext()):
            reference = run_tiles(cells)
        with use_context(RunContext(journal_path=path)):
            run_tiles(cells[:1])
        journal_mod._close_journals()

        resumed = RunContext(journal_path=path, resume=True)
        with use_context(resumed):
            results = run_tiles(cells)
        assert repr(results) == repr(reference)
        assert resumed.telemetry.journal_replays == 1


# ---------------------------------------------------------------------------
# Solver fallback ladder
# ---------------------------------------------------------------------------


def _rigged_failure(backend):
    return LPResult(
        status=LPStatus.NUMERICAL_ERROR, x=None, objective=float("nan"),
        iterations=0, backend=backend, message="rigged non-convergence",
    )


class TestFallbackLadder:
    @pytest.fixture
    def lp(self):
        return LinearProgram(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([4.0]),
            upper_bounds=np.array([3.0, 3.0]),
        )

    def test_fallback_descends_and_records_rung(self, lp, monkeypatch):
        monkeypatch.setitem(
            backends_mod._BACKENDS, "interior-point",
            lambda p, warm_start: _rigged_failure("interior-point"),
        )
        context = RunContext()
        result = solve_with_fallback(lp, context=context)
        assert result.status is LPStatus.OPTIMAL
        assert result.backend == "simplex"
        assert context.telemetry.metrics.counter("lp.fallback.simplex") == 1

    def test_all_rungs_fail_returns_last_result(self, lp, monkeypatch):
        for name in ("interior-point", "simplex", "scipy"):
            monkeypatch.setitem(
                backends_mod._BACKENDS, name,
                lambda p, warm_start, name=name: _rigged_failure(name),
            )
        context = RunContext()
        result = solve_with_fallback(lp, context=context)
        assert not result.status.ok
        assert result.backend == "scipy"

    def test_empty_ladder_rejected(self, lp):
        with pytest.raises(ValueError, match="at least one backend"):
            solve_with_fallback(lp, methods=())

    def test_rigged_nonconvergence_degrades_to_greedy(
        self, small_scenario, monkeypatch
    ):
        """Every LP backend rigged to fail: LP-HTA must still produce an
        assignment via the greedy bottom rung, not abort the sweep."""
        monkeypatch.setattr(
            "repro.core.hta.lp_solve",
            lambda lp, backend, **kwargs: _rigged_failure(backend),
        )
        monkeypatch.setattr(
            "repro.core.hta.solve_structured",
            lambda grouped: _rigged_failure("structured"),
        )
        context = RunContext(lp_batch=False)
        with use_context(context):
            report = lp_hta(
                small_scenario.system, list(small_scenario.tasks),
                context=context,
            )
        assert np.isfinite(report.assignment.total_energy_j())
        assert context.telemetry.metrics.counter("lp.fallback.greedy") >= 1
        assert context.telemetry.lp_fallbacks >= 1
        # The greedy objective is tagged as vacuous, not an LP bound.
        summary = context.telemetry.summary()
        assert "greedy" in summary


# ---------------------------------------------------------------------------
# Interior-point guards
# ---------------------------------------------------------------------------


class TestIPMGuards:
    @pytest.fixture
    def lp(self):
        return LinearProgram(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([4.0]),
            upper_bounds=np.array([3.0, 3.0]),
        )

    def test_stall_guard_parks_sequential_and_batch_identically(self, lp):
        # An unreachable tolerance (and no salvage) forces a stall well
        # before the iteration cap, in both loops, with the same verdict.
        options = IPMOptions(
            tolerance=0.0, fallback_tolerance=0.0,
            stall_iterations=5, max_iterations=5000,
        )
        sequential = solve_interior_point(lp, options)
        [batched] = solve_interior_point_batch([lp], options)
        assert sequential.status is LPStatus.ITERATION_LIMIT
        assert "stalled" in sequential.message
        assert batched.status is sequential.status
        assert batched.message == sequential.message
        assert sequential.iterations < 5000

    def test_stall_guard_salvages_converged_iterate(self, lp):
        # Same stall, but the loose salvage target is reachable: the best
        # iterate is essentially optimal and must not be thrown away.
        options = IPMOptions(
            tolerance=0.0, fallback_tolerance=1e-6, stall_iterations=5,
        )
        result = solve_interior_point(lp, options)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-7.0, abs=1e-5)

    def test_wall_clock_guard_parks_batch(self, lp):
        options = IPMOptions(
            fallback_tolerance=0.0, max_wall_clock_s=0.0,
        )
        results = solve_interior_point_batch([lp, lp], options)
        for result in results:
            assert result.status is LPStatus.ITERATION_LIMIT
            assert "wall-clock" in result.message

    def test_wall_clock_default_is_off(self, lp):
        [result] = solve_interior_point_batch([lp], IPMOptions())
        assert result.status is LPStatus.OPTIMAL
