"""Property-based tests of the Section II cost model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.costs import task_costs
from repro.core.task import Task
from repro.system.devices import BaseStation, MobileDevice
from repro.system.radio import FOUR_G, WIFI
from repro.system.topology import MECSystem
from repro.units import KB, gigahertz

# Hypothesis reuses one system across generated inputs; the system is
# immutable, so build it once at module scope instead of using the
# function-scoped fixture (which trips the health check).
SYSTEM = MECSystem(
    devices=[
        MobileDevice(0, gigahertz(1.0), FOUR_G, max_resource=5.0),
        MobileDevice(1, gigahertz(1.5), WIFI, max_resource=5.0),
        MobileDevice(2, gigahertz(2.0), FOUR_G, max_resource=5.0),
        MobileDevice(3, gigahertz(1.2), WIFI, max_resource=5.0),
    ],
    stations=[BaseStation(0, max_resource=20.0), BaseStation(1, max_resource=20.0)],
    attachment={0: 0, 1: 0, 2: 1, 3: 1},
)


@st.composite
def random_task(draw):
    """A task on the two-cluster fixture system's device 0."""
    alpha = draw(st.floats(min_value=1.0, max_value=5000.0)) * KB
    has_external = draw(st.booleans())
    if has_external:
        beta = draw(st.floats(min_value=1.0, max_value=2500.0)) * KB
        source = draw(st.sampled_from([1, 2, 3]))
    else:
        beta, source = 0.0, None
    return Task(
        owner_device_id=0, index=0,
        local_bytes=alpha, external_bytes=beta, external_source=source,
        resource_demand=1.0,
        deadline_s=draw(st.floats(min_value=0.1, max_value=10.0)),
    )


class TestCostInvariants:
    @settings(max_examples=80, deadline=None)
    @given(random_task())
    def test_all_costs_nonnegative_and_finite(self, task):
        costs = task_costs(SYSTEM, task)
        for triple in (
            costs.total_time_s,
            costs.total_energy_j,
            costs.transmission_time_s,
            costs.transmission_energy_j,
        ):
            for value in triple:
                assert value >= 0.0
                assert value == value  # not NaN
                assert value != float("inf")

    @settings(max_examples=80, deadline=None)
    @given(random_task())
    def test_cloud_transmission_energy_dominates_station(self, task):
        """Section II-B's E_ij3 > E_ij2 must hold for every task."""
        costs = task_costs(SYSTEM, task)
        assert costs.transmission_energy_j[2] > costs.transmission_energy_j[1]

    @settings(max_examples=80, deadline=None)
    @given(random_task())
    def test_cloud_total_energy_dominates_station(self, task):
        costs = task_costs(SYSTEM, task)
        assert costs.total_energy_j[2] > costs.total_energy_j[1]

    @settings(max_examples=60, deadline=None)
    @given(random_task(), st.floats(min_value=1.1, max_value=3.0))
    def test_energy_monotone_in_input_size(self, task, factor):
        bigger = Task(
            owner_device_id=task.owner_device_id, index=task.index,
            local_bytes=task.local_bytes * factor,
            external_bytes=task.external_bytes * factor,
            external_source=task.external_source,
            resource_demand=task.resource_demand,
            deadline_s=task.deadline_s,
        )
        small = task_costs(SYSTEM, task)
        large = task_costs(SYSTEM, bigger)
        for l in range(3):
            assert large.total_energy_j[l] >= small.total_energy_j[l]
            assert large.total_time_s[l] >= small.total_time_s[l]

    @settings(max_examples=60, deadline=None)
    @given(random_task())
    def test_offload_times_include_wan_latency(self, task):
        """The cloud's fixed 250 ms WAN latency is a hard latency floor."""
        costs = task_costs(SYSTEM, task)
        assert costs.transmission_time_s[2] >= 0.250

    @settings(max_examples=60, deadline=None)
    @given(random_task())
    def test_compute_energy_only_charged_locally(self, task):
        costs = task_costs(SYSTEM, task)
        assert costs.computation_energy_j[1] == 0.0
        assert costs.computation_energy_j[2] == 0.0
        assert costs.computation_energy_j[0] > 0.0
