"""Property-based tests of the divisible-task pipeline (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.task import Task
from repro.data.items import DataCatalog, DataItem
from repro.data.ownership import OwnershipMap
from repro.dta.coverage import dta_number, dta_workload
from repro.dta.rearrange import rearrange_tasks


@st.composite
def dta_instance(draw):
    """A coverable universe, ownership map, and divisible tasks over it."""
    num_items = draw(st.integers(min_value=1, max_value=16))
    num_devices = draw(st.integers(min_value=1, max_value=6))
    holdings = {d: set() for d in range(num_devices)}
    for item in range(num_items):
        owners = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_devices - 1),
                min_size=1, max_size=num_devices, unique=True,
            )
        )
        for owner in owners:
            holdings[owner].add(item)
    ownership = OwnershipMap(holdings)
    catalog = DataCatalog(
        DataItem(i, float(draw(st.integers(min_value=1, max_value=100)) * 1000))
        for i in range(num_items)
    )
    num_tasks = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for index in range(num_tasks):
        required = draw(
            st.frozensets(
                st.integers(min_value=0, max_value=num_items - 1),
                min_size=1, max_size=num_items,
            )
        )
        owner = draw(st.integers(min_value=0, max_value=num_devices - 1))
        owned = ownership.items_of(owner) & required
        missing = required - owned
        alpha = catalog.total_bytes(owned)
        beta = catalog.total_bytes(missing)
        source = None
        if beta > 0:
            candidates = sorted(
                {
                    holder
                    for item in missing
                    for holder in ownership.owners_of(item)
                    if holder != owner
                }
            )
            if candidates:
                source = candidates[0]
            else:
                alpha, beta = alpha + beta, 0.0
        tasks.append(
            Task(
                owner_device_id=owner, index=index,
                local_bytes=alpha, external_bytes=beta, external_source=source,
                resource_demand=1.0, deadline_s=10.0,
                divisible=True, required_items=required,
            )
        )
    universe = frozenset().union(*(t.required_items for t in tasks))
    return universe, ownership, catalog, tasks


class TestRearrangementInvariants:
    @settings(max_examples=50, deadline=None)
    @given(dta_instance(), st.sampled_from([dta_workload, dta_number]))
    def test_bytes_conserved_per_parent(self, instance, algorithm):
        """Each parent's sub-task bytes sum exactly to its required bytes."""
        universe, ownership, catalog, tasks = instance
        coverage = algorithm(universe, ownership)
        plan = rearrange_tasks(tasks, coverage, catalog)
        for task in tasks:
            rows = plan.subtasks_of_parent(task)
            total = sum(plan.subtasks[r].local_bytes for r in rows)
            assert abs(total - catalog.total_bytes(task.required_items)) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(dta_instance(), st.sampled_from([dta_workload, dta_number]))
    def test_no_item_processed_twice_per_parent(self, instance, algorithm):
        universe, ownership, catalog, tasks = instance
        coverage = algorithm(universe, ownership)
        plan = rearrange_tasks(tasks, coverage, catalog)
        for task in tasks:
            seen = set()
            for row in plan.subtasks_of_parent(task):
                items = plan.subtasks[row].required_items
                assert not (seen & items)
                seen |= items
            assert seen == task.required_items

    @settings(max_examples=50, deadline=None)
    @given(dta_instance(), st.sampled_from([dta_workload, dta_number]))
    def test_executors_own_their_data(self, instance, algorithm):
        universe, ownership, catalog, tasks = instance
        coverage = algorithm(universe, ownership)
        plan = rearrange_tasks(tasks, coverage, catalog)
        for subtask in plan.subtasks:
            assert subtask.required_items <= ownership.items_of(
                subtask.owner_device_id
            )
            assert subtask.external_bytes == 0.0
