"""The Section II cost model: t_ijl and E_ijl."""

import numpy as np
import pytest

from repro.core.costs import cluster_costs, task_costs
from repro.core.task import Task
from repro.units import KB


class TestLocalExecution:
    def test_local_task_has_no_transmission(self, two_cluster_system, local_task):
        costs = task_costs(two_cluster_system, local_task)
        assert costs.transmission_time_s[0] == 0.0
        assert costs.transmission_energy_j[0] == 0.0

    def test_local_compute_matches_eq2(self, two_cluster_system, local_task):
        costs = task_costs(two_cluster_system, local_task)
        device = two_cluster_system.device(0)
        params = two_cluster_system.parameters
        cycles = params.cycles.cycles_on_device(local_task.input_bytes)
        assert costs.computation_time_s[0] == pytest.approx(
            cycles / device.cpu_frequency_hz
        )
        assert costs.computation_energy_j[0] == pytest.approx(
            params.kappa * cycles * device.cpu_frequency_hz**2
        )

    def test_station_and_cloud_compute_energy_ignored(
        self, two_cluster_system, local_task
    ):
        costs = task_costs(two_cluster_system, local_task)
        assert costs.computation_energy_j[1] == 0.0
        assert costs.computation_energy_j[2] == 0.0


class TestExternalRetrieval:
    def test_same_cluster_has_no_backhaul(
        self, two_cluster_system, shared_task_same_cluster
    ):
        costs = task_costs(two_cluster_system, shared_task_same_cluster)
        source = two_cluster_system.device(1)
        owner = two_cluster_system.device(0)
        beta = shared_task_same_cluster.external_bytes
        expected = source.wireless.upload_time_s(beta) + owner.wireless.download_time_s(beta)
        assert costs.transmission_time_s[0] == pytest.approx(expected)

    def test_cross_cluster_adds_backhaul(
        self, two_cluster_system, shared_task_same_cluster, shared_task_cross_cluster
    ):
        same = task_costs(two_cluster_system, shared_task_same_cluster)
        cross = task_costs(two_cluster_system, shared_task_cross_cluster)
        beta = shared_task_cross_cluster.external_bytes
        bb = two_cluster_system.bs_bs_link
        # Sources differ (device 1 vs 2) so compare against explicit formula.
        source = two_cluster_system.device(2)
        owner = two_cluster_system.device(0)
        expected = (
            source.wireless.upload_time_s(beta)
            + owner.wireless.download_time_s(beta)
            + bb.transfer_time_s(beta)
        )
        assert cross.transmission_time_s[0] == pytest.approx(expected)
        assert cross.transmission_energy_j[0] > same.transmission_energy_j[0] - 1e-9

    def test_cloud_path_skips_backhaul(self, two_cluster_system, shared_task_cross_cluster):
        """The paper's l=3 formula has no t_BB term: both halves go up
        through their own stations."""
        costs = task_costs(two_cluster_system, shared_task_cross_cluster)
        task = shared_task_cross_cluster
        source = two_cluster_system.device(2)
        owner = two_cluster_system.device(0)
        params = two_cluster_system.parameters
        result = params.result_size.result_bytes(task.input_bytes)
        expected = (
            max(
                source.wireless.upload_time_s(task.external_bytes),
                owner.wireless.upload_time_s(task.local_bytes),
            )
            + owner.wireless.download_time_s(result)
            + two_cluster_system.bs_cloud_link.transfer_time_s(task.input_bytes + result)
        )
        assert costs.transmission_time_s[2] == pytest.approx(expected)


class TestPaperOrderings:
    def test_cloud_transmission_energy_exceeds_station(
        self, two_cluster_system, shared_task_same_cluster
    ):
        """Section II-B: E_ij3^(R) > E_ij2^(R), always."""
        costs = task_costs(two_cluster_system, shared_task_same_cluster)
        assert costs.transmission_energy_j[2] > costs.transmission_energy_j[1]

    def test_station_formula_overlaps_uploads(
        self, two_cluster_system, shared_task_same_cluster
    ):
        """The l=2 time takes the max of the two uplinks, not the sum."""
        costs = task_costs(two_cluster_system, shared_task_same_cluster)
        task = shared_task_same_cluster
        source = two_cluster_system.device(1)
        owner = two_cluster_system.device(0)
        params = two_cluster_system.parameters
        result = params.result_size.result_bytes(task.input_bytes)
        station = two_cluster_system.station_of(0)
        expected = (
            max(
                source.wireless.upload_time_s(task.external_bytes),
                owner.wireless.upload_time_s(task.local_bytes),
            )
            + owner.wireless.download_time_s(result)
            + params.cycles.cycles_on_station(task.input_bytes)
            / station.cpu_frequency_hz
        )
        assert costs.total_time_s[1] == pytest.approx(expected)


class TestClusterCosts:
    def test_shapes(self, two_cluster_system, local_task, shared_task_same_cluster):
        costs = cluster_costs(
            two_cluster_system, [local_task, shared_task_same_cluster]
        )
        assert costs.num_tasks == 2
        assert costs.time_s.shape == (2, 3)
        assert costs.energy_j.shape == (2, 3)
        assert np.all(costs.energy_j > 0)

    def test_matches_task_costs(self, two_cluster_system, shared_task_cross_cluster):
        table = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        single = task_costs(two_cluster_system, shared_task_cross_cluster)
        np.testing.assert_allclose(table.time_s[0], single.total_time_s)
        np.testing.assert_allclose(table.energy_j[0], single.total_energy_j)

    def test_feasible_subsystems(self, two_cluster_system):
        tight = Task(
            owner_device_id=0, index=0, local_bytes=5000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=0.01,
        )
        costs = cluster_costs(two_cluster_system, [tight])
        assert costs.feasible_subsystems(0) == ()

    def test_owner_rows(self, two_cluster_system, local_task, shared_task_same_cluster):
        other = Task(
            owner_device_id=1, index=0, local_bytes=10 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=0.1, deadline_s=1.0,
        )
        costs = cluster_costs(
            two_cluster_system, [local_task, other, shared_task_same_cluster]
        )
        groups = costs.owner_rows()
        assert list(groups[0]) == [0, 2]
        assert list(groups[1]) == [1]
