"""Exact solvers: brute force and branch & bound."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.costs import cluster_costs
from repro.core.exact import branch_and_bound_hta, brute_force_hta
from repro.core.hta import lp_hta
from repro.core.task import Task
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _small_costs(system, num_tasks=6, seed=0):
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_tasks=num_tasks, num_devices=3, num_stations=1,
            device_max_resource=4.0, station_max_resource=6.0,
        ),
        seed=seed,
    )
    return scenario, cluster_costs(scenario.system, list(scenario.tasks))


class TestBruteForce:
    def test_rejects_large_instances(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=0.1, deadline_s=10.0)
            for j in range(15)
        ]
        costs = cluster_costs(two_cluster_system, tasks)
        with pytest.raises(ValueError, match="brute-force limit"):
            brute_force_hta(costs, {}, station_cap=100.0)

    def test_infeasible_instance_returns_none(self, two_cluster_system):
        task = Task(
            owner_device_id=0, index=0, local_bytes=5000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=0.001,
        )
        costs = cluster_costs(two_cluster_system, [task])
        assert brute_force_hta(costs, {}, station_cap=100.0) is None

    def test_picks_global_minimum(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=(200 + 100 * j) * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=1.0, deadline_s=10.0)
            for j in range(3)
        ]
        costs = cluster_costs(two_cluster_system, tasks)
        optimal = brute_force_hta(costs, {0: 100.0}, station_cap=100.0)
        # Unconstrained, the cheapest subsystem per task is optimal.
        expected = sum(costs.energy_j[r].min() for r in range(3))
        assert optimal.total_energy_j() == pytest.approx(expected)


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_brute_force(self, two_cluster_system, seed):
        scenario, costs = _small_costs(two_cluster_system, num_tasks=7, seed=seed)
        caps = {d: 4.0 for d in scenario.system.devices}
        reference = brute_force_hta(costs, caps, station_cap=6.0)
        candidate = branch_and_bound_hta(costs, caps, station_cap=6.0)
        if reference is None:
            assert candidate is None
        else:
            assert candidate is not None
            assert candidate.total_energy_j() == pytest.approx(
                reference.total_energy_j()
            )

    def test_handles_moderate_sizes(self, two_cluster_system):
        scenario, costs = _small_costs(two_cluster_system, num_tasks=18, seed=1)
        caps = {d: 4.0 for d in scenario.system.devices}
        result = branch_and_bound_hta(costs, caps, station_cap=10.0)
        if result is not None:
            assert result.violations(caps, station_cap=10.0) == []

    def test_infeasible_returns_none(self, two_cluster_system):
        task = Task(
            owner_device_id=0, index=0, local_bytes=5000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=0.001,
        )
        costs = cluster_costs(two_cluster_system, [task])
        assert branch_and_bound_hta(costs, {}, station_cap=100.0) is None


class TestLPHTAQuality:
    """LP-HTA versus the exact optimum: the empirical ratio bound."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_lp_hta_within_theorem2_bound(self, seed):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(
                num_tasks=8, num_devices=4, num_stations=1,
                device_max_resource=4.0, station_max_resource=8.0,
            ),
            seed=seed,
        )
        costs = cluster_costs(scenario.system, list(scenario.tasks))
        caps = {d: 4.0 for d in scenario.system.devices}
        optimal = brute_force_hta(costs, caps, station_cap=8.0)
        if optimal is None:
            return  # no fully feasible assignment: nothing to compare
        report = lp_hta(scenario.system, list(scenario.tasks))
        cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if cancelled:
            return  # LP-HTA dropped a task; energies are not comparable
        ratio = report.assignment.total_energy_j() / optimal.total_energy_j()
        assert ratio >= 1.0 - 1e-9
        assert ratio <= report.ratio_bound_theorem2 + 1e-9
