"""Mobility: random waypoint trajectories and handover analysis."""

import math

import pytest

from repro.mobility.handover import analyse_handovers, attachment_at
from repro.mobility.waypoint import RandomWaypointModel


def _model(**overrides):
    params = dict(
        device_ids=[0, 1, 2],
        area_side_m=1000.0,
        speed_range_mps=(1.0, 5.0),
        pause_range_s=(0.0, 10.0),
        seed=0,
    )
    params.update(overrides)
    return RandomWaypointModel(**params)


class TestWaypoint:
    def test_positions_stay_in_area(self):
        model = _model()
        for device_id in model.device_ids:
            for t in (0.0, 10.0, 100.0, 1000.0):
                x, y = model.position_at(device_id, t)
                assert 0.0 <= x <= 1000.0
                assert 0.0 <= y <= 1000.0

    def test_deterministic(self):
        a = _model()
        b = _model()
        assert a.position_at(1, 500.0) == b.position_at(1, 500.0)

    def test_different_seeds_differ(self):
        a = _model(seed=0)
        b = _model(seed=1)
        assert a.position_at(0, 100.0) != b.position_at(0, 100.0)

    def test_speed_bounds_movement(self):
        model = _model(speed_range_mps=(1.0, 2.0), pause_range_s=(0.0, 0.0))
        x0, y0 = model.position_at(0, 100.0)
        x1, y1 = model.position_at(0, 101.0)
        assert math.hypot(x1 - x0, y1 - y0) <= 2.0 + 1e-9

    def test_initial_positions_honoured(self):
        model = _model(initial_positions={0: (123.0, 456.0)})
        assert model.position_at(0, 0.0) == (123.0, 456.0)

    def test_trace(self):
        model = _model()
        points = model.trace(0, 0.0, 10.0, 2.0)
        assert len(points) == 6
        assert points[0][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _model(area_side_m=-1.0)
        with pytest.raises(ValueError):
            _model(speed_range_mps=(0.0, 1.0))
        with pytest.raises(ValueError):
            _model(pause_range_s=(5.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointModel([], 100.0)
        with pytest.raises(ValueError):
            _model().position_at(0, -1.0)
        with pytest.raises(ValueError):
            _model().trace(0, 0.0, 1.0, 0.0)


class TestHandover:
    STATIONS = {0: (250.0, 500.0), 1: (750.0, 500.0)}

    def test_attachment_is_nearest(self):
        model = _model(initial_positions={0: (0.0, 500.0), 1: (999.0, 500.0)})
        attachment = attachment_at(model, self.STATIONS, 0.0)
        assert attachment[0] == 0
        assert attachment[1] == 1

    def test_attachment_needs_stations(self):
        with pytest.raises(ValueError):
            attachment_at(_model(), {}, 0.0)

    def test_longer_epochs_violate_more(self):
        model = _model(speed_range_mps=(5.0, 10.0), pause_range_s=(0.0, 0.0))
        short = analyse_handovers(model, self.STATIONS, 1000.0, 20.0)
        long = analyse_handovers(model, self.STATIONS, 1000.0, 250.0)
        assert long.violation_rate >= short.violation_rate

    def test_static_devices_never_violate(self):
        model = _model(speed_range_mps=(1e-9, 1e-9), pause_range_s=(0.0, 0.0))
        analysis = analyse_handovers(model, self.STATIONS, 100.0, 10.0)
        assert analysis.violation_rate == 0.0
        assert analysis.handovers_per_epoch == 0.0

    def test_validation(self):
        model = _model()
        with pytest.raises(ValueError):
            analyse_handovers(model, self.STATIONS, -1.0, 10.0)
        with pytest.raises(ValueError):
            analyse_handovers(model, self.STATIONS, 10.0, 100.0)
        with pytest.raises(ValueError):
            analyse_handovers(model, self.STATIONS, 100.0, 10.0, samples_per_epoch=1)
