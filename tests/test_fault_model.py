"""Seeded fault plans: determinism, monotone nesting, window helpers."""

import pytest

from repro.faults.model import (
    FaultConfig,
    FaultPlan,
    generate_fault_plan,
    shift_windows,
)

INTENSITIES = (0.0, 0.02, 0.05, 0.1, 0.3)


@pytest.fixture
def config():
    return FaultConfig(
        horizon_s=300.0,
        intensity_per_s=0.05,
        max_intensity_per_s=0.5,
        mean_outage_s=5.0,
        departure_ratio=0.05,
        crash_ratio=0.02,
    )


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultConfig(horizon_s=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultConfig(intensity_per_s=-0.1)
        with pytest.raises(ValueError, match="ceiling"):
            FaultConfig(intensity_per_s=1.0, max_intensity_per_s=0.5)
        with pytest.raises(ValueError, match="mean_outage_s"):
            FaultConfig(mean_outage_s=0.0)
        with pytest.raises(ValueError, match=">= 0"):
            FaultConfig(departure_ratio=-1.0)

    def test_with_intensity(self, config):
        scaled = config.with_intensity(0.2)
        assert scaled.intensity_per_s == 0.2
        assert scaled.horizon_s == config.horizon_s
        assert scaled.max_intensity_per_s == config.max_intensity_per_s

    def test_with_max_intensity(self, config):
        raised = config.with_max_intensity(2.0)
        assert raised.max_intensity_per_s == 2.0
        assert raised.intensity_per_s == config.intensity_per_s


class TestGeneratePlan:
    def test_deterministic_in_seed(self, config, small_scenario):
        first = generate_fault_plan(small_scenario.system, config, seed=5)
        second = generate_fault_plan(small_scenario.system, config, seed=5)
        assert first.backhaul_outages == second.backhaul_outages
        assert first.wan_outages == second.wan_outages
        assert first.device_departure_s == second.device_departure_s
        assert first.station_crash_s == second.station_crash_s

    def test_different_seeds_differ(self, config, small_scenario):
        first = generate_fault_plan(small_scenario.system, config, seed=1)
        second = generate_fault_plan(small_scenario.system, config, seed=2)
        assert (
            first.backhaul_outages != second.backhaul_outages
            or first.wan_outages != second.wan_outages
        )

    def test_zero_intensity_is_fault_free(self, config, small_scenario):
        plan = generate_fault_plan(
            small_scenario.system, config.with_intensity(0.0), seed=3
        )
        assert plan.is_fault_free()

    def test_events_within_horizon(self, config, small_scenario):
        plan = generate_fault_plan(
            small_scenario.system, config.with_intensity(0.3), seed=4
        )
        for start, end in plan.backhaul_outages + plan.wan_outages:
            assert 0.0 <= start < config.horizon_s
            assert end > start
        for when in plan.device_departure_s.values():
            assert 0.0 <= when < config.horizon_s
        for when in plan.station_crash_s.values():
            assert 0.0 <= when < config.horizon_s

    def test_windows_sorted_and_disjoint(self, config, small_scenario):
        plan = generate_fault_plan(
            small_scenario.system, config.with_intensity(0.4), seed=6
        )
        for windows in (plan.backhaul_outages, plan.wan_outages):
            for (s1, e1), (s2, _) in zip(windows, windows[1:]):
                assert e1 < s2


class TestMonotoneNesting:
    """Higher intensity ⇒ superset of failures (same seed, same ceiling)."""

    def _plans(self, system, config, seed=9):
        return [
            generate_fault_plan(system, config.with_intensity(lam), seed=seed)
            for lam in INTENSITIES
        ]

    def test_outage_windows_nest(self, config, small_scenario):
        plans = self._plans(small_scenario.system, config)

        def covered(windows, t):
            return any(s <= t < e for s, e in windows)

        probes = [i * 0.5 for i in range(600)]
        for lo, hi in zip(plans, plans[1:]):
            for attr in ("backhaul_outages", "wan_outages"):
                lo_w, hi_w = getattr(lo, attr), getattr(hi, attr)
                for t in probes:
                    if covered(lo_w, t):
                        assert covered(hi_w, t)

    def test_departed_and_crashed_sets_nest(self, config, small_scenario):
        plans = self._plans(small_scenario.system, config)
        for lo, hi in zip(plans, plans[1:]):
            for t in (0.0, 50.0, 150.0, 299.0):
                assert lo.departed_devices(t) <= hi.departed_devices(t)
                assert lo.crashed_stations(t) <= hi.crashed_stations(t)


class TestShiftWindows:
    def test_window_inside_epoch(self):
        assert shift_windows(((70.0, 75.0),), 60.0, 120.0) == ((10.0, 15.0),)

    def test_window_straddling_start_clips_left(self):
        assert shift_windows(((50.0, 70.0),), 60.0, 120.0) == ((0.0, 10.0),)

    def test_window_outliving_epoch_not_right_clipped(self):
        assert shift_windows(((110.0, 200.0),), 60.0, 120.0) == ((50.0, 140.0),)

    def test_disjoint_windows_dropped(self):
        assert shift_windows(((0.0, 60.0), (120.0, 130.0)), 60.0, 120.0) == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            shift_windows((), 10.0, 10.0)


class TestFaultPlanQueries:
    def test_departed_devices_threshold(self):
        plan = FaultPlan(
            config=FaultConfig(), seed=0,
            device_departure_s={3: 100.0, 7: 250.0},
        )
        assert plan.departed_devices(50.0) == frozenset()
        assert plan.departed_devices(100.0) == frozenset({3})
        assert plan.departed_devices(300.0) == frozenset({3, 7})

    def test_crashed_stations_threshold(self):
        plan = FaultPlan(
            config=FaultConfig(), seed=0, station_crash_s={1: 42.0}
        )
        assert plan.crashed_stations(41.0) == frozenset()
        assert plan.crashed_stations(42.0) == frozenset({1})
