"""Unit-conversion helpers."""

import pytest

from repro import units


def test_kilobytes():
    assert units.kilobytes(3000) == 3_000_000.0


def test_megabits_per_second():
    assert units.megabits_per_second(13.76) == pytest.approx(13.76e6)


def test_gigahertz():
    assert units.gigahertz(2.4) == pytest.approx(2.4e9)


def test_milliseconds():
    assert units.milliseconds(15) == pytest.approx(0.015)


def test_transmission_time_basic():
    # 1 MB over 8 Mbps = 1 second.
    assert units.transmission_time_s(1e6, 8e6) == pytest.approx(1.0)


def test_transmission_time_zero_size_is_free():
    assert units.transmission_time_s(0.0, 1e6) == 0.0


def test_transmission_time_zero_size_ignores_bad_rate():
    # No payload means no transfer: rate is irrelevant.
    assert units.transmission_time_s(0.0, 0.0) == 0.0


def test_transmission_time_rejects_negative_size():
    with pytest.raises(ValueError):
        units.transmission_time_s(-1.0, 1e6)


def test_transmission_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transmission_time_s(10.0, 0.0)


def test_transmission_time_scales_linearly():
    base = units.transmission_time_s(1e5, 5e6)
    assert units.transmission_time_s(3e5, 5e6) == pytest.approx(3 * base)
