"""Backhaul and cloud links."""

import pytest

from repro.system.links import (
    DEFAULT_BS_BS_LINK,
    DEFAULT_BS_CLOUD_LINK,
    BackhaulLink,
    CloudLink,
)


class TestDefaults:
    def test_bs_bs_latency_is_15ms(self):
        assert DEFAULT_BS_BS_LINK.latency_s == pytest.approx(0.015)

    def test_bs_cloud_latency_is_250ms(self):
        assert DEFAULT_BS_CLOUD_LINK.latency_s == pytest.approx(0.250)

    def test_cloud_link_costs_more_per_byte(self):
        # Needed for the paper's E_ij3 > E_ij2 claim.
        assert (
            DEFAULT_BS_CLOUD_LINK.energy_per_byte_j
            > DEFAULT_BS_BS_LINK.energy_per_byte_j
        )

    def test_cloud_link_is_marker_subclass(self):
        assert isinstance(DEFAULT_BS_CLOUD_LINK, CloudLink)
        assert isinstance(DEFAULT_BS_CLOUD_LINK, BackhaulLink)


class TestTransferModel:
    def test_time_is_latency_plus_serialisation(self):
        link = BackhaulLink(latency_s=0.01, bandwidth_bps=8e6, energy_per_byte_j=0.0)
        # 1 MB at 8 Mbps = 1 s serialisation.
        assert link.transfer_time_s(1e6) == pytest.approx(1.01)

    def test_zero_bytes_skip_latency(self):
        link = BackhaulLink(latency_s=0.5, bandwidth_bps=1e6, energy_per_byte_j=1.0)
        assert link.transfer_time_s(0.0) == 0.0
        assert link.transfer_energy_j(0.0) == 0.0

    def test_energy_linear_in_size(self):
        link = BackhaulLink(latency_s=0.0, bandwidth_bps=1e6, energy_per_byte_j=2e-7)
        assert link.transfer_energy_j(5e5) == pytest.approx(0.1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            DEFAULT_BS_BS_LINK.transfer_energy_j(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackhaulLink(latency_s=-1.0, bandwidth_bps=1e6, energy_per_byte_j=0.0)
        with pytest.raises(ValueError):
            BackhaulLink(latency_s=0.0, bandwidth_bps=0.0, energy_per_byte_j=0.0)
        with pytest.raises(ValueError):
            BackhaulLink(latency_s=0.0, bandwidth_bps=1e6, energy_per_byte_j=-1e-9)
