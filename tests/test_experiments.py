"""Experiment harness: series containers, runners, tables, figure wiring."""

import pytest

from repro.experiments.figures import ALL_FIGURES, run_figure
from repro.experiments.runner import (
    HOLISTIC_ALGORITHMS,
    evaluate_dta,
    evaluate_holistic,
)
from repro.experiments.series import SeriesData
from repro.experiments.tables import table1_rows, table1_text


class TestSeriesData:
    def _sample(self) -> SeriesData:
        return SeriesData(
            figure_id="figX", title="demo", x_label="n", y_label="J",
            x_values=(1, 2, 3),
            series={"A": (3.0, 2.0, 1.0), "B": (1.0, 5.0, 0.5)},
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SeriesData(
                figure_id="f", title="t", x_label="x", y_label="y",
                x_values=(1, 2), series={"A": (1.0,)},
            )

    def test_values_of(self):
        assert self._sample().values_of("A") == (3.0, 2.0, 1.0)

    def test_winner_per_x(self):
        assert self._sample().winner_per_x() == ("B", "A", "B")

    def test_format_table_contains_everything(self):
        text = self._sample().format_table()
        assert "figX" in text and "A" in text and "B" in text
        assert "3" in text


class TestRunner:
    def test_all_paper_algorithms_registered(self):
        assert set(HOLISTIC_ALGORITHMS) == {"LP-HTA", "HGOS", "AllToC", "AllOffload"}

    def test_evaluate_holistic(self, small_scenario):
        result = evaluate_holistic(small_scenario, "LP-HTA")
        assert result.name == "LP-HTA"
        assert result.total_energy_j > 0
        assert 0 <= result.unsatisfied_rate <= 1

    def test_unknown_algorithm_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="unknown algorithm"):
            evaluate_holistic(small_scenario, "SGD")

    def test_evaluate_dta(self, divisible_scenario):
        result = evaluate_dta(divisible_scenario, "workload")
        assert result.name == "DTA-Workload"
        assert result.involved_devices > 0

    def test_evaluate_dta_needs_divisible_scenario(self, small_scenario):
        with pytest.raises(ValueError, match="divisible"):
            evaluate_dta(small_scenario, "workload")


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows()
        assert rows[0] == ("4G", pytest.approx(13.76), pytest.approx(5.85),
                           pytest.approx(7.32), pytest.approx(1.6))
        assert rows[1][0] == "Wi-Fi"

    def test_text_rendering(self):
        text = table1_text()
        assert "TABLE I" in text
        assert "4G" in text and "Wi-Fi" in text
        assert "13.76" in text and "54.97" in text


class TestFigureRegistry:
    def test_all_nine_figures_present(self):
        assert set(ALL_FIGURES) == {
            "fig2a", "fig2b", "fig3", "fig4a", "fig4b",
            "fig5a", "fig5b", "fig6a", "fig6b",
        }

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")


class TestRenderAscii:
    def _sample(self) -> SeriesData:
        return SeriesData(
            figure_id="figY", title="chart demo", x_label="n", y_label="J",
            x_values=(1, 2, 3, 4),
            series={"A": (1.0, 2.0, 3.0, 4.0), "B": (4.0, 3.0, 2.0, 1.0)},
        )

    def test_contains_legend_and_labels(self):
        chart = self._sample().render_ascii()
        assert "o=A" in chart and "x=B" in chart
        assert "figY" in chart and "[J]" in chart

    def test_extremes_on_axis(self):
        chart = self._sample().render_ascii()
        assert "4" in chart  # y max label
        assert "1" in chart  # y min / x ticks

    def test_markers_present(self):
        chart = self._sample().render_ascii(width=20, height=6)
        assert chart.count("o") >= 3  # four points, possible overlap
        assert chart.count("x") >= 3

    def test_single_point_series(self):
        data = SeriesData(
            figure_id="f", title="t", x_label="x", y_label="y",
            x_values=(10,), series={"A": (5.0,)},
        )
        chart = data.render_ascii(width=10, height=4)
        assert "o" in chart

    def test_flat_series_does_not_crash(self):
        data = SeriesData(
            figure_id="f", title="t", x_label="x", y_label="y",
            x_values=(1, 2), series={"A": (3.0, 3.0)},
        )
        assert "o" in data.render_ascii()

    def test_too_small_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            self._sample().render_ascii(width=2, height=2)
