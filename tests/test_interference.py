"""The multi-user interference channel model."""

import pytest

from repro.system.interference import InterferenceChannel, congestion_profiles
from repro.system.radio import shannon_rate_bps


@pytest.fixture
def channel():
    return InterferenceChannel(
        bandwidth_hz=5e6,
        channel_gain=1e-6,
        tx_power_w=0.5,
        noise_power_w=1e-9,
        orthogonality_loss=0.5,
    )


class TestRates:
    def test_single_user_matches_shannon(self, channel):
        expected = shannon_rate_bps(5e6, 1e-6, 0.5, 1e-9)
        assert channel.uplink_rate_bps(1) == pytest.approx(expected)

    def test_rate_decreases_with_concurrency(self, channel):
        rates = [channel.uplink_rate_bps(k) for k in range(1, 8)]
        for faster, slower in zip(rates, rates[1:]):
            assert slower < faster

    def test_orthogonal_channels_do_not_interfere(self):
        clean = InterferenceChannel(
            bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
            noise_power_w=1e-9, orthogonality_loss=0.0,
        )
        assert clean.uplink_rate_bps(10) == pytest.approx(clean.uplink_rate_bps(1))

    def test_cell_throughput_sublinear_in_users(self, channel):
        t1 = channel.cell_throughput_bps(1)
        t4 = channel.cell_throughput_bps(4)
        assert 0 < t4 < 4 * t1  # each user gets less than a private channel
        # With orthogonal channels the aggregate is exactly linear.
        clean = InterferenceChannel(
            bandwidth_hz=5e6, channel_gain=1e-6, tx_power_w=0.5,
            noise_power_w=1e-9, orthogonality_loss=0.0,
        )
        assert clean.cell_throughput_bps(4) == pytest.approx(
            4 * clean.cell_throughput_bps(1)
        )

    def test_invalid_concurrency_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.uplink_rate_bps(0)


class TestProfiles:
    def test_to_profile(self, channel):
        profile = channel.to_profile(3)
        assert profile.upload_rate_bps == pytest.approx(channel.uplink_rate_bps(3))
        assert profile.download_rate_bps == channel.downlink_rate_bps
        assert "k3" in profile.name

    def test_congestion_profiles(self, channel):
        profiles = congestion_profiles(channel, 5)
        assert len(profiles) == 5
        uploads = [p.upload_rate_bps for p in profiles]
        assert uploads == sorted(uploads, reverse=True)

    def test_validation(self, channel):
        with pytest.raises(ValueError):
            congestion_profiles(channel, 0)
        with pytest.raises(ValueError):
            InterferenceChannel(
                bandwidth_hz=1e6, channel_gain=1.0, tx_power_w=1.0,
                noise_power_w=1e-9, orthogonality_loss=2.0,
            )


class TestIntegrationWithCosts:
    def test_congested_profile_raises_task_cost(self, channel):
        """A device priced at the k=6 operating point pays more to offload
        than at k=1 — the congestion externality the [9] game prices."""
        from repro.core.costs import task_costs
        from repro.core.task import Task
        from repro.system.devices import BaseStation, MobileDevice
        from repro.system.topology import MECSystem
        from repro.units import KB, gigahertz

        def system_with(profile):
            return MECSystem(
                [MobileDevice(0, gigahertz(1.5), profile, max_resource=5.0)],
                [BaseStation(0)],
                {0: 0},
            )

        task = Task(
            owner_device_id=0, index=0, local_bytes=1000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=1.0, deadline_s=10.0,
        )
        quiet = task_costs(system_with(channel.to_profile(1)), task)
        busy = task_costs(system_with(channel.to_profile(6)), task)
        assert busy.total_time_s[1] > quiet.total_time_s[1]
        assert busy.total_energy_j[1] > quiet.total_energy_j[1]
