"""Data items and the catalog."""

import pytest

from repro.data.items import DataCatalog, DataItem


class TestDataItem:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataItem(-1, 10.0)
        with pytest.raises(ValueError):
            DataItem(0, -10.0)


class TestCatalog:
    def test_lookup(self):
        catalog = DataCatalog([DataItem(0, 10.0), DataItem(1, 20.0)])
        assert len(catalog) == 2
        assert 0 in catalog and 5 not in catalog
        assert catalog.size_of(1) == 20.0
        assert catalog.item_ids == frozenset({0, 1})

    def test_total_bytes(self):
        catalog = DataCatalog([DataItem(i, float(i * 10)) for i in range(5)])
        assert catalog.total_bytes({1, 3}) == pytest.approx(40.0)
        assert catalog.total_bytes(set()) == 0.0

    def test_total_bytes_unknown_id_raises(self):
        catalog = DataCatalog([DataItem(0, 10.0)])
        with pytest.raises(KeyError):
            catalog.total_bytes({0, 99})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataCatalog([DataItem(0, 10.0), DataItem(0, 20.0)])

    def test_from_sizes(self):
        catalog = DataCatalog.from_sizes({3: 7.0, 4: 9.0})
        assert catalog.size_of(3) == 7.0
        assert len(catalog) == 2
