"""Streaming scenario tiles: structure, identity and solve equivalence."""

import pytest

from repro.context import RunContext, use_context
from repro.core.hta import lp_hta
from repro.system.sharding import ShardSpec
from repro.workload import PAPER_DEFAULTS, generate_scenario
from repro.workload.streaming import (
    generate_tile,
    materialize_tiles,
    stream_scenario_tiles,
)


@pytest.fixture(scope="module")
def profile():
    return PAPER_DEFAULTS.with_updates(
        num_devices=14, num_stations=4, num_tasks=40
    )


class TestSingleShardIdentity:
    def test_tile_is_the_dense_scenario(self, profile):
        dense = generate_scenario(profile, seed=5)
        tile = generate_tile(
            profile, ShardSpec.balanced(range(4), 1), 0, seed=5
        )
        assert tile.tasks == dense.tasks
        assert list(tile.system.devices) == list(dense.system.devices)
        assert list(tile.system.stations) == list(dense.system.stations)
        assert tile.tile_seed == 5


class TestTileStructure:
    @pytest.fixture(scope="class")
    def tiles(self, profile):
        return list(stream_scenario_tiles(profile, num_shards=3, seed=0))

    def test_devices_partition_round_robin(self, profile, tiles):
        ids = sorted(d for tile in tiles for d in tile.system.devices)
        assert ids == list(range(profile.num_devices))
        for tile in tiles:
            stations = set(tile.system.stations)
            for device_id in tile.system.devices:
                # Dense attachment rule: device d sits on station d % k.
                assert tile.system.cluster_of(device_id) == device_id % 4
                assert device_id % 4 in stations

    def test_task_counts_match_dense_split(self, profile, tiles):
        assert sum(tile.num_tasks for tile in tiles) == profile.num_tasks
        dense = generate_scenario(profile, seed=0)
        dense_per_device = {}
        for task in dense.tasks:
            dense_per_device[task.owner_device_id] = (
                dense_per_device.get(task.owner_device_id, 0) + 1
            )
        for tile in tiles:
            for device_id in tile.system.devices:
                owned = sum(
                    1
                    for task in tile.tasks
                    if task.owner_device_id == device_id
                )
                assert owned == dense_per_device.get(device_id, 0)

    def test_external_sources_stay_in_tile(self, tiles):
        for tile in tiles:
            members = set(tile.system.devices)
            for task in tile.tasks:
                if task.external_source is not None:
                    assert task.external_source in members

    def test_item_slices_disjoint_when_divisible(self, profile):
        divisible = profile.with_updates(divisible=True)
        tiles = list(stream_scenario_tiles(divisible, num_shards=3, seed=0))
        seen = set()
        for tile in tiles:
            items = set(tile.catalog.item_ids)
            assert not items & seen
            seen |= items
        assert len(seen) == divisible.num_data_items

    def test_too_many_shards_for_items_rejected(self, profile):
        tiny = profile.with_updates(divisible=True, num_data_items=2)
        with pytest.raises(ValueError, match="at least one data item"):
            generate_tile(tiny, ShardSpec.balanced(range(4), 3), 0)

    def test_gapped_spec_rejected(self, profile):
        with pytest.raises(ValueError, match="contiguous"):
            generate_tile(profile, ShardSpec(((0, 2), (1, 3))), 0)


class TestSolveEquivalence:
    def test_tile_solves_match_materialized(self, profile):
        tiles = list(stream_scenario_tiles(profile, num_shards=3, seed=0))
        merged = materialize_tiles(profile, num_shards=3, seed=0)
        with use_context(RunContext()):
            merged_report = lp_hta(merged.system, list(merged.tasks))
            merged_by_key = {
                (task.owner_device_id, task.index): decision
                for task, decision in zip(
                    merged.tasks, merged_report.assignment.decisions
                )
            }
            for tile in tiles:
                report = lp_hta(tile.system, list(tile.tasks))
                for task, decision in zip(
                    tile.tasks, report.assignment.decisions
                ):
                    key = (task.owner_device_id, task.index)
                    assert merged_by_key[key] == decision

    def test_materialized_single_shard_is_dense(self, profile):
        dense = generate_scenario(profile, seed=2)
        merged = materialize_tiles(profile, num_shards=1, seed=2)
        assert merged.tasks == dense.tasks
        assert list(merged.system.devices) == list(dense.system.devices)


class TestDeterminism:
    def test_tiles_pure_in_their_inputs(self, profile):
        spec = ShardSpec.balanced(range(4), 3)
        first = generate_tile(profile, spec, 1, seed=7)
        again = generate_tile(profile, spec, 1, seed=7)
        assert first.tasks == again.tasks
        assert list(first.system.devices) == list(again.system.devices)

    def test_distinct_shards_get_distinct_streams(self, profile):
        spec = ShardSpec.balanced(range(4), 2)
        a = generate_tile(profile, spec, 0, seed=7)
        b = generate_tile(profile, spec, 1, seed=7)
        assert a.tile_seed != b.tile_seed
        assert not set(a.system.devices) & set(b.system.devices)
