"""Property-based tests of LP-HTA feasibility and the DES oracle (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import Subsystem
from repro.core.hta import lp_hta
from repro.des.replay import replay_assignment
from repro.workload import PAPER_DEFAULTS, generate_scenario


@st.composite
def small_profile(draw):
    """A small random scenario profile + seed."""
    num_stations = draw(st.integers(min_value=1, max_value=3))
    num_devices = num_stations * draw(st.integers(min_value=2, max_value=4))
    profile = PAPER_DEFAULTS.with_updates(
        num_stations=num_stations,
        num_devices=num_devices,
        num_tasks=draw(st.integers(min_value=5, max_value=40)),
        max_input_bytes=draw(st.floats(min_value=500e3, max_value=4000e3)),
        device_max_resource=draw(st.floats(min_value=0.5, max_value=10.0)),
        station_max_resource=draw(st.floats(min_value=1.0, max_value=50.0)),
        deadline_range_s=(0.3, draw(st.floats(min_value=1.0, max_value=8.0))),
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return profile, seed


class TestLPHTAProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_profile())
    def test_assignments_always_feasible(self, case):
        """Section III-B.1: every LP-HTA output satisfies C1–C5."""
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        report = lp_hta(scenario.system, list(scenario.tasks))
        assignment = report.assignment
        # C1: assigned tasks meet deadlines.
        for row, decision in enumerate(assignment.decisions):
            if decision is not Subsystem.CANCELLED:
                assert (
                    assignment.costs.time_s[row, decision.column]
                    <= assignment.costs.deadline_s[row] + 1e-9
                )
        # C2: per-device loads.
        for device_id, load in assignment.device_loads().items():
            assert load <= scenario.system.device(device_id).max_resource + 1e-9
        # C3: per-station loads.
        for station_id in scenario.system.stations:
            load = sum(
                assignment.costs.resource[row]
                for row, decision in enumerate(assignment.decisions)
                if decision is Subsystem.STATION
                and scenario.system.cluster_of(
                    assignment.costs.tasks[row].owner_device_id
                ) == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(small_profile())
    def test_never_cancels_a_placeable_task(self, case):
        """A task with a deadline-feasible subsystem and slack in the cloud
        must not be dropped (the cloud is uncapped, so Step 4 can always
        fall back there when the cloud meets the deadline)."""
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        report = lp_hta(scenario.system, list(scenario.tasks))
        assignment = report.assignment
        for row, decision in enumerate(assignment.decisions):
            if decision is Subsystem.CANCELLED:
                cloud_time = assignment.costs.time_s[row, 2]
                deadline = assignment.costs.deadline_s[row]
                assert cloud_time > deadline

    @settings(max_examples=15, deadline=None)
    @given(small_profile())
    def test_replay_oracle_agrees(self, case):
        """The DES replay reproduces the analytic latency of every decision."""
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        report = lp_hta(scenario.system, list(scenario.tasks))
        metrics = replay_assignment(
            scenario.system, list(scenario.tasks), report.assignment
        )
        for row, decision in enumerate(report.assignment.decisions):
            if decision is Subsystem.CANCELLED:
                assert metrics.latencies_s[row] is None
            else:
                assert metrics.latencies_s[row] == pytest.approx(
                    report.assignment.costs.time_s[row, decision.column], abs=1e-9
                )

    @settings(max_examples=20, deadline=None)
    @given(small_profile())
    def test_energy_never_above_all_to_cloud(self, case):
        """AllToC is always feasible for the objective (no caps bind on the
        cloud), so LP-HTA must never cost more."""
        from repro.core.baselines import all_to_cloud

        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        ours = lp_hta(scenario.system, list(scenario.tasks)).assignment
        cloud = all_to_cloud(scenario.system, list(scenario.tasks))
        assert ours.total_energy_j() <= cloud.total_energy_j() + 1e-6
