"""The empirical approximation-ratio study."""

import pytest

from repro.experiments.ratio_study import run_ratio_study


@pytest.fixture(scope="module")
def study():
    return run_ratio_study(seeds=tuple(range(8)))


def test_ratios_at_least_one(study):
    assert all(r >= 1.0 - 1e-9 for r in study.ratios)


def test_no_bound_violations(study):
    assert study.bound_violations == 0


def test_near_optimal_on_small_instances(study):
    assert study.summary.mean < 1.5


def test_summary_consistent(study):
    assert study.summary.n == len(study.ratios)
    assert study.summary.minimum == min(study.ratios)
    assert study.summary.maximum == max(study.ratios)


def test_accounts_for_all_seeds(study):
    assert len(study.ratios) + study.skipped == 8
