"""The decentralized offloading game."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.game import GameOptions, best_response_offloading
from repro.core.hta import lp_hta
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=120, num_devices=20, num_stations=2),
        seed=6,
    )


@pytest.fixture(scope="module")
def result(scenario):
    return best_response_offloading(scenario.system, list(scenario.tasks))


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            GameOptions(max_rounds=0)
        with pytest.raises(ValueError):
            GameOptions(congestion_weight=-1.0)


class TestConvergence:
    def test_converges(self, result):
        assert result.converged
        assert result.rounds <= GameOptions().max_rounds

    def test_cost_history_non_increasing(self, result):
        history = result.total_cost_history
        for left, right in zip(history, history[1:]):
            assert right <= left + 1e-6

    def test_equilibrium_is_stable(self, scenario, result):
        """No player can unilaterally reduce its cost: re-running the
        dynamics from the equilibrium must make zero moves."""
        again = best_response_offloading(scenario.system, list(scenario.tasks))
        assert again.assignment.decisions == result.assignment.decisions

    def test_deterministic(self, scenario, result):
        repeat = best_response_offloading(scenario.system, list(scenario.tasks))
        assert repeat.assignment.decisions == result.assignment.decisions
        assert repeat.rounds == result.rounds


class TestHardConstraints:
    def test_respects_device_caps(self, scenario, result):
        for device_id, load in result.assignment.device_loads().items():
            assert load <= scenario.system.device(device_id).max_resource + 1e-9

    def test_respects_station_caps(self, scenario, result):
        for station_id in scenario.system.stations:
            load = sum(
                result.assignment.costs.resource[row]
                for row, decision in enumerate(result.assignment.decisions)
                if decision is Subsystem.STATION
                and scenario.system.cluster_of(
                    result.assignment.costs.tasks[row].owner_device_id
                ) == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    def test_never_cancels(self, result):
        assert all(
            d is not Subsystem.CANCELLED for d in result.assignment.decisions
        )

    def test_soft_mode_may_overload_but_saves_energy(self, scenario):
        hard = best_response_offloading(scenario.system, list(scenario.tasks))
        soft = best_response_offloading(
            scenario.system, list(scenario.tasks),
            GameOptions(hard_constraints=False, congestion_weight=1.0),
        )
        assert (
            soft.assignment.total_energy_j() <= hard.assignment.total_energy_j() + 1e-6
        )


class TestQuality:
    def test_equilibrium_at_least_lp_hta_when_all_placed(self, scenario, result):
        """A Nash equilibrium cannot beat the coordinated LP when LP-HTA
        places every task (cancellations would skew the comparison)."""
        report = lp_hta(scenario.system, list(scenario.tasks))
        cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if cancelled == 0:
            assert (
                result.assignment.total_energy_j()
                >= report.assignment.total_energy_j() - 1e-6
            )

    def test_beats_all_to_cloud(self, scenario, result):
        from repro.core.baselines import all_to_cloud

        cloud = all_to_cloud(scenario.system, list(scenario.tasks))
        assert result.assignment.total_energy_j() <= cloud.total_energy_j() + 1e-6


class TestDeadlineHandling:
    def test_respecting_deadlines_lowers_unsatisfied_rate(self, scenario):
        aware = best_response_offloading(scenario.system, list(scenario.tasks))
        blind = best_response_offloading(
            scenario.system, list(scenario.tasks),
            GameOptions(respect_deadlines=False),
        )
        assert (
            aware.assignment.unsatisfied_rate()
            <= blind.assignment.unsatisfied_rate() + 1e-9
        )
