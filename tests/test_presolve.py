"""LP presolve passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LinearProgram, solve
from repro.lp.presolve import presolve, restore


class TestFixedVariables:
    def test_pinned_variables_removed(self):
        lp = LinearProgram(
            c=np.array([1.0, 2.0, 3.0]),
            upper_bounds=np.array([0.0, 5.0, 0.0]),
        )
        result = presolve(lp)
        assert result.num_eliminated == 2
        assert result.fixed == {0: 0.0, 2: 0.0}
        assert result.lp.num_vars == 1

    def test_rhs_adjusted_for_fixed(self):
        # x0 pinned to 0; the row x0 + x1 <= 3 must become x1 <= 3.
        lp = LinearProgram(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([3.0]),
            upper_bounds=np.array([0.0, 10.0]),
        )
        result = presolve(lp)
        assert result.lp.b_ub[0] == pytest.approx(3.0)
        assert result.lp.a_ub.shape == (1, 1)


class TestSingletonRows:
    def test_singleton_equality_fixes_variable(self):
        # 2 x1 = 4 → x1 = 2.
        lp = LinearProgram(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[0.0, 2.0]]), b_eq=np.array([4.0]),
            upper_bounds=np.array([10.0, 10.0]),
        )
        result = presolve(lp)
        assert result.fixed == {1: 2.0}
        assert result.lp.a_eq is None

    def test_cascading_singletons(self):
        # x0 = 1 propagates into x0 + x1 = 3 → x1 = 2 → fully solved.
        lp = LinearProgram(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 0.0], [1.0, 1.0]]), b_eq=np.array([1.0, 3.0]),
            upper_bounds=np.array([10.0, 10.0]),
        )
        result = presolve(lp)
        assert result.fully_solved
        assert result.fixed == {0: 1.0, 1: 2.0}

    def test_singleton_violating_bounds_is_infeasible(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a_eq=np.array([[1.0]]), b_eq=np.array([9.0]),
            upper_bounds=np.array([2.0]),
        )
        assert presolve(lp).infeasible


class TestEmptyRows:
    def test_redundant_rows_dropped(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a_ub=np.array([[0.0], [1.0]]), b_ub=np.array([5.0, 2.0]),
        )
        result = presolve(lp)
        assert result.lp.a_ub.shape == (1, 1)

    def test_contradictory_inequality_detected(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a_ub=np.array([[0.0]]), b_ub=np.array([-1.0]),
        )
        assert presolve(lp).infeasible

    def test_contradictory_equality_detected(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a_eq=np.array([[0.0]]), b_eq=np.array([2.0]),
        )
        assert presolve(lp).infeasible


class TestRestore:
    def test_roundtrip(self):
        lp = LinearProgram(
            c=np.array([1.0, -1.0, 2.0]),
            a_ub=np.array([[1.0, 1.0, 0.0]]), b_ub=np.array([2.0]),
            upper_bounds=np.array([5.0, 5.0, 0.0]),
        )
        result = presolve(lp)
        reduced_solution = solve(result.lp, "simplex").require_ok()
        full = restore(result, reduced_solution)
        assert len(full) == 3
        assert full[2] == 0.0
        assert lp.is_feasible(full, tol=1e-7)

    def test_fully_solved_restore(self):
        lp = LinearProgram(
            c=np.array([1.0]), a_eq=np.array([[1.0]]), b_eq=np.array([3.0]),
            upper_bounds=np.array([5.0]),
        )
        result = presolve(lp)
        assert result.fully_solved
        assert restore(result, None).tolist() == [3.0]

    def test_restore_rejects_infeasible(self):
        lp = LinearProgram(
            c=np.array([1.0]), a_eq=np.array([[0.0]]), b_eq=np.array([1.0]),
        )
        with pytest.raises(ValueError):
            restore(presolve(lp), None)

    def test_restore_rejects_wrong_length(self):
        lp = LinearProgram(c=np.array([1.0, 2.0]))
        result = presolve(lp)
        with pytest.raises(ValueError):
            restore(result, np.zeros(5))


class TestPreservesOptimum:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_presolved_optimum_matches(self, seed):
        """Solving after presolve gives the same optimum as solving raw."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(2, n))
        x0 = rng.uniform(0.1, 0.9, size=n)
        b_ub = a_ub @ x0 + rng.uniform(0.1, 1.0, size=2)
        upper = rng.uniform(1.0, 2.0, size=n)
        upper[rng.uniform(size=n) < 0.3] = 0.0  # pin some variables
        lp = LinearProgram(c, a_ub=a_ub, b_ub=b_ub, upper_bounds=upper)

        raw = solve(lp, "scipy")
        result = presolve(lp)
        if result.infeasible:
            # All variables pinned to zero can leave an unsatisfiable
            # inequality row; presolve proving it must agree with the solver.
            assert not raw.status.ok
            return
        if result.fully_solved:
            full = restore(result, None)
        else:
            reduced = solve(result.lp, "scipy")
            assert reduced.status.ok == raw.status.ok
            if not raw.status.ok:
                return
            full = restore(result, reduced.require_ok())
        assert lp.objective(full) == pytest.approx(raw.objective, abs=1e-6)
        assert lp.is_feasible(full, tol=1e-6)
