"""Radio profiles (Table I) and the Shannon channel model."""

import math

import pytest

from repro.system.radio import (
    FOUR_G,
    TABLE_I_PROFILES,
    WIFI,
    ShannonChannel,
    WirelessProfile,
    shannon_rate_bps,
)
from repro.units import MBPS


class TestTableIProfiles:
    def test_4g_row_matches_paper(self):
        assert FOUR_G.download_rate_bps == pytest.approx(13.76 * MBPS)
        assert FOUR_G.upload_rate_bps == pytest.approx(5.85 * MBPS)
        assert FOUR_G.tx_power_w == pytest.approx(7.32)
        assert FOUR_G.rx_power_w == pytest.approx(1.6)

    def test_wifi_row_matches_paper(self):
        assert WIFI.download_rate_bps == pytest.approx(54.97 * MBPS)
        assert WIFI.upload_rate_bps == pytest.approx(12.88 * MBPS)
        assert WIFI.tx_power_w == pytest.approx(15.7)
        assert WIFI.rx_power_w == pytest.approx(2.7)

    def test_exactly_two_profiles(self):
        assert TABLE_I_PROFILES == (FOUR_G, WIFI)

    def test_wifi_faster_than_4g(self):
        assert WIFI.download_rate_bps > FOUR_G.download_rate_bps
        assert WIFI.upload_rate_bps > FOUR_G.upload_rate_bps


class TestProfileCosts:
    def test_upload_time(self):
        # 1 MB at 5.85 Mbps.
        expected = 1e6 * 8 / (5.85e6)
        assert FOUR_G.upload_time_s(1e6) == pytest.approx(expected)

    def test_upload_energy_is_power_times_time(self):
        size = 2e6
        assert FOUR_G.upload_energy_j(size) == pytest.approx(
            7.32 * FOUR_G.upload_time_s(size)
        )

    def test_download_energy_is_power_times_time(self):
        size = 2e6
        assert WIFI.download_energy_j(size) == pytest.approx(
            2.7 * WIFI.download_time_s(size)
        )

    def test_zero_bytes_cost_nothing(self):
        assert FOUR_G.upload_time_s(0.0) == 0.0
        assert FOUR_G.upload_energy_j(0.0) == 0.0

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            WirelessProfile("bad", 0.0, 1.0, 1.0, 1.0)

    def test_rejects_nonpositive_powers(self):
        with pytest.raises(ValueError):
            WirelessProfile("bad", 1.0, 1.0, 0.0, 1.0)


class TestShannon:
    def test_formula(self):
        rate = shannon_rate_bps(1e6, 0.5, 2.0, 1e-3)
        assert rate == pytest.approx(1e6 * math.log2(1 + 0.5 * 2.0 / 1e-3))

    def test_zero_power_means_zero_rate(self):
        assert shannon_rate_bps(1e6, 0.5, 0.0, 1e-3) == 0.0

    def test_monotone_in_power(self):
        low = shannon_rate_bps(1e6, 0.5, 1.0, 1e-3)
        high = shannon_rate_bps(1e6, 0.5, 2.0, 1e-3)
        assert high > low

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shannon_rate_bps(0.0, 0.5, 1.0, 1e-3)
        with pytest.raises(ValueError):
            shannon_rate_bps(1e6, 0.5, 1.0, 0.0)
        with pytest.raises(ValueError):
            shannon_rate_bps(1e6, -0.5, 1.0, 1e-3)

    def test_channel_to_profile(self):
        channel = ShannonChannel(
            uplink_bandwidth_hz=5e6,
            downlink_bandwidth_hz=10e6,
            uplink_gain=0.3,
            downlink_gain=0.4,
            device_tx_power_w=2.0,
            station_tx_power_w=10.0,
            device_rx_power_w=1.0,
            noise_power_w=1e-3,
        )
        profile = channel.to_profile("derived")
        assert profile.name == "derived"
        assert profile.upload_rate_bps == pytest.approx(channel.uplink_rate_bps())
        assert profile.download_rate_bps == pytest.approx(channel.downlink_rate_bps())
        assert profile.tx_power_w == 2.0
        assert profile.rx_power_w == 1.0
