"""The algorithm registry: lookup, flags, and end-to-end evaluation."""

import math

import pytest

from repro import registry
from repro.context import RunContext
from repro.core.assignment import Assignment
from repro.registry import (
    ALL_OFFLOAD,
    ALL_TO_CLOUD,
    BNB_EXACT,
    DTA_NUMBER,
    DTA_WORKLOAD,
    HGOS_NAME,
    LP_HTA,
    AlgorithmResult,
)
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS

#: Tiny Table-I-parameterised scenarios, kept small so BnB-Exact's search
#: stays tractable.
_TINY = PAPER_DEFAULTS.with_updates(num_tasks=8, num_devices=4, num_stations=2)
_TINY_DIVISIBLE = _TINY.with_updates(
    num_tasks=6, divisible=True, num_data_items=12,
    deadline_range_s=(2.0, 10.0),
)


@pytest.fixture(scope="module")
def tiny_scenario():
    return generate_scenario(_TINY, seed=0)


@pytest.fixture(scope="module")
def tiny_divisible_scenario():
    return generate_scenario(_TINY_DIVISIBLE, seed=0)


class TestLookup:
    def test_canonical_names(self):
        assert registry.get(LP_HTA).name == LP_HTA
        assert registry.get("LP-HTA").name == "LP-HTA"

    def test_lookup_is_case_insensitive(self):
        assert registry.get("lp-hta").name == LP_HTA
        assert registry.get("ALLTOC").name == ALL_TO_CLOUD
        assert registry.get(" hgos ").name == HGOS_NAME

    def test_aliases_resolve(self):
        assert registry.get("cloud").name == ALL_TO_CLOUD
        assert registry.get("workload").name == DTA_WORKLOAD
        assert registry.get("number").name == DTA_NUMBER

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown algorithm") as err:
            registry.get("SGD")
        for name in registry.names():
            assert name in str(err.value)

    def test_duplicate_registration_rejected(self):
        existing = registry.get(LP_HTA)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(existing)


class TestFlags:
    def test_figure_competitor_set(self):
        assert registry.names(holistic=True, in_figures=True) == (
            LP_HTA,
            HGOS_NAME,
            ALL_TO_CLOUD,
            ALL_OFFLOAD,
        )

    def test_divisible_set(self):
        assert registry.names(divisible=True) == (DTA_WORKLOAD, DTA_NUMBER)

    def test_exact_set(self):
        assert registry.names(exact=True) == (BNB_EXACT,)

    def test_assignable_filter(self):
        assignable = registry.names(assignable=True)
        assert LP_HTA in assignable
        assert DTA_WORKLOAD not in assignable

    def test_lp_hta_is_not_a_baseline(self):
        assert not registry.get(LP_HTA).baseline
        assert registry.get(HGOS_NAME).baseline


class TestEndToEnd:
    """Every registered algorithm runs on a tiny scenario with finite metrics."""

    @pytest.mark.parametrize("name", registry.names(holistic=True))
    def test_holistic_algorithms_produce_finite_metrics(self, name, tiny_scenario):
        result = registry.run(name, tiny_scenario, RunContext())
        assert isinstance(result, AlgorithmResult)
        assert result.name == name
        assert math.isfinite(result.total_energy_j)
        assert result.total_energy_j > 0
        assert math.isfinite(result.mean_latency_s)
        assert 0.0 <= result.unsatisfied_rate <= 1.0
        assert math.isfinite(result.processing_time_s)
        assert 0 <= result.involved_devices <= len(tiny_scenario.system.devices)

    @pytest.mark.parametrize("name", registry.names(divisible=True))
    def test_divisible_algorithms_produce_finite_metrics(
        self, name, tiny_divisible_scenario
    ):
        result = registry.run(name, tiny_divisible_scenario, RunContext())
        assert result.name == name
        assert math.isfinite(result.total_energy_j)
        assert result.total_energy_j > 0
        assert result.involved_devices >= 1

    @pytest.mark.parametrize("name", registry.names(divisible=True))
    def test_divisible_algorithms_reject_holistic_scenarios(
        self, name, tiny_scenario
    ):
        with pytest.raises(ValueError, match="divisible"):
            registry.run(name, tiny_scenario)

    def test_resolve_assignment_returns_assignment(self, tiny_scenario):
        assignment = registry.resolve_assignment(
            LP_HTA, tiny_scenario.system, list(tiny_scenario.tasks)
        )
        assert isinstance(assignment, Assignment)
        assert assignment.costs.num_tasks == len(tiny_scenario.tasks)

    def test_resolve_assignment_rejects_evaluation_only(self, tiny_scenario):
        with pytest.raises(ValueError, match="does not produce"):
            registry.resolve_assignment(
                DTA_WORKLOAD, tiny_scenario.system, list(tiny_scenario.tasks)
            )

    def test_exact_is_no_worse_than_lp_hta(self, tiny_scenario):
        tasks = list(tiny_scenario.tasks)
        exact = registry.resolve_assignment(
            BNB_EXACT, tiny_scenario.system, tasks
        )
        approx = registry.resolve_assignment(LP_HTA, tiny_scenario.system, tasks)
        assert exact.total_energy_j() <= approx.total_energy_j() + 1e-9

    def test_random_uses_context_seed(self, tiny_scenario):
        tasks = list(tiny_scenario.tasks)
        a = registry.resolve_assignment(
            "Random", tiny_scenario.system, tasks, RunContext(seed=1)
        )
        b = registry.resolve_assignment(
            "Random", tiny_scenario.system, tasks, RunContext(seed=1)
        )
        c = registry.resolve_assignment(
            "Random", tiny_scenario.system, tasks, RunContext(seed=2)
        )
        assert a.decisions == b.decisions
        assert a.decisions != c.decisions

    def test_reference_context_is_bit_identical(self, tiny_scenario):
        for name in registry.names(holistic=True, in_figures=True):
            optimized = registry.run(name, tiny_scenario, RunContext())
            reference = registry.run(
                name, tiny_scenario, RunContext(reference=True)
            )
            assert optimized == reference
