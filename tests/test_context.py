"""RunContext: activation stack, shims, LP cache and telemetry plumbing."""

import pickle

import pytest

from repro.context import RunContext, Telemetry, current_context, use_context
from repro.core.costs import cluster_costs, costs_config
from repro.lp import backends
from repro.lp.problem import LinearProgram
from repro.perf import perf_config, reference_mode
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS


def _tiny_lp() -> LinearProgram:
    # min -x0 - x1 subject to x0 + x1 <= 1, 0 <= x <= 1
    return LinearProgram(
        c=[-1.0, -1.0],
        a_ub=[[1.0, 1.0]],
        b_ub=[1.0],
        upper_bounds=[1.0, 1.0],
    )


class TestActivation:
    def test_default_context_is_optimized(self):
        context = current_context()
        assert not context.reference
        assert context.vectorized_costs
        assert context.cached_costs

    def test_use_context_nests_and_restores(self):
        outer = current_context()
        with use_context(RunContext(reference=True)) as ctx:
            assert current_context() is ctx
            with use_context(RunContext(seed=7)) as inner:
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is outer

    def test_replace_shares_telemetry_sink(self):
        context = RunContext()
        derived = context.replace(reference=True)
        assert derived.reference
        assert derived.telemetry is context.telemetry

    def test_contexts_compare_ignoring_telemetry(self):
        a, b = RunContext(), RunContext()
        a.telemetry.record_solve(wall_time_s=1.0, iterations=3)
        assert a == b


class TestShims:
    def test_perf_config_routes_through_context(self):
        assert not reference_mode()
        with perf_config(reference=True):
            assert reference_mode()
            assert current_context().reference
        assert not reference_mode()

    def test_costs_config_routes_through_context(self):
        with costs_config(vectorized=False, cached=False):
            context = current_context()
            assert not context.vectorized_costs
            assert not context.cached_costs

    def test_costs_config_controls_cost_pipeline(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=10), seed=0
        )
        with use_context(RunContext(cached_costs=True)):
            first = cluster_costs(scenario.system, scenario.tasks)
            second = cluster_costs(scenario.system, scenario.tasks)
        assert first is second
        with use_context(RunContext(cached_costs=False)):
            third = cluster_costs(scenario.system, scenario.tasks)
            fourth = cluster_costs(scenario.system, scenario.tasks)
        assert third is not fourth


class TestLPCache:
    def test_cache_on_by_default_and_zero_disables(self):
        assert RunContext().lp_cache is not None
        assert RunContext(lp_cache_capacity=0).lp_cache is None

    def test_reference_mode_bypasses_cache(self):
        context = RunContext(reference=True, lp_cache_capacity=8)
        with use_context(context):
            first = backends.solve(_tiny_lp(), "interior-point")
            second = backends.solve(_tiny_lp(), "interior-point")
        assert second is not first  # each call solved afresh
        assert context.telemetry.cache_hits == 0
        assert context.telemetry.cache_misses == 0

    def test_cache_created_lazily_and_memoised(self):
        context = RunContext(lp_cache_capacity=4)
        cache = context.lp_cache
        assert cache is not None
        assert context.lp_cache is cache
        assert cache.capacity == 4

    def test_cache_used_by_solver(self):
        context = RunContext(lp_cache_capacity=8)
        with use_context(context):
            first = backends.solve(_tiny_lp(), "interior-point")
            second = backends.solve(_tiny_lp(), "interior-point")
        assert second is first  # bit-identical problem → stored result
        assert context.telemetry.cache_hits == 1
        assert context.telemetry.cache_misses == 1

    def test_cache_covers_lp_hta_structured_path(self):
        from repro.core.hta import lp_hta

        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=30), seed=0
        )
        cached = RunContext(lp_cache_capacity=64)
        with use_context(cached):
            first = lp_hta(scenario.system, list(scenario.tasks))
            second = lp_hta(scenario.system, list(scenario.tasks))
        # Every P2 of the second run is bit-identical to the first's.
        assert cached.telemetry.cache_hits > 0
        assert cached.telemetry.cache_misses == cached.telemetry.cache_hits
        assert (
            second.assignment.stats().total_energy_j
            == first.assignment.stats().total_energy_j
        )
        # And the cache never changes the answer vs. an uncached run.
        plain = lp_hta(scenario.system, list(scenario.tasks))
        assert (
            plain.assignment.stats().total_energy_j
            == first.assignment.stats().total_energy_j
        )

    def test_warm_start_disabled_by_context(self):
        context = RunContext(lp_warm_start=False)
        with use_context(context):
            first = backends.solve(_tiny_lp(), "interior-point")
            backends.solve(
                _tiny_lp(), "interior-point", warm_start=first.warm_start
            )
        assert context.telemetry.warm_start_reuses == 0


class TestTelemetry:
    def test_record_and_summary(self):
        telemetry = Telemetry()
        telemetry.record_solve(wall_time_s=0.25, iterations=10)
        telemetry.record_solve(
            wall_time_s=0.05, iterations=4, warm_start=True
        )
        telemetry.record_cache(True)
        telemetry.record_cache(False)
        assert telemetry.solves == 2
        assert telemetry.lp_iterations == 14
        assert telemetry.warm_start_reuses == 1
        summary = telemetry.summary()
        assert "LP solves          2" in summary
        assert "1/2 hits" in summary

    def test_merge_is_additive(self):
        a, b = Telemetry(), Telemetry()
        a.record_solve(wall_time_s=1.0, iterations=5)
        b.record_solve(wall_time_s=2.0, iterations=7)
        b.record_cache(True)
        a.merge(b)
        assert a.solves == 2
        assert a.solve_wall_s == pytest.approx(3.0)
        assert a.lp_iterations == 12
        assert a.cache_hits == 1

    def test_pickle_roundtrip(self):
        telemetry = Telemetry()
        telemetry.record_solve(wall_time_s=0.5, iterations=2)
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone.as_dict() == telemetry.as_dict()

    def test_solves_recorded_by_backend(self):
        context = RunContext()
        with use_context(context):
            backends.solve(_tiny_lp(), "interior-point")
        assert context.telemetry.solves == 1
        assert context.telemetry.solve_wall_s > 0.0
        assert context.telemetry.lp_iterations > 0
