"""Property-based tests of the LP substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LinearProgram, LPStatus, solve
from repro.lp.structured import GroupedBoundedLP, solve_structured


@st.composite
def bounded_feasible_lp(draw):
    """An LP with a known interior feasible point (so never infeasible)."""
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    c = rng.normal(size=n)
    a_ub = rng.normal(size=(m, n))
    x0 = rng.uniform(0.2, 0.8, size=n)
    b_ub = a_ub @ x0 + rng.uniform(0.05, 1.0, size=m)
    return LinearProgram(c, a_ub=a_ub, b_ub=b_ub, upper_bounds=np.full(n, 1.5))


@st.composite
def grouped_lp(draw):
    """A P2-shaped LP with coverable groups."""
    groups = draw(st.integers(min_value=1, max_value=6))
    n = groups * 3
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    c = rng.uniform(0.1, 10.0, size=n)
    gidx = np.repeat(np.arange(groups), 3)
    k = draw(st.integers(min_value=0, max_value=3))
    coupling = np.zeros((k, n))
    for row in range(k):
        mask = rng.uniform(size=n) < 0.4
        coupling[row, mask] = rng.uniform(0.5, 2.0, size=int(mask.sum()))
    b = coupling @ np.full(n, 1 / 3) + rng.uniform(0.05, 0.5, size=k)
    return GroupedBoundedLP(
        c, gidx, np.ones(groups),
        coupling if k else None, b if k else None,
        upper=np.ones(n),
    )


class TestGeneralSolvers:
    @settings(max_examples=40, deadline=None)
    @given(bounded_feasible_lp())
    def test_simplex_matches_scipy(self, lp):
        ours = solve(lp, "simplex")
        ref = solve(lp, "scipy")
        assert ours.status is LPStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
        assert lp.is_feasible(ours.x, tol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(bounded_feasible_lp())
    def test_ipm_matches_scipy(self, lp):
        ours = solve(lp, "interior-point")
        ref = solve(lp, "scipy")
        assert ours.status is LPStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=5e-5)
        assert lp.is_feasible(ours.x, tol=1e-4)

    @settings(max_examples=40, deadline=None)
    @given(bounded_feasible_lp())
    def test_standard_form_preserves_feasible_objectives(self, lp):
        standard = lp.to_standard_form()
        result = solve(lp, "simplex")
        # The optimal x extends to a standard-form point with equal cost.
        x = result.x
        slack_ub = lp.b_ub - lp.a_ub @ x
        finite = np.isfinite(lp.upper_bounds)
        slack_bounds = lp.upper_bounds[finite] - x[finite]
        full = np.concatenate([x, slack_ub, slack_bounds])
        assert np.allclose(standard.a @ full, standard.b, atol=1e-7)
        assert standard.c @ full == pytest.approx(result.objective, abs=1e-7)


class TestStructuredSolver:
    @settings(max_examples=40, deadline=None)
    @given(grouped_lp())
    def test_matches_scipy(self, lp):
        from scipy.optimize import linprog

        ours = solve_structured(lp)
        n = lp.num_vars
        a_eq = np.zeros((lp.num_groups, n))
        for i, g in enumerate(lp.group_index):
            a_eq[g, i] = 1.0
        ref = linprog(
            lp.c,
            A_ub=lp.coupling_a if lp.num_coupling else None,
            b_ub=lp.coupling_b if lp.num_coupling else None,
            A_eq=a_eq, b_eq=lp.group_rhs,
            bounds=[(0.0, u if np.isfinite(u) else None) for u in lp.upper],
            method="highs",
        )
        if ref.status == 0:
            assert ours.status is LPStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=5e-5)
            assert lp.is_feasible(ours.x, tol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(grouped_lp())
    def test_solution_is_group_distribution(self, lp):
        result = solve_structured(lp)
        if result.status is LPStatus.OPTIMAL:
            sums = lp.group_sums(result.x)
            assert np.allclose(sums, lp.group_rhs, atol=1e-5)
