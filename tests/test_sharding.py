"""Sharded topology views and the sharded LP-HTA solver."""

import math

import pytest

from repro.context import RunContext, use_context
from repro.core.assignment import Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.core.lagrangian import CoordinatorOptions
from repro.core.sharded import lp_hta_sharded
from repro.registry import LP_HTA, run as registry_run
from repro.system.sharding import ShardSpec, ShardedSystem
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_devices=12, num_stations=4, num_tasks=60
        ),
        seed=3,
    )


@pytest.fixture(scope="module")
def monolithic(scenario):
    return lp_hta(scenario.system, list(scenario.tasks))


class TestShardSpec:
    def test_balanced_near_even(self):
        spec = ShardSpec.balanced(range(10), 3)
        assert spec.shards == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))
        assert spec.num_shards == 3
        assert spec.station_ids == tuple(range(10))

    def test_balanced_clamps_to_station_count(self):
        assert ShardSpec.balanced(range(3), 8).num_shards == 3
        assert ShardSpec.balanced(range(3), 0).num_shards == 1

    def test_balanced_empty_rejected(self):
        with pytest.raises(ValueError, match="empty station set"):
            ShardSpec.balanced((), 2)

    def test_sorts_within_shard(self):
        assert ShardSpec(((2, 0, 1),)).shards == ((0, 1, 2),)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="appears in shards"):
            ShardSpec(((0, 1), (1, 2)))

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="is empty"):
            ShardSpec(((0,), ()))

    def test_duplicate_within_shard_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            ShardSpec(((0, 0),))

    def test_shard_of(self):
        spec = ShardSpec(((0, 1), (2, 3)))
        assert spec.shard_of(1) == 0
        assert spec.shard_of(3) == 1
        with pytest.raises(KeyError):
            spec.shard_of(9)


class TestShardedSystem:
    def test_spec_must_cover_stations(self, scenario):
        with pytest.raises(ValueError, match="cover exactly"):
            ShardedSystem(scenario.system, ShardSpec(((0, 1),)))
        with pytest.raises(ValueError, match="cover exactly"):
            ShardedSystem(scenario.system, ShardSpec(((0, 1, 2, 3, 4),)))

    def test_views_partition_tasks(self, scenario):
        spec = ShardSpec.balanced(range(4), 2)
        views = ShardedSystem(scenario.system, spec).views(
            list(scenario.tasks)
        )
        rows = sorted(row for view in views for row in view.task_rows)
        assert rows == list(range(len(scenario.tasks)))
        for view in views:
            for row in view.task_rows:
                owner = scenario.tasks[row].owner_device_id
                station = scenario.system.cluster_of(owner)
                assert station in view.manifest.core_stations

    def test_halo_devices_cover_external_sources(self, scenario):
        spec = ShardSpec.balanced(range(4), 4)
        views = ShardedSystem(scenario.system, spec).views(
            list(scenario.tasks)
        )
        for view in views:
            members = set(view.system.devices)
            for row in view.task_rows:
                source = scenario.tasks[row].external_source
                if source is not None:
                    assert source in members
            core = set(view.manifest.core_devices)
            assert set(view.manifest.halo_devices) == members - core

    def test_halo_stations_carry_cross_shard_caps(self, scenario):
        spec = ShardSpec.balanced(range(4), 4)
        views = ShardedSystem(scenario.system, spec).views(
            list(scenario.tasks)
        )
        for view in views:
            capped = dict(view.manifest.cross_shard_station_caps)
            assert sorted(capped) == list(view.manifest.halo_stations)
            for station_id, cap in capped.items():
                assert cap == scenario.system.station(station_id).max_resource

    def test_manifests_include_every_shard(self, scenario):
        spec = ShardSpec.balanced(range(4), 4)
        manifests = ShardedSystem(scenario.system, spec).manifests()
        assert [m.shard_id for m in manifests] == [0, 1, 2, 3]
        devices = sorted(d for m in manifests for d in m.core_devices)
        assert devices == sorted(scenario.system.devices)


class TestDifferentialUncapped:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    @pytest.mark.parametrize("lp_batch", [True, False])
    def test_bit_identical_to_monolithic(
        self, scenario, monolithic, num_shards, lp_batch
    ):
        context = RunContext(lp_batch=lp_batch)
        with use_context(context):
            report = lp_hta_sharded(
                scenario.system,
                list(scenario.tasks),
                spec=ShardSpec.balanced(range(4), num_shards),
            )
        assert report.assignment.decisions == monolithic.assignment.decisions
        assert report.clusters == monolithic.clusters
        assert (
            report.assignment.total_energy_j()
            == monolithic.assignment.total_energy_j()
        )
        assert report.num_shards == num_shards
        assert report.outer_iterations == 0
        assert report.best_dual_j == pytest.approx(monolithic.lp_objective_j)

    def test_context_routes_registry_through_shards(self, scenario, monolithic):
        with use_context(RunContext(shards=2)):
            sharded = registry_run(LP_HTA, scenario)
        with use_context(RunContext()):
            mono = registry_run(LP_HTA, scenario)
        assert sharded.total_energy_j == mono.total_energy_j
        assert sharded.unsatisfied_rate == mono.unsatisfied_rate

    def test_telemetry_counts_shard_solves(self, scenario):
        context = RunContext(shards=3)
        with use_context(context):
            lp_hta_sharded(scenario.system, list(scenario.tasks))
        assert context.telemetry.shard_solves == 3
        assert "shard solves" in context.telemetry.summary()


class TestCoordinatedCapped:
    @pytest.fixture(scope="class")
    def loaded_scenario(self):
        # Enough tasks that the monolithic solve pushes real work (~122
        # resource units) to the cloud; a budget of 60 then binds.
        return generate_scenario(
            PAPER_DEFAULTS.with_updates(
                num_devices=12, num_stations=4, num_tasks=300
            ),
            seed=3,
        )

    @pytest.fixture(scope="class")
    def capped(self, loaded_scenario):
        context = RunContext()
        with use_context(context):
            report = lp_hta_sharded(
                loaded_scenario.system,
                list(loaded_scenario.tasks),
                spec=ShardSpec.balanced(range(4), 2),
                cloud_capacity=60.0,
            )
        return report, context

    def test_budget_respected(self, capped):
        report, _ = capped
        assert report.cloud_load <= 60.0 + 1e-9

    def test_outer_loop_ran(self, capped):
        report, context = capped
        assert report.outer_iterations >= 1
        assert len(report.dual_history) == report.outer_iterations
        assert context.telemetry.coordinator_iterations == report.outer_iterations

    def test_dual_is_a_lower_bound_without_cancellations(self, capped):
        report, _ = capped
        counts = report.assignment.subsystem_counts()
        if counts[Subsystem.CANCELLED] == 0:
            assert report.duality_gap_j >= -1e-6
        assert math.isfinite(report.best_dual_j)

    def test_deterministic(self, capped, loaded_scenario):
        report, _ = capped
        with use_context(RunContext()):
            again = lp_hta_sharded(
                loaded_scenario.system,
                list(loaded_scenario.tasks),
                spec=ShardSpec.balanced(range(4), 2),
                cloud_capacity=60.0,
            )
        assert again.assignment.decisions == report.assignment.decisions
        assert again.dual_history == report.dual_history

    def test_uncapped_cloud_load_exceeds_budget(self, loaded_scenario):
        # The budget genuinely binds: without it the cloud takes more.
        with use_context(RunContext()):
            free = lp_hta_sharded(
                loaded_scenario.system,
                list(loaded_scenario.tasks),
                spec=ShardSpec.balanced(range(4), 2),
            )
        assert free.cloud_load > 60.0

    def test_coordinator_requires_finite_capacity(self, loaded_scenario):
        from repro.core.lagrangian import coordinate_shared_capacity

        with pytest.raises(ValueError, match="finite"):
            coordinate_shared_capacity(
                lambda nu: (0.0, 0.0, (0, 0.0), None), float("inf")
            )

    def test_coordinator_options_validated(self):
        with pytest.raises(ValueError):
            CoordinatorOptions(iterations=0)
        with pytest.raises(ValueError):
            CoordinatorOptions(initial_step=0.0)
        with pytest.raises(ValueError):
            CoordinatorOptions(tolerance=-1.0)


class TestCloudLoadAccounting:
    def test_cloud_load_matches_decisions(self, scenario):
        with use_context(RunContext()):
            report = lp_hta_sharded(
                scenario.system,
                list(scenario.tasks),
                spec=ShardSpec.balanced(range(4), 2),
            )
        costs = cluster_costs(scenario.system, list(scenario.tasks))
        expected = sum(
            float(costs.resource[row])
            for row, decision in enumerate(report.assignment.decisions)
            if decision is Subsystem.CLOUD
        )
        assert report.cloud_load == pytest.approx(expected)
