"""Property-based tests of the data-division algorithms (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.data.ownership import OwnershipMap
from repro.dta.coverage import dta_number, dta_workload, exact_min_max_coverage


@st.composite
def coverable_instance(draw):
    """A universe plus an ownership map that jointly covers it."""
    num_items = draw(st.integers(min_value=1, max_value=24))
    num_devices = draw(st.integers(min_value=1, max_value=8))
    holdings = {d: set() for d in range(num_devices)}
    for item in range(num_items):
        owners = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_devices - 1),
                min_size=1, max_size=num_devices, unique=True,
            )
        )
        for owner in owners:
            holdings[owner].add(item)
    universe = frozenset(range(num_items))
    return universe, OwnershipMap(holdings)


def _check_definition(coverage, universe, ownership):
    """Definitions 1/2 conditions (1) and (2)."""
    assert coverage.violations(ownership) == []
    union = frozenset()
    for device_id, items in coverage.sets.items():
        assert items <= ownership.items_of(device_id)
        assert not (union & items)  # disjoint
        union |= items
    assert union == universe


class TestGreedyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(coverable_instance())
    def test_workload_coverage_is_valid(self, instance):
        universe, ownership = instance
        _check_definition(dta_workload(universe, ownership), universe, ownership)

    @settings(max_examples=60, deadline=None)
    @given(coverable_instance())
    def test_number_coverage_is_valid(self, instance):
        universe, ownership = instance
        _check_definition(dta_number(universe, ownership), universe, ownership)

    @settings(max_examples=60, deadline=None)
    @given(coverable_instance())
    def test_number_never_uses_more_devices(self, instance):
        universe, ownership = instance
        workload = dta_workload(universe, ownership)
        number = dta_number(universe, ownership)
        assert number.involved_devices <= workload.involved_devices

    @settings(max_examples=40, deadline=None)
    @given(coverable_instance())
    def test_exact_min_max_lower_bounds_greedy(self, instance):
        universe, ownership = instance
        exact = exact_min_max_coverage(universe, ownership)
        greedy = dta_workload(universe, ownership)
        _check_definition(exact, universe, ownership)
        assert exact.max_set_size() <= greedy.max_set_size()

    @settings(max_examples=40, deadline=None)
    @given(coverable_instance())
    def test_set_cover_lower_bound(self, instance):
        """No coverage can use fewer devices than ceil(M / largest UD)."""
        universe, ownership = instance
        if not universe:
            return
        number = dta_number(universe, ownership)
        largest = max(
            len(ownership.items_of(d) & universe) for d in ownership.device_ids
        )
        assert number.involved_devices >= -(-len(universe) // largest)


class TestSubmodularity:
    """Theorem 3: f(X) = max_{A in X} |A| is submodular on 2^D."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
            max_size=5,
        ),
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
            max_size=3,
        ),
        st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
    )
    def test_diminishing_returns(self, base, extra, new_set):
        def f(family):
            return max((len(a) for a in family), default=0)

        x = list(base)
        y = list(base) + list(extra)  # X ⊆ Y
        gain_x = f(x + [new_set]) - f(x)
        gain_y = f(y + [new_set]) - f(y)
        assert gain_x >= gain_y

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
            max_size=5,
        ),
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), max_size=6),
            max_size=3,
        ),
    )
    def test_monotonicity(self, base, extra):
        def f(family):
            return max((len(a) for a in family), default=0)

        assert f(list(base)) <= f(list(base) + list(extra))
