"""Dynamic voltage/frequency scaling extension."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.hta import lp_hta
from repro.dvfs import optimal_frequency, rescale_assignment
from repro.units import gigahertz
from repro.workload import PAPER_DEFAULTS, generate_scenario


class TestOptimalFrequency:
    def test_closed_form(self):
        # 1e9 cycles in 2 s needs 0.5 GHz.
        assert optimal_frequency(1e9, 2.0) == pytest.approx(0.5e9)

    def test_clipped_to_minimum(self):
        # A trivial task would run at 1 Hz; the band floor applies.
        assert optimal_frequency(1.0, 100.0) == pytest.approx(gigahertz(0.3))

    def test_infeasible_returns_none(self):
        # 1e10 cycles in 1 s needs 10 GHz > f_max.
        assert optimal_frequency(1e10, 1.0) is None

    def test_zero_budget_infeasible(self):
        assert optimal_frequency(1e9, 0.0) is None

    def test_zero_cycles_runs_at_floor(self):
        assert optimal_frequency(0.0, 1.0) == pytest.approx(gigahertz(0.3))

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_frequency(-1.0, 1.0)
        with pytest.raises(ValueError):
            optimal_frequency(1.0, 1.0, f_min_hz=2e9, f_max_hz=1e9)


@pytest.fixture(scope="module")
def schedule():
    scenario = generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=80, num_devices=16, num_stations=2),
        seed=8,
    )
    report = lp_hta(scenario.system, list(scenario.tasks))
    return scenario, report.assignment


class TestRescaleAssignment:
    def test_energy_never_increases(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        assert result.scaled_energy_j <= result.nominal_energy_j + 1e-9
        assert result.saving_j >= -1e-9

    def test_savings_are_real_under_loose_deadlines(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        local_rows = [
            c for c in result.choices if c is not None
        ]
        if local_rows:  # devices run some tasks in this scenario
            assert result.saving_fraction > 0.0
            assert any(c.chosen_hz < c.nominal_hz for c in local_rows)

    def test_deadlines_still_met(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        for choice in result.choices:
            if choice is not None:
                assert choice.latency_s <= choice.task.deadline_s + 1e-9

    def test_offloaded_tasks_untouched(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        for row, choice in enumerate(result.choices):
            if assignment.decisions[row] is not Subsystem.DEVICE:
                assert choice is None

    def test_frequencies_within_band(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        for choice in result.choices:
            if choice is not None:
                assert gigahertz(0.3) - 1e-6 <= choice.chosen_hz
                assert choice.chosen_hz <= choice.nominal_hz + 1e-6

    def test_row_mismatch_rejected(self, schedule):
        scenario, assignment = schedule
        with pytest.raises(ValueError):
            rescale_assignment(scenario.system, [], assignment)

    def test_scaled_total_decomposes(self, schedule):
        scenario, assignment = schedule
        result = rescale_assignment(scenario.system, list(scenario.tasks), assignment)
        explicit = 0.0
        for row, choice in enumerate(result.choices):
            if choice is not None:
                explicit += choice.scaled_energy_j
            elif assignment.decisions[row] is not Subsystem.CANCELLED:
                explicit += assignment.task_energy_j(row)
        assert result.scaled_energy_j == pytest.approx(explicit)
