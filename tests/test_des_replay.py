"""Event-driven replay versus the analytic cost model."""

import pytest

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.des.replay import replay_assignment
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _assert_matches_analytic(system, tasks, assignment):
    metrics = replay_assignment(system, tasks, assignment, contention=False)
    for row, decision in enumerate(assignment.decisions):
        if decision is Subsystem.CANCELLED:
            assert metrics.latencies_s[row] is None
            continue
        analytic = assignment.costs.time_s[row, decision.column]
        assert metrics.latencies_s[row] == pytest.approx(analytic, abs=1e-9)
    return metrics


class TestDedicatedReplayMatchesFormulas:
    @pytest.mark.parametrize("subsystem", [Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD])
    def test_each_subsystem(self, two_cluster_system, shared_task_cross_cluster, subsystem):
        costs = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        assignment = Assignment(costs, [subsystem])
        _assert_matches_analytic(
            two_cluster_system, [shared_task_cross_cluster], assignment
        )

    def test_local_task_all_subsystems(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        for subsystem in (Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD):
            _assert_matches_analytic(
                two_cluster_system, [local_task], Assignment(costs, [subsystem])
            )

    def test_whole_lp_hta_schedule(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        metrics = _assert_matches_analytic(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        assert metrics.mean_queueing_delay_s == 0.0
        assert metrics.events_processed > 0

    def test_energy_equals_analytic(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        metrics = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        assert metrics.total_energy_j == pytest.approx(
            report.assignment.total_energy_j()
        )


class TestContention:
    def test_contention_never_speeds_things_up(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        dedicated = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment,
            contention=False,
        )
        contended = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment,
            contention=True,
        )
        assert contended.makespan_s >= dedicated.makespan_s - 1e-9
        for slow, fast in zip(contended.latencies_s, dedicated.latencies_s):
            if slow is not None:
                assert slow >= fast - 1e-9

    def test_queueing_appears_under_load(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=60, num_devices=6, num_stations=1),
            seed=0,
        )
        report = lp_hta(scenario.system, list(scenario.tasks))
        contended = replay_assignment(
            scenario.system, list(scenario.tasks), report.assignment, contention=True
        )
        assert contended.mean_queueing_delay_s > 0.0


class TestValidation:
    def test_row_mismatch_rejected(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        with pytest.raises(ValueError, match="correspond"):
            replay_assignment(two_cluster_system, [], assignment)


class TestReplayAlgorithm:
    """The registry-resolved plan-then-replay entry point."""

    def test_matches_manual_pipeline(self, small_scenario):
        from repro.des.replay import replay_algorithm

        tasks = list(small_scenario.tasks)
        assignment, metrics = replay_algorithm(
            small_scenario.system, tasks, "LP-HTA"
        )
        report = lp_hta(small_scenario.system, tasks)
        assert assignment.decisions == report.assignment.decisions
        manual = replay_assignment(
            small_scenario.system, tasks, report.assignment
        )
        assert metrics == manual

    def test_aliases_and_unknown_names(self, small_scenario):
        from repro.des.replay import replay_algorithm

        tasks = list(small_scenario.tasks)
        _, metrics = replay_algorithm(small_scenario.system, tasks, "cloud")
        assert metrics.total_energy_j > 0
        with pytest.raises(ValueError, match="unknown algorithm"):
            replay_algorithm(small_scenario.system, tasks, "SGD")
