"""The observability subsystem: metrics, spans, tracer, exporters.

Three contracts pinned here:

- **Merge fidelity** — metrics and span logs ride the Telemetry
  reset/merge/pickle protocol, so a spawn-started parallel sweep reports
  exactly the same histograms and span content as the sequential run of
  the same cells (the cross-process differential tests).
- **Disabled cost** — tracing is off by default and the disabled path is
  a shared no-op: no spans recorded, no per-call allocation.
- **Export determinism** — everything in a trace except ``ts``/``dur``
  is a pure function of the workload, so canonical traces diff clean
  across start methods.
"""

import json
import math
import multiprocessing
import pickle

import pytest

from repro.context import RunContext, Telemetry, use_context
from repro.experiments.parallel import SweepCell, holistic_spec, run_cells
from repro.obs.export import (
    CANONICAL_STAGES,
    canonical_trace,
    chrome_trace,
    jsonl_lines,
    stage_breakdown,
    stage_report,
)
from repro.obs.metrics import Histogram, Metrics, bounds_for
from repro.obs.spans import SpanLog, SpanRecord
from repro.obs.tracer import NOOP_SPAN, record_span, span, stage, staged, traced
from repro.registry import LP_HTA
from repro.workload.profiles import PAPER_DEFAULTS

_PROFILE = PAPER_DEFAULTS.with_updates(num_tasks=8)


def _spawn_available() -> bool:
    return "spawn" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Histogram / Metrics / SpanLog units


class TestHistogram:
    def test_observe_and_quantiles(self):
        h = Histogram("stage.solve_s")
        for value in (0.001, 0.002, 0.004, 0.1):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(0.107)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        assert h.min <= h.quantile(0.5) <= h.max
        # Quantiles are clamped to the observed range, not bucket edges.
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_empty_quantile_is_nan(self):
        h = Histogram("stage.solve_s")
        assert math.isnan(h.quantile(0.5))

    def test_merge_adds_bucketwise(self):
        a = Histogram("stage.solve_s")
        b = Histogram("stage.solve_s")
        a.observe(0.001)
        b.observe(0.5)
        b.observe(2.0)
        merged = a.merged(b)
        assert merged.count == 3
        assert merged.sum == pytest.approx(2.501)
        assert merged.counts == [
            x + y for x, y in zip(a.counts, b.counts)
        ]
        assert merged.min == a.min and merged.max == b.max

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("stage.solve_s")
        b = Histogram("lp.iterations")
        with pytest.raises(ValueError):
            a.merged(b)

    def test_bounds_for_is_stable_per_name(self):
        # Merge-compatibility across processes relies on this.
        assert bounds_for("stage.solve_s") == bounds_for("stage.solve_s")
        assert bounds_for("lp.iterations") != bounds_for("stage.solve_s")
        assert bounds_for("unknown") == bounds_for("other_unknown")


class TestMetrics:
    def test_counters_and_histograms_merge(self):
        a = Metrics()
        b = Metrics()
        a.incr("des.events", 10)
        b.incr("des.events", 5)
        b.incr("only.b")
        a.observe("stage.solve_s", 0.01)
        b.observe("stage.solve_s", 0.02)
        b.observe("stage.build_s", 0.001)
        merged = a + b
        assert merged.counter("des.events") == 15
        assert merged.counter("only.b") == 1
        assert merged.histogram("stage.solve_s").count == 2
        assert merged.histogram("stage.build_s").count == 1
        # Inputs are untouched (merge copies).
        assert a.counter("des.events") == 10
        assert a.histogram("stage.build_s") is None

    def test_as_dict_round_trips_to_json(self):
        m = Metrics()
        m.incr("c", 2)
        m.observe("stage.solve_s", 0.01)
        assert json.loads(json.dumps(m.as_dict())) == m.as_dict()


class TestSpanLog:
    def _record(self, name, track=0, depth=0):
        return SpanRecord(
            name=name, start_s=1.0, duration_s=0.5, depth=depth, track=track
        )

    def test_merge_remaps_tracks(self):
        a = SpanLog()
        a.append(self._record("a"))
        b = SpanLog()
        b.append(self._record("b"))
        b.append(self._record("c", depth=1))
        merged = a + b
        assert [r.name for r in merged] == ["a", "b", "c"]
        assert [r.track for r in merged] == [0, 1, 1]
        assert merged.tracks == 2

    def test_merging_empty_log_keeps_tracks(self):
        a = SpanLog()
        a.append(self._record("a"))
        merged = a + SpanLog()
        assert merged.tracks == a.tracks and len(merged) == 1

    def test_content_excludes_wall_clock(self):
        log = SpanLog()
        log.append(self._record("a"))
        other = SpanLog()
        other.append(
            SpanRecord(name="a", start_s=9.0, duration_s=7.0, depth=0, track=0)
        )
        assert log.content() == other.content()
        assert log != other  # full equality still sees the timings


# ---------------------------------------------------------------------------
# Tracer


class TestTracerDisabled:
    def test_span_returns_shared_noop(self):
        with use_context(RunContext()):
            assert span("x") is NOOP_SPAN
            assert span("y", attr=1) is NOOP_SPAN

    def test_no_spans_recorded(self):
        context = RunContext()
        with use_context(context):
            with span("outer"):
                with stage("solve"):
                    pass
            record_span("late", 0.0, 1.0)
        assert len(context.telemetry.spans) == 0
        # The stage histogram is always on, even without tracing.
        assert context.telemetry.metrics.histogram("stage.solve_s").count == 1

    def test_disabled_overhead_is_small(self):
        # Differential guard for the fast path: 100k disabled span() calls
        # must stay far from the per-call cost of real work (generous bound
        # so CI machines under load stay green).
        import time

        with use_context(RunContext()):
            start = time.perf_counter()
            for _ in range(100_000):
                with span("hot"):
                    pass
            elapsed = time.perf_counter() - start
        assert elapsed < 2.0


class TestTracerEnabled:
    def test_nesting_depth_and_attrs(self):
        context = RunContext(trace=True)
        with use_context(context):
            with span("outer", kind="a"):
                with span("inner"):
                    pass
                with stage("solve", backend="structured"):
                    pass
        spans = list(context.telemetry.spans)
        # Spans record on exit: children close before their parent.
        assert [s.name for s in spans] == ["inner", "solve", "outer"]
        assert [s.depth for s in spans] == [1, 1, 0]
        assert spans[2].attrs == (("kind", "a"),)
        assert spans[1].attrs == (("backend", "structured"),)
        assert context.telemetry.metrics.histogram("stage.solve_s").count == 1

    def test_staged_and_traced_decorators(self):
        @staged("dta")
        def staged_fn():
            return 41

        @traced("lp.simplex")
        def traced_fn():
            return 42

        context = RunContext(trace=True)
        with use_context(context):
            assert staged_fn() == 41
            assert traced_fn() == 42
        assert [s.name for s in context.telemetry.spans] == [
            "dta", "lp.simplex",
        ]
        assert context.telemetry.metrics.histogram("stage.dta_s").count == 1

        disabled = RunContext()
        with use_context(disabled):
            assert staged_fn() == 41
            assert traced_fn() == 42
        assert len(disabled.telemetry.spans) == 0
        assert disabled.telemetry.metrics.histogram("stage.dta_s").count == 1

    def test_record_span_uses_current_depth(self):
        context = RunContext(trace=True)
        with use_context(context):
            with span("outer"):
                record_span("epoch", 0.0, 0.25, epoch=3)
        epoch = context.telemetry.spans.records[0]
        assert epoch.name == "epoch"
        assert epoch.depth == 1
        assert epoch.attrs == (("epoch", 3),)


# ---------------------------------------------------------------------------
# Telemetry integration


class TestTelemetryIntegration:
    def test_record_solve_feeds_stage_and_iterations(self):
        t = Telemetry()
        t.record_solve(wall_time_s=0.01, iterations=7)
        t.record_solve(wall_time_s=0.001, iterations=0, cache_hit=True)
        assert t.metrics.histogram("stage.solve_s").count == 2
        # Cache hits don't pollute the iteration distribution.
        assert t.metrics.histogram("lp.iterations").count == 1
        assert t.metrics.histogram("lp.iterations").max == 7

    def test_merge_carries_metrics_and_spans(self):
        a = Telemetry()
        b = Telemetry()
        a.record_solve(wall_time_s=0.01, iterations=3)
        b.record_solve(wall_time_s=0.02, iterations=5)
        b.metrics.incr("des.events", 9)
        b.spans.append(
            SpanRecord(name="x", start_s=0.0, duration_s=1.0, depth=0, track=0)
        )
        a.merge(b)
        assert a.solves == 2
        assert a.metrics.histogram("stage.solve_s").count == 2
        assert a.metrics.counter("des.events") == 9
        assert len(a.spans) == 1 and a.spans.records[0].track == 1

    def test_telemetry_pickle_preserves_metrics(self):
        t = Telemetry()
        t.record_solve(wall_time_s=0.01, iterations=3)
        t.spans.append(
            SpanRecord(name="x", start_s=0.0, duration_s=1.0, depth=0, track=0)
        )
        clone = pickle.loads(pickle.dumps(t))
        assert clone.metrics == t.metrics
        assert clone.spans == t.spans

    def test_context_pickle_resets_metrics_and_spans(self):
        context = RunContext(trace=True)
        context.telemetry.record_solve(wall_time_s=0.01, iterations=3)
        context.telemetry.spans.append(
            SpanRecord(name="x", start_s=0.0, duration_s=1.0, depth=0, track=0)
        )
        clone = pickle.loads(pickle.dumps(context))
        assert clone.trace is True  # the flag survives; the sink resets
        assert clone.telemetry.metrics.histogram("stage.solve_s") is None
        assert len(clone.telemetry.spans) == 0

    def test_summary_zero_solves(self):
        assert Telemetry().summary() == "no LP solves recorded"

    def test_summary_with_solves_keeps_counters(self):
        t = Telemetry()
        t.record_solve(wall_time_s=0.5, iterations=12)
        assert "LP solves" in t.summary()
        assert "no LP solves" not in t.summary()


# ---------------------------------------------------------------------------
# Cross-process differential


class TestCrossProcessMerge:
    """Parallel sweeps report the same metrics/spans as sequential ones."""

    def _cells(self):
        # Distinct seeds per cell: within one in-process sequential run the
        # cells share the ambient context (and so its LP cache), while each
        # worker cell runs under its own unpickled context.  Distinct seeds
        # keep every cell's solve sequence cache-cold, so both execution
        # modes do identical work.
        return [
            SweepCell(
                index=i,
                profile=_PROFILE,
                seed=i,
                evaluators=(holistic_spec(LP_HTA),),
            )
            for i in range(3)
        ]

    def _run(self, jobs, start_method=None):
        context = RunContext(trace=True)
        with use_context(context):
            results = run_cells(
                self._cells(), jobs=jobs, start_method=start_method
            )
        return context.telemetry, results

    @staticmethod
    def _assert_metrics_equivalent(a, b):
        """Everything deterministic about two metrics bags matches.

        Timing histograms record wall-clock values, so their bucket
        placement and min/max legitimately vary run to run; what the merge
        protocol guarantees is that no observation is lost or invented
        (equal counts per histogram) and that value-deterministic
        histograms (LP iteration counts) match bucket for bucket.
        """
        assert a.counters == b.counters
        assert set(a.histograms) == set(b.histograms)
        for name in a.histograms:
            assert a.histogram(name).count == b.histogram(name).count, name
        assert a.histogram("lp.iterations") == b.histogram("lp.iterations")

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_equals_sequential(self, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        sequential, seq_results = self._run(jobs=1)
        parallel, par_results = self._run(jobs=2, start_method=start_method)
        assert seq_results == par_results
        self._assert_metrics_equivalent(parallel.metrics, sequential.metrics)
        assert len(parallel.spans) == len(sequential.spans)
        # Span content matches modulo track ids (sequential records on one
        # track, workers on one track per cell).
        strip = lambda content: [key[1:] for key in content]  # noqa: E731
        assert strip(parallel.spans.content()) == strip(
            sequential.spans.content()
        )

    def test_fork_and_spawn_traces_identical(self):
        if not _spawn_available():
            pytest.skip("spawn unavailable on this platform")
        fork, _ = self._run(jobs=2, start_method="fork")
        spawn, _ = self._run(jobs=2, start_method="spawn")
        assert canonical_trace(chrome_trace(fork)) == canonical_trace(
            chrome_trace(spawn)
        )
        self._assert_metrics_equivalent(fork.metrics, spawn.metrics)


# ---------------------------------------------------------------------------
# Exporters


def _traced_telemetry():
    context = RunContext(trace=True)
    with use_context(context):
        with span("outer", kind="demo"):
            with stage("solve", backend="structured"):
                pass
        context.telemetry.record_solve(wall_time_s=0.01, iterations=4)
        context.telemetry.metrics.incr("des.events", 3)
    return context.telemetry


class TestExport:
    def test_chrome_trace_structure(self):
        trace = chrome_trace(_traced_telemetry())
        events = trace["traceEvents"]
        phases = [event["ph"] for event in events]
        assert phases.count("M") == 2  # process_name + one track
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in complete] == ["solve", "outer"]
        # Timestamps are re-based per track: the first span of a track
        # starts at its track's origin.
        assert min(event["ts"] for event in complete) >= 0.0
        assert all(event["dur"] >= 0.0 for event in complete)
        assert complete[0]["args"] == {"backend": "structured"}

    def test_canonical_trace_strips_wall_clock_only(self):
        trace = chrome_trace(_traced_telemetry())
        canon = canonical_trace(trace)
        for event in canon["traceEvents"]:
            assert "ts" not in event and "dur" not in event
        # Everything else survives.
        assert [e["name"] for e in canon["traceEvents"]] == [
            e["name"] for e in trace["traceEvents"]
        ]

    def test_jsonl_lines_parse(self):
        lines = list(jsonl_lines(_traced_telemetry()))
        parsed = [json.loads(line) for line in lines]
        types = {entry["type"] for entry in parsed}
        assert types == {"span", "counter", "histogram", "telemetry"}
        assert parsed[-1]["type"] == "telemetry"
        assert parsed[-1]["counters"]["solves"] == 1

    def test_stage_report_lists_canonical_stages(self):
        report = stage_report(_traced_telemetry())
        for stage_name in CANONICAL_STAGES:
            assert f"\n{stage_name:<10}" in "\n" + report
        assert "lp.iterations" in report

    def test_stage_breakdown_only_observed_stages(self):
        breakdown = stage_breakdown(_traced_telemetry())
        assert set(breakdown) == {"solve"}
        assert breakdown["solve"]["count"] == 2  # stage() + record_solve
        assert breakdown["solve"]["total_s"] >= 0.0
        assert breakdown["solve"]["p50_ms"] <= breakdown["solve"]["p99_ms"]


# ---------------------------------------------------------------------------
# CLI


class TestCLI:
    def test_report_prints_stage_table(self, capsys):
        from repro.cli import main

        assert main(["report", "--figure", "fig2b", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        for stage_name in CANONICAL_STAGES:
            assert stage_name in out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_figure_trace_and_log_json(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        from repro.cli import main

        # scripts/ is not a package; load the validator by path.
        spec = importlib.util.spec_from_file_location(
            "validate_trace",
            Path(__file__).parent.parent / "scripts" / "validate_trace.py",
        )
        validate_trace = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(validate_trace)
        validate = validate_trace.validate

        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "log.jsonl"
        assert (
            main(
                [
                    "figure", "fig2b", "--seeds", "0",
                    "--trace", str(trace_path),
                    "--log-json", str(log_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        assert validate(trace) == []
        assert any(
            event["ph"] == "X" and event["name"] == "solve"
            for event in trace["traceEvents"]
        )
        for line in log_path.read_text().splitlines():
            json.loads(line)
