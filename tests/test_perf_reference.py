"""The seed-reference paths behind ``perf_config`` must match the
optimised defaults bit for bit — they exist for differential testing and
honest benchmark baselines, not as a second implementation."""

import numpy as np

from repro import perf
from repro.core.baselines import hgos
from repro.core.costs import cluster_costs, costs_config
from repro.core.hta import lp_hta
from repro.experiments.runner import evaluate_holistic
from repro.perf import perf_config
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS

_PROFILE = PAPER_DEFAULTS.with_updates(num_tasks=20)


def _reference():
    return perf_config(reference=True)


def test_perf_config_restores_mode():
    assert not perf.reference_mode()
    with _reference():
        assert perf.reference_mode()
        with perf_config(reference=False):
            assert not perf.reference_mode()
        assert perf.reference_mode()
    assert not perf.reference_mode()


def test_generator_reference_matches_optimized():
    optimized = generate_scenario(_PROFILE, seed=5)
    with _reference():
        reference = generate_scenario(_PROFILE, seed=5)
    assert optimized.tasks == reference.tasks


def test_lp_hta_reference_matches_optimized():
    scenario = generate_scenario(_PROFILE, seed=2)
    optimized = lp_hta(scenario.system, scenario.tasks)
    with _reference(), costs_config(vectorized=False, cached=False):
        reference = lp_hta(scenario.system, scenario.tasks)
    assert optimized.assignment.decisions == reference.assignment.decisions
    assert optimized.assignment.stats() == reference.assignment.stats()


def test_hgos_reference_matches_optimized():
    scenario = generate_scenario(_PROFILE, seed=4)
    optimized = hgos(scenario.system, scenario.tasks)
    with _reference(), costs_config(vectorized=False, cached=False):
        reference = hgos(scenario.system, scenario.tasks)
    assert optimized.decisions == reference.decisions


def test_assignment_metrics_reference_matches_optimized():
    scenario = generate_scenario(_PROFILE, seed=1)
    optimized = evaluate_holistic(scenario, "LP-HTA")
    with _reference(), costs_config(vectorized=False, cached=False):
        reference = evaluate_holistic(scenario, "LP-HTA")
    # AlgorithmResult compares by exact float equality.
    assert optimized == reference


def test_cost_tables_reference_matches_optimized():
    scenario = generate_scenario(_PROFILE, seed=3)
    with costs_config(cached=False):
        optimized = cluster_costs(scenario.system, scenario.tasks)
    with _reference(), costs_config(vectorized=False, cached=False):
        reference = cluster_costs(scenario.system, scenario.tasks)
    np.testing.assert_array_equal(optimized.time_s, reference.time_s)
    np.testing.assert_array_equal(optimized.energy_j, reference.energy_j)
