"""LinearProgram representation and standard-form conversion."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, StandardFormLP


def _sample() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, -2.0, 0.5]),
        a_ub=np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 2.0]]),
        b_ub=np.array([4.0, 6.0]),
        a_eq=np.array([[1.0, 1.0, 1.0]]),
        b_eq=np.array([3.0]),
        upper_bounds=np.array([2.0, np.inf, 1.5]),
    )


class TestValidation:
    def test_paired_blocks(self):
        with pytest.raises(ValueError):
            LinearProgram(np.array([1.0]), a_ub=np.array([[1.0]]))
        with pytest.raises(ValueError):
            LinearProgram(np.array([1.0]), b_eq=np.array([1.0]))

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            LinearProgram(
                np.array([1.0, 2.0]),
                a_ub=np.array([[1.0]]), b_ub=np.array([1.0]),
            )
        with pytest.raises(ValueError):
            LinearProgram(np.array([1.0]), upper_bounds=np.array([1.0, 2.0]))

    def test_negative_upper_bound_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(np.array([1.0]), upper_bounds=np.array([-1.0]))


class TestFeasibility:
    def test_feasible_point(self):
        lp = _sample()
        x = np.array([1.0, 1.0, 1.0])
        assert lp.is_feasible(x)
        assert lp.objective(x) == pytest.approx(-0.5)

    def test_upper_bound_violation(self):
        lp = _sample()
        assert not lp.is_feasible(np.array([2.5, 0.0, 0.5]))

    def test_equality_violation(self):
        lp = _sample()
        assert not lp.is_feasible(np.array([0.5, 0.5, 0.5]))

    def test_residual_keys(self):
        residuals = _sample().residuals(np.zeros(3))
        assert set(residuals) == {"lower", "upper", "ub", "eq"}


class TestStandardForm:
    def test_dimensions(self):
        standard = _sample().to_standard_form()
        # 3 original + 2 ub slacks + 2 bound slacks (vars 0 and 2).
        assert standard.num_vars == 7
        # 2 ub rows + 2 bound rows + 1 eq row.
        assert standard.num_rows == 5
        assert standard.num_original == 3

    def test_solution_transfers(self):
        lp = _sample()
        standard = lp.to_standard_form()
        x = np.array([1.0, 1.0, 1.0])
        # Complete x with consistent slacks.
        slack_ub = lp.b_ub - lp.a_ub @ x
        slack_bounds = np.array([2.0 - 1.0, 1.5 - 1.0])
        full = np.concatenate([x, slack_ub, slack_bounds])
        assert np.allclose(standard.a @ full, standard.b)
        assert standard.extract_original(full) == pytest.approx(x)

    def test_objective_only_on_original_vars(self):
        standard = _sample().to_standard_form()
        assert np.all(standard.c[3:] == 0.0)

    def test_no_constraints(self):
        lp = LinearProgram(np.array([1.0, 2.0]))
        standard = lp.to_standard_form()
        assert standard.num_rows == 0
        assert standard.num_vars == 2

    def test_standard_form_validation(self):
        with pytest.raises(ValueError):
            StandardFormLP(
                c=np.zeros(2), a=np.zeros((1, 3)), b=np.zeros(1), num_original=1
            )
        with pytest.raises(ValueError):
            StandardFormLP(
                c=np.zeros(3), a=np.zeros((1, 3)), b=np.zeros(2), num_original=1
            )
        with pytest.raises(ValueError):
            StandardFormLP(
                c=np.zeros(3), a=np.zeros((1, 3)), b=np.zeros(1), num_original=9
            )
