"""The mecrepro command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "Wi-Fi" in out


def test_demo(capsys):
    assert main(["demo", "--tasks", "30", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "LP-HTA" in out
    assert "HGOS" in out
    assert "energy=" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_figure_requires_valid_id():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_figure_chart_flag(capsys):
    assert main(["figure", "fig2b", "--seeds", "0", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "fig2b" in out
    assert "o=LP-HTA" in out  # the ASCII chart legend


def test_online_command(capsys):
    assert main(["online", "--rate", "0.3", "--horizon", "120",
                 "--epoch", "60", "--policy", "hgos"]) == 0
    out = capsys.readouterr().out
    assert "hgos" in out
    assert "planned energy" in out


def test_online_mobile(capsys):
    assert main(["online", "--rate", "0.3", "--horizon", "120", "--mobile"]) == 0
    out = capsys.readouterr().out
    assert "handovers" in out


def test_ratio_study_command(capsys):
    assert main(["ratio-study", "--instances", "4"]) == 0
    out = capsys.readouterr().out
    assert "Theorem 2 violations" in out


def test_negative_jobs_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["figure", "fig2b", "--seeds", "0", "--jobs", "-3"])
    assert "jobs must be >= 0" in capsys.readouterr().err


def test_non_integer_jobs_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["figure", "fig2b", "--seeds", "0", "--jobs", "two"])
    assert "jobs must be an integer" in capsys.readouterr().err


def test_figure_stats_flag(capsys):
    assert main(["figure", "fig2b", "--seeds", "0", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "LP solves" in out
    assert "solve wall time" in out


def test_demo_stats_flag(capsys):
    assert main(["demo", "--tasks", "20", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "LP solves" in out


def test_online_stats_flag(capsys):
    assert main(["online", "--rate", "0.3", "--horizon", "60", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "LP solves" in out
