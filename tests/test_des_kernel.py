"""The discrete-event kernel."""

import pytest

from repro.des.kernel import EventSimulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_among_simultaneous(self):
        sim = EventSimulator()
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["first", "second", "third"]

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_schedule_at(self):
        sim = EventSimulator()
        hits = []
        sim.schedule_at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)


class TestRunControl:
    def test_run_until_leaves_later_events(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        final = sim.run(until=5.0)
        assert final == 5.0
        assert log == [1]
        assert sim.pending == 1
        sim.run()
        assert log == [1, 10]

    def test_step(self):
        sim = EventSimulator()
        log = []
        sim.schedule(1.0, lambda: log.append("x"))
        assert sim.step()
        assert log == ["x"]
        assert not sim.step()

    def test_counters(self):
        sim = EventSimulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4
        assert sim.pending == 0
