"""FIFO resources."""

import pytest

from repro.des.resources import FIFOResource


class TestSharedMode:
    def test_back_to_back_requests_queue(self):
        resource = FIFOResource("link", shared=True)
        assert resource.request(0.0, 2.0) == (0.0, 2.0)
        assert resource.request(1.0, 2.0) == (2.0, 4.0)  # queued behind the first
        assert resource.request(10.0, 1.0) == (10.0, 11.0)  # idle gap

    def test_waiting_times(self):
        resource = FIFOResource("link", shared=True)
        resource.request(0.0, 2.0)
        resource.request(1.0, 2.0)
        assert resource.waiting_times() == [0.0, 1.0]


class TestDedicatedMode:
    def test_no_queueing(self):
        resource = FIFOResource("link", shared=False)
        assert resource.request(0.0, 2.0) == (0.0, 2.0)
        assert resource.request(1.0, 2.0) == (1.0, 3.0)  # overlap allowed
        assert resource.waiting_times() == [0.0, 0.0]


class TestAccounting:
    def test_busy_time_and_counts(self):
        resource = FIFOResource("cpu")
        resource.request(0.0, 1.5)
        resource.request(0.0, 0.5)
        assert resource.busy_time == pytest.approx(2.0)
        assert resource.requests_served == 2

    def test_utilisation(self):
        resource = FIFOResource("cpu")
        resource.request(0.0, 5.0)
        assert resource.utilisation(10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            resource.utilisation(0.0)

    def test_negative_inputs_rejected(self):
        resource = FIFOResource("cpu")
        with pytest.raises(ValueError):
            resource.request(-1.0, 1.0)
        with pytest.raises(ValueError):
            resource.request(0.0, -1.0)
