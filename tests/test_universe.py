"""Generative models for shared-data universes."""

import numpy as np
import pytest

from repro.data.universe import random_overlap_universe, spatial_grid_universe


class TestRandomOverlap:
    def test_every_item_has_an_owner(self):
        catalog, ownership = random_overlap_universe(
            num_items=50, device_ids=list(range(10)),
            mean_size_bytes=1000.0, replication=2.5, seed=0,
        )
        assert len(catalog) == 50
        assert ownership.covers(catalog.item_ids)

    def test_mean_replication_near_target(self):
        catalog, ownership = random_overlap_universe(
            num_items=400, device_ids=list(range(30)),
            mean_size_bytes=1000.0, replication=4.0, seed=1,
        )
        reps = [ownership.replication_of(i) for i in catalog.item_ids]
        assert 3.0 < np.mean(reps) < 5.0

    def test_sizes_within_band(self):
        catalog, _ = random_overlap_universe(
            num_items=100, device_ids=[0, 1], mean_size_bytes=1000.0, seed=2
        )
        for item_id in catalog.item_ids:
            assert 500.0 <= catalog.size_of(item_id) <= 1500.0

    def test_deterministic_under_seed(self):
        a = random_overlap_universe(20, [0, 1, 2], 100.0, seed=5)
        b = random_overlap_universe(20, [0, 1, 2], 100.0, seed=5)
        assert a[1].items_of(0) == b[1].items_of(0)
        assert a[0].total_bytes(a[0].item_ids) == b[0].total_bytes(b[0].item_ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_overlap_universe(0, [0], 100.0)
        with pytest.raises(ValueError):
            random_overlap_universe(10, [], 100.0)
        with pytest.raises(ValueError):
            random_overlap_universe(10, [0], 100.0, replication=0.5)
        with pytest.raises(ValueError):
            random_overlap_universe(10, [0], -1.0)


class TestSpatialGrid:
    def test_nearby_devices_share_regions(self):
        positions = {0: (100.0, 100.0), 1: (150.0, 100.0), 2: (900.0, 900.0)}
        catalog, ownership = spatial_grid_universe(
            grid_side=10, device_positions=positions,
            area_side_m=1000.0, sensing_radius_m=200.0,
            mean_size_bytes=100.0, seed=0,
        )
        overlap = ownership.items_of(0) & ownership.items_of(1)
        assert overlap  # close together → overlapping regions
        assert not (ownership.items_of(0) & ownership.items_of(2))

    def test_unsensed_cells_dropped(self):
        positions = {0: (50.0, 50.0)}
        catalog, ownership = spatial_grid_universe(
            grid_side=10, device_positions=positions,
            area_side_m=1000.0, sensing_radius_m=100.0,
            mean_size_bytes=100.0,
        )
        # One corner device with a 100 m radius senses only a few cells.
        assert len(catalog) < 10
        assert ownership.covers(catalog.item_ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            spatial_grid_universe(0, {0: (0.0, 0.0)}, 100.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            spatial_grid_universe(5, {}, 100.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            spatial_grid_universe(5, {0: (0.0, 0.0)}, -1.0, 10.0, 1.0)
