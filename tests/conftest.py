"""Shared fixtures: hand-built systems and generated scenarios."""

from __future__ import annotations

import pytest

from repro.system.devices import BaseStation, MobileDevice
from repro.system.radio import FOUR_G, WIFI
from repro.system.topology import MECSystem
from repro.core.task import Task
from repro.units import KB, gigahertz
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS


@pytest.fixture
def two_cluster_system() -> MECSystem:
    """Four devices over two base stations; deterministic parameters."""
    devices = [
        MobileDevice(0, gigahertz(1.0), FOUR_G, max_resource=5.0),
        MobileDevice(1, gigahertz(1.5), WIFI, max_resource=5.0),
        MobileDevice(2, gigahertz(2.0), FOUR_G, max_resource=5.0),
        MobileDevice(3, gigahertz(1.2), WIFI, max_resource=5.0),
    ]
    stations = [BaseStation(0, max_resource=20.0), BaseStation(1, max_resource=20.0)]
    return MECSystem(devices, stations, {0: 0, 1: 0, 2: 1, 3: 1})


@pytest.fixture
def local_task() -> Task:
    """A task with no external data."""
    return Task(
        owner_device_id=0, index=0, local_bytes=1000 * KB,
        external_bytes=0.0, external_source=None,
        resource_demand=1.0, deadline_s=5.0,
    )


@pytest.fixture
def shared_task_same_cluster() -> Task:
    """External data held by a device in the same cluster."""
    return Task(
        owner_device_id=0, index=1, local_bytes=1000 * KB,
        external_bytes=500 * KB, external_source=1,
        resource_demand=1.5, deadline_s=5.0,
    )


@pytest.fixture
def shared_task_cross_cluster() -> Task:
    """External data held by a device in the other cluster."""
    return Task(
        owner_device_id=0, index=2, local_bytes=1000 * KB,
        external_bytes=500 * KB, external_source=2,
        resource_demand=1.5, deadline_s=5.0,
    )


@pytest.fixture
def small_scenario():
    """A small holistic scenario (fast to solve)."""
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(num_tasks=40, num_devices=8, num_stations=2),
        seed=0,
    )


@pytest.fixture
def divisible_scenario():
    """A small divisible scenario with catalog and ownership."""
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_tasks=30, num_devices=8, num_stations=2,
            divisible=True, num_data_items=60,
        ),
        seed=0,
    )
