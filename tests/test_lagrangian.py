"""The Lagrangian-relaxation HTA solver."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.hta import lp_hta
from repro.core.lagrangian import LagrangianOptions, lagrangian_hta
from repro.workload import PAPER_DEFAULTS, generate_scenario


@pytest.fixture(scope="module")
def scenario():
    # Loose deadlines: no hopeless tasks, so the dual bound is comparable
    # to the LP optimum of the same instance.
    return generate_scenario(
        PAPER_DEFAULTS.with_updates(
            num_tasks=120, num_devices=20, num_stations=2,
            deadline_range_s=(3.0, 10.0),
        ),
        seed=1,
    )


@pytest.fixture(scope="module")
def report(scenario):
    return lagrangian_hta(scenario.system, list(scenario.tasks))


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            LagrangianOptions(iterations=0)
        with pytest.raises(ValueError):
            LagrangianOptions(initial_step=0.0)
        with pytest.raises(ValueError):
            LagrangianOptions(repair_every=0)


class TestDualBound:
    def test_dual_lower_bounds_primal(self, report):
        assert report.best_dual_j <= report.primal_energy_j + 1e-6
        assert report.duality_gap_j >= -1e-6

    def test_dual_approaches_lp_bound(self, scenario, report):
        """The per-task subproblem has the integrality property, so the
        dual optimum equals the LP relaxation bound."""
        lp = lp_hta(scenario.system, list(scenario.tasks))
        assert report.best_dual_j <= lp.lp_objective_j * 1.001
        assert report.best_dual_j >= lp.lp_objective_j * 0.95

    def test_history_recorded(self, report):
        assert len(report.dual_history) > 0
        # best_dual sums each cluster's own best iteration, so it can only
        # exceed any single merged-history point.
        assert max(report.dual_history) <= report.best_dual_j + 1e-6


class TestPrimalRecovery:
    def test_feasible(self, scenario, report):
        assignment = report.assignment
        for device_id, load in assignment.device_loads().items():
            assert load <= scenario.system.device(device_id).max_resource + 1e-9
        for station_id in scenario.system.stations:
            load = sum(
                assignment.costs.resource[row]
                for row, decision in enumerate(assignment.decisions)
                if decision is Subsystem.STATION
                and scenario.system.cluster_of(
                    assignment.costs.tasks[row].owner_device_id
                ) == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    def test_deadlines_respected(self, report):
        assignment = report.assignment
        for row, decision in enumerate(assignment.decisions):
            if decision is not Subsystem.CANCELLED:
                assert (
                    assignment.costs.time_s[row, decision.column]
                    <= assignment.costs.deadline_s[row] + 1e-9
                )

    def test_competitive_with_lp_hta(self, scenario, report):
        """The recovered primal lands in LP-HTA's ballpark."""
        lp = lp_hta(scenario.system, list(scenario.tasks))
        lp_cancelled = lp.assignment.subsystem_counts()[Subsystem.CANCELLED]
        lag_cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if lp_cancelled == lag_cancelled == 0:
            assert report.primal_energy_j <= lp.assignment.total_energy_j() * 1.15

    def test_empty_task_list(self, scenario):
        result = lagrangian_hta(scenario.system, [])
        assert result.primal_energy_j == 0.0
        assert result.assignment.decisions == ()


class TestDeterminism:
    def test_repeatable(self, scenario, report):
        again = lagrangian_hta(scenario.system, list(scenario.tasks))
        assert again.assignment.decisions == report.assignment.decisions
        assert again.best_dual_j == pytest.approx(report.best_dual_j)


class TestGuardedRelativeGap:
    def test_degenerate_all_local_case_is_exact(self, scenario):
        # No tasks → zero primal, zero dual: the old primal/dual ratio
        # divided by zero; the guard reports the gap as exactly closed.
        report = lagrangian_hta(scenario.system, [])
        assert report.best_dual_j == 0.0
        assert report.relative_gap == 0.0

    def test_positive_gap_over_zero_bound_is_infinite(self):
        from repro.core.lagrangian import guarded_relative_gap

        assert guarded_relative_gap(5.0, 0.0) == float("inf")
        assert guarded_relative_gap(5.0, -1.0) == float("inf")

    def test_zero_gap_tolerance(self):
        from repro.core.lagrangian import guarded_relative_gap

        assert guarded_relative_gap(0.0, 0.0) == 0.0
        assert guarded_relative_gap(1e-15, 0.0) == 0.0

    def test_positive_bound_divides_normally(self):
        from repro.core.lagrangian import guarded_relative_gap

        assert guarded_relative_gap(1.0, 4.0) == 0.25
