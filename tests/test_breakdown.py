"""Energy breakdown reporting."""

import pytest

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.experiments.breakdown import energy_breakdown


class TestBreakdown:
    def test_components_sum_to_total(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        breakdown = energy_breakdown(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        assert breakdown.total_j == pytest.approx(
            breakdown.computation_j + breakdown.transmission_j
        )
        assert breakdown.total_j == pytest.approx(
            report.assignment.total_energy_j()
        )

    def test_subsystem_split_sums_to_total(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        breakdown = energy_breakdown(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        assert sum(breakdown.by_subsystem_j.values()) == pytest.approx(
            breakdown.total_j
        )

    def test_compute_energy_only_from_devices(
        self, two_cluster_system, local_task
    ):
        costs = cluster_costs(two_cluster_system, [local_task])
        cloud_only = Assignment(costs, [Subsystem.CLOUD])
        breakdown = energy_breakdown(two_cluster_system, [local_task], cloud_only)
        assert breakdown.computation_j == 0.0
        assert breakdown.transmission_j > 0.0
        assert breakdown.by_subsystem_j[Subsystem.CLOUD] == pytest.approx(
            breakdown.total_j
        )

    def test_local_task_on_device_is_pure_compute(
        self, two_cluster_system, local_task
    ):
        costs = cluster_costs(two_cluster_system, [local_task])
        device_only = Assignment(costs, [Subsystem.DEVICE])
        breakdown = energy_breakdown(two_cluster_system, [local_task], device_only)
        assert breakdown.transmission_j == 0.0
        assert breakdown.transmission_share == 0.0
        assert breakdown.computation_j > 0.0

    def test_cancelled_tasks_excluded(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        cancelled = Assignment(costs, [Subsystem.CANCELLED])
        breakdown = energy_breakdown(two_cluster_system, [local_task], cancelled)
        assert breakdown.total_j == 0.0
        assert breakdown.transmission_share == 0.0

    def test_format_table(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        breakdown = energy_breakdown(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        text = breakdown.format_table()
        assert "total energy" in text
        assert "transmission" in text
        assert "device" in text

    def test_row_mismatch_rejected(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        with pytest.raises(ValueError):
            energy_breakdown(small_scenario.system, [], report.assignment)
