"""The result-caching extension."""

import pytest

from repro.caching.cache import LFUCache, LRUCache
from repro.caching.evaluator import simulate_with_cache
from repro.caching.workload import QueryCatalog, zipf_query_stream
from repro.units import MB
from repro.workload import PAPER_DEFAULTS, generate_system


class TestLRUCache:
    def test_hit_and_miss(self):
        cache = LRUCache(100.0)
        assert cache.lookup("a") is None
        cache.insert("a", 10.0)
        assert cache.lookup("a") == 10.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order_is_recency(self):
        cache = LRUCache(20.0)
        cache.insert("a", 10.0)
        cache.insert("b", 10.0)
        cache.lookup("a")          # refresh a
        cache.insert("c", 10.0)    # evicts b (least recently used)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = LRUCache(5.0)
        assert not cache.insert("big", 10.0)
        assert "big" not in cache

    def test_reinsert_updates_size(self):
        cache = LRUCache(30.0)
        cache.insert("a", 10.0)
        cache.insert("a", 20.0)
        assert cache.used_bytes == pytest.approx(20.0)
        assert len(cache) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0.0)
        cache = LRUCache(10.0)
        with pytest.raises(ValueError):
            cache.insert("x", -1.0)


class TestLFUCache:
    def test_eviction_order_is_frequency(self):
        cache = LFUCache(20.0)
        cache.insert("a", 10.0)
        cache.insert("b", 10.0)
        cache.lookup("a")
        cache.lookup("a")
        cache.lookup("b")
        cache.insert("c", 10.0)  # evicts b (fewer hits than a)
        assert "a" in cache
        assert "b" not in cache

    def test_hit_rate(self):
        cache = LFUCache(100.0)
        cache.insert("a", 1.0)
        cache.lookup("a")
        cache.lookup("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_empty_cache_hit_rate_is_zero(self):
        assert LFUCache(10.0).stats.hit_rate == 0.0


@pytest.fixture(scope="module")
def system():
    return generate_system(
        PAPER_DEFAULTS.with_updates(num_devices=12, num_stations=3), seed=0
    )


@pytest.fixture(scope="module")
def catalog(system):
    return QueryCatalog.generate(system, PAPER_DEFAULTS, num_queries=30, seed=1)


class TestQueryWorkload:
    def test_catalog_size(self, catalog):
        assert len(catalog) == 30

    def test_instantiate_rehomes_owner(self, catalog):
        task = catalog.instantiate(0, owner_device_id=5, index=99)
        assert task.owner_device_id == 5
        assert task.index == 99
        assert task.operation == "query-0"

    def test_instantiate_when_owner_is_the_source(self, catalog):
        template = next(
            t for t in catalog.templates if t.external_source is not None
        )
        query_id = catalog.templates.index(template)
        task = catalog.instantiate(query_id, template.external_source, 0)
        assert not task.has_external_data
        assert task.input_bytes == pytest.approx(template.input_bytes)

    def test_zipf_stream_is_skewed(self, system, catalog):
        stream = zipf_query_stream(system, catalog, length=500, exponent=1.5, seed=2)
        counts = {}
        for query_id, _ in stream:
            counts[query_id] = counts.get(query_id, 0) + 1
        top = max(counts.values())
        assert top > len(stream) / len(catalog) * 3  # far above uniform

    def test_validation(self, system, catalog):
        with pytest.raises(ValueError):
            QueryCatalog(templates=())
        with pytest.raises(ValueError):
            QueryCatalog.generate(system, PAPER_DEFAULTS, 0)
        with pytest.raises(ValueError):
            zipf_query_stream(system, catalog, 0)
        with pytest.raises(ValueError):
            zipf_query_stream(system, catalog, 10, exponent=1.0)


class TestEvaluator:
    def test_cache_saves_energy_on_skewed_stream(self, system, catalog):
        stream = zipf_query_stream(system, catalog, length=300, exponent=1.4, seed=3)
        report = simulate_with_cache(system, stream, lambda: LRUCache(50 * MB))
        assert report.hit_rate > 0.3
        assert report.cached_energy_j < report.uncached_energy_j
        assert report.energy_saving_fraction > 0.2
        assert report.cached_mean_latency_s < report.uncached_mean_latency_s

    def test_tiny_cache_saves_little(self, system, catalog):
        stream = zipf_query_stream(system, catalog, length=300, exponent=1.4, seed=3)
        big = simulate_with_cache(system, stream, lambda: LRUCache(50 * MB))
        tiny = simulate_with_cache(system, stream, lambda: LRUCache(0.3 * MB))
        assert tiny.hit_rate <= big.hit_rate
        assert tiny.cached_energy_j >= big.cached_energy_j

    def test_uncached_cost_independent_of_cache(self, system, catalog):
        stream = zipf_query_stream(system, catalog, length=100, exponent=1.4, seed=4)
        a = simulate_with_cache(system, stream, lambda: LRUCache(1 * MB))
        b = simulate_with_cache(system, stream, lambda: LFUCache(90 * MB))
        assert a.uncached_energy_j == pytest.approx(b.uncached_energy_j)

    def test_per_station_rates_reported(self, system, catalog):
        stream = zipf_query_stream(system, catalog, length=200, exponent=1.4, seed=5)
        report = simulate_with_cache(system, stream, lambda: LRUCache(50 * MB))
        assert set(report.per_station_hit_rate) == set(system.stations)

    def test_empty_stream_rejected(self, system):
        with pytest.raises(ValueError):
            simulate_with_cache(system, [], lambda: LRUCache(1 * MB))
