"""LP-HTA edge cases and regression tests."""

import pytest

from repro.core.assignment import Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta, lp_hta_cluster
from repro.core.lp_builder import build_p2, build_p2_structured
from repro.core.task import Task
from repro.lp.backends import solve
from repro.lp.result import LPStatus
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario


def _big_tight_tasks(count: int):
    """Tasks too big for devices/stations whose cloud path misses the
    deadline — the configuration that makes P2 as written infeasible."""
    return [
        Task(
            owner_device_id=0, index=j, local_bytes=2000 * KB,
            external_bytes=0.0, external_source=None,
            resource_demand=10.0,       # device cap will not hold them all
            deadline_s=1.3,             # cloud's WAN floor makes l=3 tight
        )
        for j in range(count)
    ]


class TestInfeasibleP2Regression:
    """P2's deadline bounds can clash with the resource rows; LP-HTA must
    fall back to the relaxed build instead of crashing (found by the
    hypothesis suite)."""

    def test_relaxation_fallback_produces_feasible_result(self, two_cluster_system):
        tasks = _big_tight_tasks(4)
        costs = cluster_costs(two_cluster_system, tasks)
        # Confirm the strict build really is infeasible for this instance.
        strict = build_p2(costs, {0: 10.0}, station_cap=10.0)
        assert solve(strict.lp, "scipy").status is LPStatus.INFEASIBLE
        # LP-HTA must still return a feasible (possibly partial) schedule.
        decisions, report = lp_hta_cluster(costs, {0: 10.0}, station_cap=10.0)
        load = sum(
            costs.resource[r]
            for r, d in enumerate(decisions) if d is Subsystem.DEVICE
        )
        assert load <= 10.0 + 1e-9
        for r, d in enumerate(decisions):
            if d is not Subsystem.CANCELLED:
                assert costs.time_s[r, d.column] <= costs.deadline_s[r] + 1e-9

    def test_relaxed_builds_are_always_feasible(self, two_cluster_system):
        tasks = _big_tight_tasks(4)
        costs = cluster_costs(two_cluster_system, tasks)
        relaxed = build_p2(costs, {0: 10.0}, station_cap=10.0,
                           relax_deadline_bounds=True)
        assert solve(relaxed.lp, "scipy").status is LPStatus.OPTIMAL
        structured = build_p2_structured(
            costs, {0: 10.0}, station_cap=10.0, relax_deadline_bounds=True
        )
        from repro.lp.structured import solve_structured

        assert solve_structured(structured.lp).status is LPStatus.OPTIMAL


class TestDegenerateInstances:
    def test_single_task(self, two_cluster_system, local_task):
        report = lp_hta(two_cluster_system, [local_task])
        assert report.assignment.decisions[0] is not Subsystem.CANCELLED

    def test_no_tasks(self, two_cluster_system):
        report = lp_hta(two_cluster_system, [])
        assert report.assignment.decisions == ()
        assert report.assignment.total_energy_j() == 0.0
        assert report.clusters == ()

    def test_all_tasks_in_one_cluster(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=20, num_devices=5, num_stations=1),
            seed=0,
        )
        report = lp_hta(scenario.system, list(scenario.tasks))
        assert len(report.clusters) == 1
        assert report.clusters[0].num_tasks == 20

    def test_zero_size_task(self, two_cluster_system):
        empty = Task(
            owner_device_id=0, index=0, local_bytes=0.0,
            external_bytes=0.0, external_source=None,
            resource_demand=0.0, deadline_s=1.0,
        )
        report = lp_hta(two_cluster_system, [empty])
        assert report.assignment.decisions[0] is not Subsystem.CANCELLED
        assert report.assignment.total_energy_j() == pytest.approx(0.0)

    def test_identical_tasks_tie_breaking_deterministic(self, two_cluster_system):
        tasks = [
            Task(owner_device_id=0, index=j, local_bytes=500 * KB,
                 external_bytes=0.0, external_source=None,
                 resource_demand=1.0, deadline_s=5.0)
            for j in range(6)
        ]
        first = lp_hta(two_cluster_system, tasks)
        second = lp_hta(two_cluster_system, tasks)
        assert first.assignment.decisions == second.assignment.decisions


class TestReportArithmetic:
    def test_delta_matches_definition(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        for cluster in report.clusters:
            assert cluster.delta_j == pytest.approx(
                cluster.final_energy_j - cluster.rounded_energy_j
            )

    def test_empirical_ratio_bound_property(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        cancelled = report.assignment.subsystem_counts()[Subsystem.CANCELLED]
        if cancelled == 0 and report.lp_objective_j > 0:
            assert report.empirical_ratio_upper_bound >= 1.0 - 1e-6
