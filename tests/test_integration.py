"""Integration tests: figure shapes on reduced sweeps, examples as smoke tests."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.experiments.figures import (
    _divisible,  # noqa: F401 - used indirectly via figures
    fig3,
    fig5a,
    fig6a,
    fig6b,
)
from repro.experiments.runner import evaluate_dta, evaluate_holistic
from repro.units import KB
from repro.workload import PAPER_DEFAULTS, generate_scenario

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPaperShapes:
    """The qualitative claims of Section V, on small/fast configurations."""

    def test_energy_ordering_holds(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=200), seed=2
        )
        results = {
            name: evaluate_holistic(scenario, name).total_energy_j
            for name in ("LP-HTA", "HGOS", "AllToC", "AllOffload")
        }
        assert results["LP-HTA"] <= results["HGOS"] * 1.02
        assert results["HGOS"] < results["AllOffload"]
        assert results["AllOffload"] <= results["AllToC"]

    def test_unsatisfied_ordering_holds(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=300), seed=1
        )
        rates = {
            name: evaluate_holistic(scenario, name).unsatisfied_rate
            for name in ("LP-HTA", "HGOS", "AllOffload")
        }
        assert rates["LP-HTA"] <= rates["HGOS"]
        assert rates["LP-HTA"] <= rates["AllOffload"]

    def test_latency_ordering_holds(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=200), seed=3
        )
        latencies = {
            name: evaluate_holistic(scenario, name).mean_latency_s
            for name in ("LP-HTA", "HGOS", "AllToC", "AllOffload")
        }
        assert latencies["LP-HTA"] <= min(
            latencies["HGOS"] * 1.02, latencies["AllToC"], latencies["AllOffload"]
        )

    def test_dta_beats_holistic_on_divisible_work(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(
                num_tasks=150, divisible=True, num_data_items=300,
                item_replication=6.0,
            ),
            seed=0,
        )
        holistic = evaluate_holistic(scenario, "LP-HTA").total_energy_j
        workload = evaluate_dta(scenario, "workload").total_energy_j
        number = evaluate_dta(scenario, "number").total_energy_j
        assert workload < holistic
        assert number < holistic

    def test_dta_tradeoff(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(
                num_tasks=200, max_input_bytes=2000 * KB,
                divisible=True, num_data_items=400, item_replication=6.0,
            ),
            seed=0,
        )
        workload = evaluate_dta(scenario, "workload")
        number = evaluate_dta(scenario, "number")
        # Fig 6's two sides of the trade-off.
        assert workload.processing_time_s <= number.processing_time_s * 1.02
        assert number.involved_devices <= workload.involved_devices


class TestFigureProducersQuick:
    """One-seed, reduced confidence sanity runs of the sweep machinery."""

    def test_fig3_produces_full_series(self):
        data = fig3(seeds=(0,))
        assert len(data.x_values) == 8
        assert set(data.series) == {"LP-HTA", "HGOS", "AllOffload"}

    def test_fig5a_produces_full_series(self):
        data = fig5a(seeds=(0,))
        assert set(data.series) == {"LP-HTA", "DTA-Workload", "DTA-Number"}

    def test_fig6_producers(self):
        a = fig6a(seeds=(0,))
        b = fig6b(seeds=(0,))
        assert len(a.x_values) == 5
        assert len(b.x_values) == 5


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "traffic_monitoring.py",
        "object_tracking.py",
        "solver_tour.py",
        "custom_system.py",
    ],
)
def test_examples_run(script, capsys, monkeypatch):
    """Every shipped example executes end to end."""
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # they all narrate what they compute
