"""Failure injection: faulty resources and outage-aware replay."""

import pytest

from repro import registry
from repro.context import RunContext, use_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.des.replay import replay_algorithm, replay_assignment
from repro.des.resources import FaultyResource, normalise_windows


class TestFaultyResource:
    def test_no_outages_behaves_like_fifo(self):
        resource = FaultyResource("link", shared=False)
        assert resource.request(1.0, 2.0) == (1.0, 3.0)

    def test_request_defers_past_outage(self):
        resource = FaultyResource("link", shared=False, outages=((5.0, 8.0),))
        # Service 4..7 overlaps the window: restart at 8.
        assert resource.request(4.0, 3.0) == (8.0, 11.0)

    def test_request_before_outage_unaffected(self):
        resource = FaultyResource("link", shared=False, outages=((5.0, 8.0),))
        assert resource.request(1.0, 2.0) == (1.0, 3.0)

    def test_back_to_back_outages(self):
        resource = FaultyResource(
            "link", shared=False, outages=((2.0, 4.0), (4.5, 6.0))
        )
        # Restarting at 4 still collides with the second window.
        assert resource.request(1.0, 1.5) == (6.0, 7.5)

    def test_shared_mode_queues_after_outage(self):
        resource = FaultyResource("link", shared=True, outages=((0.0, 10.0),))
        first = resource.request(0.0, 1.0)
        second = resource.request(0.0, 1.0)
        assert first == (10.0, 11.0)
        assert second == (11.0, 12.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            FaultyResource("x", outages=((3.0, 3.0),))
        with pytest.raises(ValueError, match="empty"):
            FaultyResource("x", outages=((5.0, 3.0),))

    def test_overlapping_windows_are_merged(self):
        resource = FaultyResource("x", outages=((0.0, 5.0), (4.0, 6.0)))
        assert resource.outages == ((0.0, 6.0),)
        # Service through the merged window restarts at its end.
        assert resource.request(1.0, 2.0) == (6.0, 8.0)

    def test_unsorted_windows_are_sorted(self):
        resource = FaultyResource("x", outages=((7.0, 9.0), (1.0, 2.0)))
        assert resource.outages == ((1.0, 2.0), (7.0, 9.0))

    def test_adjacent_windows_are_coalesced(self):
        resource = FaultyResource("x", outages=((1.0, 3.0), (3.0, 5.0)))
        assert resource.outages == ((1.0, 5.0),)
        assert resource.request(2.0, 1.0) == (5.0, 6.0)


class TestNormaliseWindows:
    def test_empty(self):
        assert normalise_windows(()) == ()

    def test_sorts_merges_and_coalesces(self):
        windows = ((8.0, 10.0), (0.0, 2.0), (1.0, 4.0), (4.0, 5.0))
        assert normalise_windows(windows) == ((0.0, 5.0), (8.0, 10.0))

    def test_contained_window_is_absorbed(self):
        assert normalise_windows(((0.0, 10.0), (2.0, 3.0))) == ((0.0, 10.0),)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty"):
            normalise_windows(((2.0, 2.0),))


class TestOutageReplay:
    def test_backhaul_outage_delays_cross_cluster_tasks(
        self, two_cluster_system, shared_task_cross_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            backhaul_outages=((0.0, 2.0),),
        )
        assert faulty.latencies_s[0] > healthy.latencies_s[0]
        # Deferred past the 2 s window plus the normal transfer time.
        assert faulty.latencies_s[0] >= 2.0

    def test_same_cluster_tasks_unaffected_by_backhaul_outage(
        self, two_cluster_system, shared_task_same_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_same_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_same_cluster], assignment
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_same_cluster], assignment,
            backhaul_outages=((0.0, 100.0),),
        )
        assert faulty.latencies_s[0] == pytest.approx(healthy.latencies_s[0])

    def test_wan_outage_delays_cloud_tasks(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.CLOUD])
        healthy = replay_assignment(two_cluster_system, [local_task], assignment)
        faulty = replay_assignment(
            two_cluster_system, [local_task], assignment,
            wan_outages=((0.0, 5.0),),
        )
        assert faulty.latencies_s[0] > healthy.latencies_s[0] + 1.0

    def test_outages_never_speed_up_a_schedule(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        healthy = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        faulty = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment,
            backhaul_outages=((0.0, 1.0), (2.0, 3.0)),
            wan_outages=((0.5, 1.5),),
        )
        for slow, fast in zip(faulty.latencies_s, healthy.latencies_s):
            if slow is not None:
                assert slow >= fast - 1e-9
        assert faulty.makespan_s >= healthy.makespan_s - 1e-9


class TestStartTimes:
    def test_latency_measured_from_launch(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        at_zero = replay_assignment(two_cluster_system, [local_task], assignment)
        offset = replay_assignment(
            two_cluster_system, [local_task], assignment, start_times=[30.0]
        )
        assert offset.latencies_s[0] == pytest.approx(at_zero.latencies_s[0])
        assert offset.makespan_s == pytest.approx(at_zero.makespan_s + 30.0)

    def test_outage_before_launch_is_harmless(
        self, two_cluster_system, shared_task_cross_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            start_times=[10.0],
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            backhaul_outages=((0.0, 2.0),), start_times=[10.0],
        )
        assert faulty.latencies_s[0] == pytest.approx(healthy.latencies_s[0])

    def test_outage_at_launch_defers(
        self, two_cluster_system, shared_task_cross_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            start_times=[10.0],
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            backhaul_outages=((9.0, 13.0),), start_times=[10.0],
        )
        assert faulty.latencies_s[0] > healthy.latencies_s[0]

    def test_validation(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        with pytest.raises(ValueError, match="correspond"):
            replay_assignment(
                two_cluster_system, [local_task], assignment,
                start_times=[0.0, 1.0],
            )
        with pytest.raises(ValueError, match="non-negative"):
            replay_assignment(
                two_cluster_system, [local_task], assignment,
                start_times=[-1.0],
            )


#: Outage windows wide enough to intersect the small fixture tasks.
_OUTAGES = dict(backhaul_outages=((0.0, 1.5),), wan_outages=((0.5, 2.5),))


class TestFaultyReplayEveryAlgorithm:
    """Satellite: every registry algorithm replays under faulty resources."""

    @pytest.fixture
    def batch(
        self, local_task, shared_task_same_cluster, shared_task_cross_cluster
    ):
        return [local_task, shared_task_same_cluster, shared_task_cross_cluster]

    @pytest.mark.parametrize("name", registry.names(assignable=True))
    def test_replay_under_outages(self, name, two_cluster_system, batch):
        context = RunContext(seed=7)
        with use_context(context):
            assignment, metrics = replay_algorithm(
                two_cluster_system, batch, name, **_OUTAGES
            )
            healthy = replay_assignment(two_cluster_system, batch, assignment)
        assert len(metrics.latencies_s) == len(batch)
        for row, decision in enumerate(assignment.decisions):
            realized = metrics.latencies_s[row]
            if decision is Subsystem.CANCELLED:
                assert realized is None
            else:
                assert realized is not None
                # Outages only ever defer work.
                assert realized >= healthy.latencies_s[row] - 1e-9
        assert metrics.total_energy_j == pytest.approx(
            assignment.total_energy_j()
        )

    @pytest.mark.parametrize("name", registry.names(assignable=True))
    def test_realized_metrics_deterministic(self, name, two_cluster_system, batch):
        def run():
            context = RunContext(seed=11)
            with use_context(context):
                return replay_algorithm(
                    two_cluster_system, batch, name, **_OUTAGES
                )

        first_assignment, first = run()
        second_assignment, second = run()
        assert first_assignment.decisions == second_assignment.decisions
        assert first.latencies_s == second.latencies_s
        assert first.makespan_s == second.makespan_s
        assert first.total_energy_j == second.total_energy_j
