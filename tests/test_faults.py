"""Failure injection: faulty resources and outage-aware replay."""

import pytest

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.hta import lp_hta
from repro.des.replay import replay_assignment
from repro.des.resources import FaultyResource


class TestFaultyResource:
    def test_no_outages_behaves_like_fifo(self):
        resource = FaultyResource("link", shared=False)
        assert resource.request(1.0, 2.0) == (1.0, 3.0)

    def test_request_defers_past_outage(self):
        resource = FaultyResource("link", shared=False, outages=((5.0, 8.0),))
        # Service 4..7 overlaps the window: restart at 8.
        assert resource.request(4.0, 3.0) == (8.0, 11.0)

    def test_request_before_outage_unaffected(self):
        resource = FaultyResource("link", shared=False, outages=((5.0, 8.0),))
        assert resource.request(1.0, 2.0) == (1.0, 3.0)

    def test_back_to_back_outages(self):
        resource = FaultyResource(
            "link", shared=False, outages=((2.0, 4.0), (4.5, 6.0))
        )
        # Restarting at 4 still collides with the second window.
        assert resource.request(1.0, 1.5) == (6.0, 7.5)

    def test_shared_mode_queues_after_outage(self):
        resource = FaultyResource("link", shared=True, outages=((0.0, 10.0),))
        first = resource.request(0.0, 1.0)
        second = resource.request(0.0, 1.0)
        assert first == (10.0, 11.0)
        assert second == (11.0, 12.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            FaultyResource("x", outages=((3.0, 3.0),))
        with pytest.raises(ValueError, match="disjoint"):
            FaultyResource("x", outages=((0.0, 5.0), (4.0, 6.0)))


class TestOutageReplay:
    def test_backhaul_outage_delays_cross_cluster_tasks(
        self, two_cluster_system, shared_task_cross_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_cross_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_cross_cluster], assignment,
            backhaul_outages=((0.0, 2.0),),
        )
        assert faulty.latencies_s[0] > healthy.latencies_s[0]
        # Deferred past the 2 s window plus the normal transfer time.
        assert faulty.latencies_s[0] >= 2.0

    def test_same_cluster_tasks_unaffected_by_backhaul_outage(
        self, two_cluster_system, shared_task_same_cluster
    ):
        costs = cluster_costs(two_cluster_system, [shared_task_same_cluster])
        assignment = Assignment(costs, [Subsystem.DEVICE])
        healthy = replay_assignment(
            two_cluster_system, [shared_task_same_cluster], assignment
        )
        faulty = replay_assignment(
            two_cluster_system, [shared_task_same_cluster], assignment,
            backhaul_outages=((0.0, 100.0),),
        )
        assert faulty.latencies_s[0] == pytest.approx(healthy.latencies_s[0])

    def test_wan_outage_delays_cloud_tasks(self, two_cluster_system, local_task):
        costs = cluster_costs(two_cluster_system, [local_task])
        assignment = Assignment(costs, [Subsystem.CLOUD])
        healthy = replay_assignment(two_cluster_system, [local_task], assignment)
        faulty = replay_assignment(
            two_cluster_system, [local_task], assignment,
            wan_outages=((0.0, 5.0),),
        )
        assert faulty.latencies_s[0] > healthy.latencies_s[0] + 1.0

    def test_outages_never_speed_up_a_schedule(self, small_scenario):
        report = lp_hta(small_scenario.system, list(small_scenario.tasks))
        healthy = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment
        )
        faulty = replay_assignment(
            small_scenario.system, list(small_scenario.tasks), report.assignment,
            backhaul_outages=((0.0, 1.0), (2.0, 3.0)),
            wan_outages=((0.5, 1.5),),
        )
        for slow, fast in zip(faulty.latencies_s, healthy.latencies_s):
            if slow is not None:
                assert slow >= fast - 1e-9
        assert faulty.makespan_s >= healthy.makespan_s - 1e-9
