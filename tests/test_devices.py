"""Devices, base stations, the cloud."""

import pytest

from repro.system.devices import (
    DEFAULT_CLOUD_FREQUENCY_HZ,
    DEFAULT_STATION_FREQUENCY_HZ,
    BaseStation,
    Cloud,
    MobileDevice,
)
from repro.system.radio import FOUR_G
from repro.units import gigahertz


class TestPaperDefaults:
    def test_station_frequency_is_4ghz(self):
        assert DEFAULT_STATION_FREQUENCY_HZ == pytest.approx(4e9)
        assert BaseStation(0).cpu_frequency_hz == pytest.approx(4e9)

    def test_cloud_frequency_is_t2_nano(self):
        assert DEFAULT_CLOUD_FREQUENCY_HZ == pytest.approx(2.4e9)
        assert Cloud().cpu_frequency_hz == pytest.approx(2.4e9)


class TestMobileDevice:
    def test_basic_construction(self):
        device = MobileDevice(3, gigahertz(1.5), FOUR_G, max_resource=10.0)
        assert device.device_id == 3
        assert device.cpu_frequency_hz == pytest.approx(1.5e9)
        assert device.data_items == frozenset()

    def test_owns(self):
        device = MobileDevice(
            0, gigahertz(1.0), FOUR_G, max_resource=1.0, data_items=frozenset({1, 2})
        )
        assert device.owns(1)
        assert not device.owns(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MobileDevice(-1, gigahertz(1.0), FOUR_G, max_resource=1.0)
        with pytest.raises(ValueError):
            MobileDevice(0, 0.0, FOUR_G, max_resource=1.0)
        with pytest.raises(ValueError):
            MobileDevice(0, gigahertz(1.0), FOUR_G, max_resource=-1.0)


class TestBaseStation:
    def test_default_resource_is_unbounded(self):
        assert BaseStation(0).max_resource == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            BaseStation(-1)
        with pytest.raises(ValueError):
            BaseStation(0, cpu_frequency_hz=0.0)
        with pytest.raises(ValueError):
            BaseStation(0, max_resource=-1.0)


class TestCloud:
    def test_validation(self):
        with pytest.raises(ValueError):
            Cloud(cpu_frequency_hz=-1.0)
