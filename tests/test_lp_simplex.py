"""The two-phase simplex solver."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus
from repro.lp.simplex import SimplexOptions, solve_simplex


class TestTextbookProblems:
    def test_simple_maximisation(self):
        # max x + 2y s.t. x + y <= 4, x,y <= 3  -> (1, 3), objective -7.
        lp = LinearProgram(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([4.0]),
            upper_bounds=np.array([3.0, 3.0]),
        )
        result = solve_simplex(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-7.0)
        assert result.x == pytest.approx([1.0, 3.0])

    def test_equality_constrained(self):
        # min x + 3y s.t. x + y = 2, 0 <= x,y  -> (2, 0).
        lp = LinearProgram(
            c=np.array([1.0, 3.0]),
            a_eq=np.array([[1.0, 1.0]]), b_eq=np.array([2.0]),
        )
        result = solve_simplex(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)
        assert result.x == pytest.approx([2.0, 0.0])

    def test_degenerate_problem(self):
        # Multiple constraints active at the optimum; Bland's rule must not cycle.
        lp = LinearProgram(
            c=np.array([-0.75, 150.0, -0.02, 6.0]),
            a_ub=np.array(
                [
                    [0.25, -60.0, -0.04, 9.0],
                    [0.5, -90.0, -0.02, 3.0],
                    [0.0, 0.0, 1.0, 0.0],
                ]
            ),
            b_ub=np.array([0.0, 0.0, 1.0]),
        )
        result = solve_simplex(lp)
        # The classic Beale cycling example: optimum is -0.05.
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05)


class TestStatusDetection:
    def test_infeasible(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a_eq=np.array([[1.0]]), b_eq=np.array([5.0]),
            upper_bounds=np.array([1.0]),
        )
        assert solve_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=np.array([-1.0, 0.0]))
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_negative_rhs_handled(self):
        # -x <= -2 means x >= 2.
        lp = LinearProgram(
            c=np.array([1.0]),
            a_ub=np.array([[-1.0]]), b_ub=np.array([-2.0]),
        )
        result = solve_simplex(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)

    def test_redundant_equalities(self):
        # Duplicate equality rows leave an artificial stuck at zero.
        lp = LinearProgram(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 1.0], [1.0, 1.0]]), b_eq=np.array([2.0, 2.0]),
        )
        result = solve_simplex(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)

    def test_iteration_cap(self):
        lp = LinearProgram(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([4.0]),
            upper_bounds=np.array([3.0, 3.0]),
        )
        result = solve_simplex(lp, SimplexOptions(max_iterations=1))
        assert result.status in (LPStatus.ITERATION_LIMIT, LPStatus.OPTIMAL)


class TestAgainstScipy:
    def test_random_problems(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(2, 7))
            m = int(rng.integers(1, 4))
            c = rng.normal(size=n)
            a_ub = rng.normal(size=(m, n))
            x0 = rng.uniform(0.1, 1.0, size=n)
            b_ub = a_ub @ x0 + rng.uniform(0.05, 1.0, size=m)
            ub = np.full(n, 2.0)
            lp = LinearProgram(c, a_ub=a_ub, b_ub=b_ub, upper_bounds=ub)
            ours = solve_simplex(lp)
            ref = linprog(
                c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 2.0)] * n, method="highs"
            )
            assert ours.status is LPStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7)
            assert lp.is_feasible(ours.x, tol=1e-7)
