"""Property-based tests of the offloading game (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.assignment import Subsystem
from repro.core.game import best_response_offloading
from repro.workload import PAPER_DEFAULTS, generate_scenario


@st.composite
def game_case(draw):
    stations = draw(st.integers(min_value=1, max_value=3))
    profile = PAPER_DEFAULTS.with_updates(
        num_stations=stations,
        num_devices=stations * draw(st.integers(min_value=2, max_value=4)),
        num_tasks=draw(st.integers(min_value=5, max_value=30)),
        device_max_resource=draw(st.floats(min_value=1.0, max_value=10.0)),
        station_max_resource=draw(st.floats(min_value=2.0, max_value=40.0)),
    )
    return profile, draw(st.integers(min_value=0, max_value=5000))


class TestGameProperties:
    @settings(max_examples=20, deadline=None)
    @given(game_case())
    def test_equilibrium_is_unilaterally_stable(self, case):
        """No single player can lower its cost by deviating: re-running
        the dynamics from the equilibrium changes nothing."""
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        first = best_response_offloading(scenario.system, list(scenario.tasks))
        if not first.converged:
            return  # round cap hit: no equilibrium claim to check
        second = best_response_offloading(scenario.system, list(scenario.tasks))
        assert second.assignment.decisions == first.assignment.decisions

    @settings(max_examples=20, deadline=None)
    @given(game_case())
    def test_hard_constraints_always_hold(self, case):
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        result = best_response_offloading(scenario.system, list(scenario.tasks))
        assignment = result.assignment
        for device_id, load in assignment.device_loads().items():
            assert load <= scenario.system.device(device_id).max_resource + 1e-9
        for station_id in scenario.system.stations:
            load = sum(
                assignment.costs.resource[row]
                for row, decision in enumerate(assignment.decisions)
                if decision is Subsystem.STATION
                and scenario.system.cluster_of(
                    assignment.costs.tasks[row].owner_device_id
                ) == station_id
            )
            assert load <= scenario.system.station(station_id).max_resource + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(game_case())
    def test_cost_history_monotone(self, case):
        profile, seed = case
        scenario = generate_scenario(profile, seed=seed)
        result = best_response_offloading(scenario.system, list(scenario.tasks))
        history = result.total_cost_history
        for earlier, later in zip(history, history[1:]):
            assert later <= earlier + 1e-6
