"""Building the relaxation P2 from a cost table."""

import numpy as np
import pytest

from repro.core.costs import cluster_costs
from repro.core.lp_builder import (
    build_p2,
    build_p2_structured,
    reshape_solution,
)
from repro.core.task import Task
from repro.lp import solve
from repro.lp.structured import solve_structured
from repro.units import KB


def _tasks():
    return [
        Task(owner_device_id=0, index=0, local_bytes=500 * KB,
             external_bytes=0.0, external_source=None,
             resource_demand=1.0, deadline_s=5.0),
        Task(owner_device_id=0, index=1, local_bytes=900 * KB,
             external_bytes=300 * KB, external_source=1,
             resource_demand=2.0, deadline_s=5.0),
        Task(owner_device_id=1, index=0, local_bytes=700 * KB,
             external_bytes=0.0, external_source=None,
             resource_demand=1.0, deadline_s=0.005),  # doomed
    ]


@pytest.fixture
def costs(two_cluster_system):
    return cluster_costs(two_cluster_system, _tasks())


class TestGenericBuild:
    def test_dimensions(self, costs):
        build = build_p2(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        lp = build.lp
        assert lp.num_vars == 9  # 3 tasks × 3 subsystems
        assert lp.a_eq.shape == (3, 9)
        # 2 device rows + 1 station row.
        assert lp.a_ub.shape == (3, 9)

    def test_doomed_rows_detected(self, costs):
        build = build_p2(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        assert build.doomed_rows == (2,)
        # Doomed rows keep upper bounds of 1 so C4 stays satisfiable.
        assert np.all(build.lp.upper_bounds[6:9] == 1.0)

    def test_deadline_bounds(self, costs):
        build = build_p2(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        for row in (0, 1):
            for l in range(3):
                expected = min(1.0, costs.deadline_s[row] / costs.time_s[row, l])
                assert build.lp.upper_bounds[3 * row + l] == pytest.approx(expected)

    def test_infinite_caps_drop_rows(self, costs):
        build = build_p2(costs, {}, station_cap=float("inf"))
        assert build.lp.a_ub is None

    def test_solution_is_distribution(self, costs):
        build = build_p2(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        result = solve(build.lp, "scipy")
        x = reshape_solution(result.require_ok(), costs.num_tasks)
        assert np.allclose(x.sum(axis=1), 1.0, atol=1e-7)


class TestStructuredBuild:
    def test_matches_generic_optimum(self, costs):
        generic = build_p2(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        structured = build_p2_structured(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        assert structured.doomed_rows == generic.doomed_rows
        ref = solve(generic.lp, "scipy")
        ours = solve_structured(structured.lp)
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    def test_coupling_rows(self, costs):
        structured = build_p2_structured(costs, {0: 5.0, 1: 5.0}, station_cap=20.0)
        assert structured.lp.num_coupling == 3  # two devices + the station
        without_caps = build_p2_structured(costs, {}, station_cap=float("inf"))
        assert without_caps.lp.num_coupling == 0

    def test_group_structure(self, costs):
        structured = build_p2_structured(costs, {0: 5.0}, station_cap=20.0)
        assert structured.lp.num_groups == costs.num_tasks
        np.testing.assert_array_equal(
            structured.lp.group_index, np.repeat(np.arange(3), 3)
        )


class TestReshape:
    def test_reshape_matches_paper_indexing(self):
        xi = np.arange(6, dtype=float)
        x = reshape_solution(xi, 2)
        # X[i, j, l] = xi[3m(i-1) + 3(j-1) + l] with a flat (task, l) layout.
        assert x[0].tolist() == [0.0, 1.0, 2.0]
        assert x[1].tolist() == [3.0, 4.0, 5.0]

    def test_reshape_rejects_bad_length(self):
        with pytest.raises(ValueError):
            reshape_solution(np.zeros(5), 2)
