"""The dense Mehrotra predictor–corrector interior-point solver."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus
from repro.lp.interior_point import IPMOptions, solve_interior_point


class TestBasicProblems:
    def test_bounded_knapsack_relaxation(self):
        lp = LinearProgram(
            c=np.array([-3.0, -5.0, -2.0]),
            a_ub=np.array([[2.0, 4.0, 1.0]]), b_ub=np.array([5.0]),
            upper_bounds=np.ones(3),
        )
        result = solve_interior_point(lp)
        assert result.status is LPStatus.OPTIMAL
        # Take item 2 fully (best ratio 1.25), item 1 fully (1.5), fill with item 3.
        assert result.objective == pytest.approx(-8.0 - 2.0 * 0.0 - 0.0, abs=1e-5) or True
        # Check against scipy instead of hand-arithmetic:
        from scipy.optimize import linprog
        ref = linprog(lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, bounds=[(0, 1)] * 3,
                      method="highs")
        assert result.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_equality_constrained(self):
        lp = LinearProgram(
            c=np.array([1.0, 3.0]),
            a_eq=np.array([[1.0, 1.0]]), b_eq=np.array([2.0]),
            upper_bounds=np.array([5.0, 5.0]),
        )
        result = solve_interior_point(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0, abs=1e-6)

    def test_no_constraints_nonneg_costs(self):
        lp = LinearProgram(c=np.array([1.0, 0.0]))
        result = solve_interior_point(lp)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == 0.0

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(c=np.array([-1.0]))
        assert solve_interior_point(lp).status is LPStatus.UNBOUNDED


class TestRobustness:
    def test_iteration_limit_reported(self):
        lp = LinearProgram(
            c=np.array([1.0, 3.0]),
            a_eq=np.array([[1.0, 1.0]]), b_eq=np.array([2.0]),
        )
        result = solve_interior_point(lp, IPMOptions(max_iterations=1))
        assert result.status in (LPStatus.ITERATION_LIMIT, LPStatus.OPTIMAL)

    def test_interior_solution_is_feasible(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = 8
            c = rng.normal(size=n)
            a_eq = rng.normal(size=(3, n))
            b_eq = a_eq @ rng.uniform(0.2, 0.8, size=n)
            lp = LinearProgram(c, a_eq=a_eq, b_eq=b_eq, upper_bounds=np.ones(n))
            result = solve_interior_point(lp)
            if result.status is LPStatus.OPTIMAL:
                assert lp.is_feasible(result.x, tol=1e-5)

    def test_require_ok_raises_on_failure(self):
        lp = LinearProgram(c=np.array([-1.0]))
        result = solve_interior_point(lp)
        with pytest.raises(RuntimeError, match="unbounded"):
            result.require_ok()


class TestAgainstScipy:
    def test_random_inequality_problems(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(21)
        for _ in range(20):
            n = int(rng.integers(3, 9))
            m = int(rng.integers(1, 5))
            c = rng.normal(size=n)
            a_ub = rng.normal(size=(m, n))
            x0 = rng.uniform(0.1, 1.0, size=n)
            b_ub = a_ub @ x0 + rng.uniform(0.05, 1.0, size=m)
            lp = LinearProgram(c, a_ub=a_ub, b_ub=b_ub, upper_bounds=np.full(n, 2.0))
            ours = solve_interior_point(lp)
            ref = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 2.0)] * n,
                          method="highs")
            assert ours.status is LPStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=2e-5)
            assert lp.is_feasible(ours.x, tol=1e-5)
