"""Per-device data ownership."""

from repro.data.ownership import OwnershipMap


def _map() -> OwnershipMap:
    return OwnershipMap({0: {1, 2, 3}, 1: {3, 4}, 2: set()})


class TestLookups:
    def test_items_of(self):
        ownership = _map()
        assert ownership.items_of(0) == frozenset({1, 2, 3})
        assert ownership.items_of(2) == frozenset()
        assert ownership.items_of(99) == frozenset()  # unknown device

    def test_restricted(self):
        ownership = _map()
        assert ownership.restricted(0, frozenset({2, 3, 4})) == frozenset({2, 3})

    def test_owners_of(self):
        ownership = _map()
        assert ownership.owners_of(3) == frozenset({0, 1})
        assert ownership.owners_of(99) == frozenset()

    def test_all_items(self):
        assert _map().all_items() == frozenset({1, 2, 3, 4})

    def test_replication(self):
        ownership = _map()
        assert ownership.replication_of(3) == 2
        assert ownership.replication_of(1) == 1


class TestCoverage:
    def test_covers(self):
        ownership = _map()
        assert ownership.covers(frozenset({1, 4}))
        assert not ownership.covers(frozenset({1, 9}))

    def test_uncovered(self):
        assert _map().uncovered(frozenset({1, 9, 10})) == frozenset({9, 10})

    def test_len_and_repr(self):
        ownership = _map()
        assert len(ownership) == 3
        assert "devices=3" in repr(ownership)
