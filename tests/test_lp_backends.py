"""The LP backend dispatcher."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus, available_backends, solve


@pytest.fixture
def lp():
    return LinearProgram(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([4.0]),
        upper_bounds=np.array([3.0, 3.0]),
    )


def test_backend_names():
    assert set(available_backends()) == {"interior-point", "simplex", "scipy"}


@pytest.mark.parametrize("method", ["interior-point", "simplex", "scipy"])
def test_all_backends_agree(lp, method):
    result = solve(lp, method)
    assert result.status is LPStatus.OPTIMAL
    assert result.objective == pytest.approx(-7.0, abs=1e-6)
    assert result.backend == method


def test_unknown_backend_rejected(lp):
    with pytest.raises(ValueError, match="unknown LP backend"):
        solve(lp, "gurobi")


def test_scipy_infeasible_mapping():
    lp = LinearProgram(
        c=np.array([1.0]),
        a_eq=np.array([[1.0]]), b_eq=np.array([5.0]),
        upper_bounds=np.array([1.0]),
    )
    assert solve(lp, "scipy").status is LPStatus.INFEASIBLE


def test_scipy_unbounded_mapping():
    lp = LinearProgram(c=np.array([-1.0]))
    assert solve(lp, "scipy").status is LPStatus.UNBOUNDED
