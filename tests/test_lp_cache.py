"""The keyed LP solve cache: fingerprints, LRU behaviour, dispatcher wiring."""

import numpy as np
import pytest

from repro.caching.lp_cache import LPSolveCache, fingerprint_problem
from repro.lp import LinearProgram, LPStatus, solve
from repro.lp.result import LPResult


@pytest.fixture
def lp():
    return LinearProgram(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([4.0]),
        upper_bounds=np.array([3.0, 3.0]),
    )


def _result(tag: float) -> LPResult:
    return LPResult(
        status=LPStatus.OPTIMAL, x=np.array([tag]), objective=tag,
        iterations=1, backend="test",
    )


def test_fingerprint_is_deterministic(lp):
    assert fingerprint_problem(lp, "simplex") == fingerprint_problem(lp, "simplex")


def test_fingerprint_separates_backends_and_problems(lp):
    other = LinearProgram(
        c=np.array([-1.0, -2.0 + 1e-12]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([4.0]),
        upper_bounds=np.array([3.0, 3.0]),
    )
    key = fingerprint_problem(lp, "simplex")
    assert key != fingerprint_problem(lp, "interior-point")
    assert key != fingerprint_problem(other, "simplex")


def test_fingerprint_distinguishes_absent_blocks():
    with_eq = LinearProgram(
        c=np.array([1.0]), a_eq=np.array([[1.0]]), b_eq=np.array([0.5]),
        upper_bounds=np.array([1.0]),
    )
    without = LinearProgram(c=np.array([1.0]), upper_bounds=np.array([1.0]))
    assert fingerprint_problem(with_eq, "simplex") != fingerprint_problem(
        without, "simplex"
    )


def test_cache_hit_returns_stored_result():
    cache = LPSolveCache()
    cache.insert("k", _result(1.0))
    assert cache.lookup("k").objective == 1.0
    assert cache.lookup("missing") is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_cache_evicts_least_recently_used():
    cache = LPSolveCache(capacity=2)
    cache.insert("a", _result(1.0))
    cache.insert("b", _result(2.0))
    cache.lookup("a")  # refresh a: b becomes the eviction candidate
    cache.insert("c", _result(3.0))
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.lookup("c") is not None
    assert cache.stats.evictions == 1


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        LPSolveCache(capacity=0)


def test_clear_keeps_stats():
    cache = LPSolveCache()
    cache.insert("a", _result(1.0))
    cache.lookup("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_solve_uses_cache_across_identical_problems(lp):
    cache = LPSolveCache()
    first = solve(lp, "simplex", cache=cache)
    second = solve(lp, "simplex", cache=cache)
    assert second is first  # a hit returns the stored, immutable result
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1

    rebuilt = LinearProgram(
        c=lp.c.copy(), a_ub=lp.a_ub.copy(), b_ub=lp.b_ub.copy(),
        upper_bounds=lp.upper_bounds.copy(),
    )
    third = solve(rebuilt, "simplex", cache=cache)
    assert third is first  # fingerprint keys on values, not identity
    assert cache.stats.hits == 2


def test_cache_separates_backends(lp):
    cache = LPSolveCache()
    simplex = solve(lp, "simplex", cache=cache)
    ipm = solve(lp, "interior-point", cache=cache)
    assert simplex.backend != ipm.backend
    assert len(cache) == 2
