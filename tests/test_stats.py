"""Statistics helpers."""

import numpy as np
import pytest

from repro.experiments.stats import bootstrap_ci, mean_ci, summarize


class TestMeanCI:
    def test_single_value_collapses(self):
        assert mean_ci([5.0]) == (5.0, 5.0)

    def test_constant_sample_collapses(self):
        assert mean_ci([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_interval_contains_mean(self):
        low, high = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert low < 2.5 < high

    def test_matches_scipy_t(self):
        data = [1.0, 2.0, 4.0, 8.0, 16.0]
        low, high = mean_ci(data, confidence=0.95)
        from scipy import stats

        ref = stats.t.interval(
            0.95, df=len(data) - 1,
            loc=np.mean(data), scale=stats.sem(data),
        )
        assert low == pytest.approx(ref[0])
        assert high == pytest.approx(ref[1])

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 3.0, 5.0, 7.0]
        narrow = mean_ci(data, confidence=0.8)
        wide = mean_ci(data, confidence=0.99)
        assert wide[0] < narrow[0] and wide[1] > narrow[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.5)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.ci_half_width == 0.0

    def test_format(self):
        text = summarize([1.0, 2.0, 3.0]).format("J")
        assert "J" in text and "n=3" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestBootstrap:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=100)
        low, high = bootstrap_ci(data, seed=1)
        assert low < 10.3 and high > 9.7  # generous check

    def test_deterministic_under_seed(self):
        data = [1.0, 5.0, 9.0, 2.0, 8.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_custom_statistic(self):
        data = [1.0, 2.0, 100.0]
        low, high = bootstrap_ci(data, statistic=np.median, seed=0)
        assert low >= 1.0 and high <= 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
