"""Spatial and statistical properties of the generated workloads."""

import math

import numpy as np

from repro.online.arrivals import PoissonArrivals
from repro.workload import PAPER_DEFAULTS, generate_scenario, generate_system


class TestSpatialLayout:
    def test_devices_placed_near_their_station(self):
        system = generate_system(PAPER_DEFAULTS, seed=0, area_side_m=2000.0)
        # Cell radius for a 2x2 station grid over 2000 m.
        cell_radius = 2000.0 / (2 * math.ceil(math.sqrt(PAPER_DEFAULTS.num_stations)))
        for device_id, device in system.devices.items():
            station = system.station_of(device_id)
            distance = math.hypot(
                device.position[0] - station.position[0],
                device.position[1] - station.position[1],
            )
            assert distance <= cell_radius + 1e-9

    def test_stations_spread_over_area(self):
        system = generate_system(PAPER_DEFAULTS, seed=0, area_side_m=2000.0)
        positions = [s.position for s in system.stations.values()]
        assert len(set(positions)) == len(positions)
        for x, y in positions:
            assert 0 <= x <= 2000 and 0 <= y <= 2000

    def test_positions_differ_between_devices(self):
        system = generate_system(PAPER_DEFAULTS, seed=1)
        positions = [d.position for d in system.devices.values()]
        assert len(set(positions)) == len(positions)


class TestWorkloadStatistics:
    def test_input_sizes_cover_the_band(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=400), seed=0
        )
        sizes = np.array([t.input_bytes for t in scenario.tasks])
        max_input = PAPER_DEFAULTS.max_input_bytes
        assert sizes.min() >= 0.1 * max_input - 1e-6
        assert sizes.max() <= max_input + 1e-6
        # Uniform over [0.1, 1]·max → mean around 0.55·max.
        assert 0.45 * max_input < sizes.mean() < 0.65 * max_input

    def test_cross_cluster_share_near_probability(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=600), seed=0
        )
        external = [t for t in scenario.tasks if t.has_external_data]
        cross = sum(
            1 for t in external
            if not scenario.system.same_cluster(t.owner_device_id, t.external_source)
        )
        share = cross / len(external)
        assert abs(share - PAPER_DEFAULTS.external_cross_cluster_prob) < 0.08

    def test_wifi_share_near_probability(self):
        system = generate_system(
            PAPER_DEFAULTS.with_updates(num_devices=400, num_tasks=400), seed=0
        )
        wifi = sum(
            1 for d in system.devices.values() if d.wireless.name == "Wi-Fi"
        )
        assert abs(wifi / 400 - PAPER_DEFAULTS.wifi_probability) < 0.08


class TestArrivalStatistics:
    def test_interarrival_mean_matches_rate(self):
        system = generate_system(
            PAPER_DEFAULTS.with_updates(num_devices=8, num_stations=2), seed=0
        )
        arrivals = PoissonArrivals(
            system, PAPER_DEFAULTS.with_updates(num_devices=8, num_stations=2),
            rate_per_s=2.0, seed=3,
        ).generate(500.0)
        times = [t.arrival_s for t in arrivals]
        gaps = np.diff([0.0] + times)
        # Exponential(2.0) gaps → mean 0.5 s.
        assert abs(float(np.mean(gaps)) - 0.5) < 0.08

    def test_owners_roughly_uniform(self):
        system = generate_system(
            PAPER_DEFAULTS.with_updates(num_devices=8, num_stations=2), seed=0
        )
        arrivals = PoissonArrivals(
            system, PAPER_DEFAULTS.with_updates(num_devices=8, num_stations=2),
            rate_per_s=2.0, seed=4,
        ).generate(800.0)
        counts = {}
        for timed in arrivals:
            counts[timed.task.owner_device_id] = (
                counts.get(timed.task.owner_device_id, 0) + 1
            )
        expected = len(arrivals) / 8
        for device_id in range(8):
            assert counts.get(device_id, 0) > expected * 0.6
