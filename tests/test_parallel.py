"""The parallel sweep engine: determinism, spec resolution, error contract."""

import pytest

from repro.core.baselines import all_to_cloud
from repro.experiments.grid import run_grid
from repro.experiments.parallel import (
    EvaluatorSpec,
    SweepCell,
    as_spec,
    dta_spec,
    holistic_spec,
    resolve_jobs,
    run_cells,
)
from repro.experiments.runner import AlgorithmResult, evaluate_holistic
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS

_PROFILE = PAPER_DEFAULTS.with_updates(num_tasks=12)
_AXES = {"num_tasks": [8, 12], "max_input_bytes": [1_000_000.0, 2_000_000.0]}
_EVALUATORS = {
    "LP-HTA": holistic_spec("LP-HTA"),
    "AllToC": holistic_spec("AllToC"),
}


def _cells(n=3):
    specs = (holistic_spec("AllToC"), holistic_spec("HGOS"))
    return [
        SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=specs)
        for i in range(n)
    ]


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError, match="jobs must be"):
        resolve_jobs(-2)


def test_spec_resolution_dispatch():
    assert holistic_spec("LP-HTA").kind == "holistic"
    assert dta_spec("workload").name == "DTA-Workload"
    assert dta_spec("number").name == "DTA-Number"

    def evaluator(scenario):
        return evaluate_holistic(scenario, "AllToC")

    spec = as_spec("custom", evaluator)
    assert spec.kind == "callable"
    assert as_spec("again", spec) is spec
    with pytest.raises(ValueError, match="unknown evaluator kind"):
        EvaluatorSpec(name="bad", kind="nope", target=None)(None)


def test_run_cells_parallel_matches_sequential():
    cells = _cells()
    sequential = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=2)
    assert sequential == parallel


def test_run_cells_preserves_submission_order():
    cells = _cells(4)
    results = run_cells(cells, jobs=2)
    assert len(results) == len(cells)
    for row, cell in zip(results, cells):
        scenario = generate_scenario(cell.profile, seed=cell.seed)
        assert row == tuple(spec(scenario) for spec in cell.evaluators)


def test_unpicklable_evaluator_rejected_for_parallel_jobs():
    spec = as_spec("lambda", lambda scenario: all_to_cloud(scenario.system, scenario.tasks))
    cells = [
        SweepCell(index=i, profile=_PROFILE, seed=i, evaluators=(spec,))
        for i in range(2)
    ]
    # In-process path accepts closures…
    assert len(run_cells(cells, jobs=1)) == 2
    # …but any jobs > 1 request must fail loudly, on every machine.
    with pytest.raises(ValueError, match="not picklable"):
        run_cells(cells, jobs=2)


def test_run_grid_parallel_bit_identical_to_sequential():
    sequential = run_grid(
        _PROFILE, _AXES, _EVALUATORS, seeds=(0, 1), jobs=1
    )
    parallel = run_grid(_PROFILE, _AXES, _EVALUATORS, seeds=(0, 1), jobs=2)
    assert len(sequential) == len(parallel)
    for seq_cell, par_cell in zip(sequential, parallel):
        assert seq_cell.point == par_cell.point
        assert seq_cell.evaluator == par_cell.evaluator
        # Exact float equality, not approx: the cells must be bit-identical.
        assert seq_cell.metrics == par_cell.metrics


def test_algorithm_result_roundtrip_through_spec():
    scenario = generate_scenario(_PROFILE, seed=0)
    spec = holistic_spec("AllToC")
    result = spec(scenario)
    assert isinstance(result, AlgorithmResult)
    direct = evaluate_holistic(scenario, "AllToC")
    assert result == direct
