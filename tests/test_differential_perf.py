"""Differential tests: optimised hot paths vs their seed-era references.

Each optimisation in the sweep hot path keeps its replaced implementation
as a selectable reference, and these tests pin the two to *identical*
output (not merely approximately equal):

- lazy-greedy DTA (CELF heap / size-keyed heap) vs the per-round rescan
  references, property-tested over random ownership maps;
- sparse COO/CSR LP assembly vs the dense reference — equal matrices in
  ``build_p2`` and its standard form, and identical ``lp_hta`` assignments
  on the Table I profile;
- the per-worker scenario memo — hit/miss telemetry and the reference-mode
  bypass that keeps benchmark baselines honest;
- the batched block-diagonal mega-solve path vs both the sequential
  optimised path and the full seed-era reference, over a miniature
  figure-style sweep (identical per-cell results, not just close).
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.context import RunContext, use_context
from repro.core.costs import ClusterCosts, cluster_costs
from repro.core.hta import lp_hta
from repro.core.lp_builder import build_p2
from repro.data.ownership import OwnershipMap
from repro.dta.coverage import (
    _dta_number_lazy,
    _dta_workload_lazy,
    dta_number,
    dta_number_naive,
    dta_workload,
    dta_workload_naive,
)
from repro.experiments import parallel
from repro.experiments.parallel import SweepCell, dta_spec, holistic_spec, run_cells
from repro.perf import perf_config
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS


@st.composite
def coverable_instance(draw):
    """A universe plus an ownership map that jointly covers it."""
    num_items = draw(st.integers(min_value=1, max_value=30))
    num_devices = draw(st.integers(min_value=1, max_value=10))
    holdings = {d: set() for d in range(num_devices)}
    for item in range(num_items):
        owners = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_devices - 1),
                min_size=1, max_size=num_devices, unique=True,
            )
        )
        for owner in owners:
            holdings[owner].add(item)
    universe = frozenset(range(num_items))
    return universe, OwnershipMap(holdings)


class TestLazyGreedyMatchesNaive:
    """The lazy-heap DTA implementations replay the reference argmin exactly."""

    @settings(max_examples=80, deadline=None)
    @given(coverable_instance())
    def test_workload_lazy_equals_naive(self, instance):
        universe, ownership = instance
        lazy = _dta_workload_lazy(universe, ownership)
        naive = dta_workload_naive(universe, ownership)
        assert lazy.universe == naive.universe
        assert dict(lazy.sets) == dict(naive.sets)

    @settings(max_examples=80, deadline=None)
    @given(coverable_instance())
    def test_number_lazy_equals_naive(self, instance):
        universe, ownership = instance
        lazy = _dta_number_lazy(universe, ownership)
        naive = dta_number_naive(universe, ownership)
        assert lazy.universe == naive.universe
        assert dict(lazy.sets) == dict(naive.sets)

    @settings(max_examples=30, deadline=None)
    @given(coverable_instance())
    def test_public_wrappers_route_both_modes_to_same_output(self, instance):
        universe, ownership = instance
        for algorithm, naive in (
            (dta_workload, dta_workload_naive),
            (dta_number, dta_number_naive),
        ):
            optimised = algorithm(universe, ownership)
            with perf_config(reference=True):
                reference = algorithm(universe, ownership)
            assert dict(optimised.sets) == dict(reference.sets)
            assert dict(reference.sets) == dict(naive(universe, ownership).sets)


def _dense(matrix):
    return matrix.toarray() if sp.issparse(matrix) else matrix


def _cluster_inputs(scenario):
    """Per-cluster (costs, device_caps, station_cap), as ``lp_hta`` slices."""
    system = scenario.system
    tasks = list(scenario.tasks)
    costs = cluster_costs(system, tasks)
    by_cluster = {}
    for row, task in enumerate(tasks):
        by_cluster.setdefault(
            system.cluster_of(task.owner_device_id), []
        ).append(row)
    for station_id in sorted(by_cluster):
        rows = by_cluster[station_id]
        sub_costs = ClusterCosts(
            tasks=tuple(costs.tasks[r] for r in rows),
            time_s=costs.time_s[rows],
            energy_j=costs.energy_j[rows],
            resource=costs.resource[rows],
            deadline_s=costs.deadline_s[rows],
        )
        device_caps = {
            device_id: system.device(device_id).max_resource
            for device_id in {t.owner_device_id for t in sub_costs.tasks}
        }
        yield sub_costs, device_caps, system.station(station_id).max_resource


class TestSparseAssemblyMatchesDense:
    """CSR assembly of P2 reproduces the dense reference bit for bit."""

    def test_build_p2_matrices_equal_on_table1_profile(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=80), seed=0
        )
        checked = 0
        for sub_costs, device_caps, station_cap in _cluster_inputs(scenario):
            with use_context(RunContext(lp_sparse=True)):
                sparse = build_p2(sub_costs, device_caps, station_cap)
            with use_context(RunContext(lp_sparse=False)):
                dense = build_p2(sub_costs, device_caps, station_cap)
            assert sparse.doomed_rows == dense.doomed_rows
            assert np.array_equal(sparse.lp.c, dense.lp.c)
            assert np.array_equal(sparse.lp.upper_bounds, dense.lp.upper_bounds)
            assert (sparse.lp.a_ub is None) == (dense.lp.a_ub is None)
            if sparse.lp.a_ub is not None:
                assert sp.issparse(sparse.lp.a_ub)
                assert not sp.issparse(dense.lp.a_ub)
                assert np.array_equal(_dense(sparse.lp.a_ub), dense.lp.a_ub)
                assert np.array_equal(sparse.lp.b_ub, dense.lp.b_ub)
            assert sp.issparse(sparse.lp.a_eq)
            assert np.array_equal(_dense(sparse.lp.a_eq), dense.lp.a_eq)
            assert np.array_equal(sparse.lp.b_eq, dense.lp.b_eq)

            std_sparse = sparse.lp.to_standard_form()
            std_dense = dense.lp.to_standard_form()
            assert std_sparse.is_sparse and not std_dense.is_sparse
            assert np.array_equal(_dense(std_sparse.a), std_dense.a)
            assert np.array_equal(std_sparse.b, std_dense.b)
            assert np.array_equal(std_sparse.c, std_dense.c)
            checked += 1
        assert checked > 0  # the profile yields at least one cluster

    def test_lp_hta_assignments_identical_across_backends(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=80), seed=1
        )
        tasks = list(scenario.tasks)
        for backend in ("interior-point", "scipy"):
            sparse_ctx = RunContext(
                lp_sparse=True, lp_backend=backend, lp_cache_capacity=0
            )
            dense_ctx = RunContext(
                lp_sparse=False, lp_backend=backend, lp_cache_capacity=0
            )
            with use_context(sparse_ctx):
                sparse_report = lp_hta(scenario.system, tasks)
            with use_context(dense_ctx):
                dense_report = lp_hta(scenario.system, tasks)
            assert (
                sparse_report.assignment.decisions
                == dense_report.assignment.decisions
            ), backend


class TestScenarioMemo:
    """The per-worker scenario memo: hits counted, reference mode bypassed."""

    def setup_method(self):
        parallel._SCENARIO_MEMO.clear()

    def test_repeated_lookup_hits_and_counts(self):
        context = RunContext()
        profile = PAPER_DEFAULTS.with_updates(num_tasks=5)
        first = parallel._scenario_for(profile, 3, context)
        second = parallel._scenario_for(profile, 3, context)
        assert second is first
        assert context.telemetry.scenario_memo_misses == 1
        assert context.telemetry.scenario_memo_hits == 1

    def test_distinct_keys_miss(self):
        context = RunContext()
        profile = PAPER_DEFAULTS.with_updates(num_tasks=5)
        a = parallel._scenario_for(profile, 0, context)
        b = parallel._scenario_for(profile, 1, context)
        c = parallel._scenario_for(
            profile, 0, RunContext(lp_backend="interior-point")
        )
        assert a is not b and a is not c
        assert context.telemetry.scenario_memo_hits == 0

    def test_reference_mode_bypasses_memo(self):
        context = RunContext(reference=True)
        profile = PAPER_DEFAULTS.with_updates(num_tasks=5)
        first = parallel._scenario_for(profile, 3, context)
        second = parallel._scenario_for(profile, 3, context)
        assert second is not first  # regenerated, never memoised
        assert not parallel._SCENARIO_MEMO
        assert context.telemetry.scenario_memo_hits == 0
        assert context.telemetry.scenario_memo_misses == 0

    def test_memoised_scenario_equals_fresh_generation(self):
        context = RunContext()
        profile = PAPER_DEFAULTS.with_updates(num_tasks=12)
        memoised = parallel._scenario_for(profile, 7, context)
        fresh = generate_scenario(profile, seed=7)
        assert len(memoised.tasks) == len(fresh.tasks)
        stats_memo = [t.owner_device_id for t in memoised.tasks]
        stats_fresh = [t.owner_device_id for t in fresh.tasks]
        assert stats_memo == stats_fresh


def _mini_figure(context):
    """A two-point, two-seed figure-style sweep (LP-HTA + DTA columns).

    Each profile's cells form one sweep column, so with ``lp_batch`` on the
    holistic and DTA evaluators both route through their mega-solve entry
    points — the same shape ``bench_perf.py`` measures, small enough for CI.
    """
    specs = (holistic_spec("LP-HTA"), dta_spec("workload"))
    profiles = [
        PAPER_DEFAULTS.with_updates(
            num_tasks=n, num_devices=8, num_stations=2,
            divisible=True, num_data_items=40,
        )
        for n in (8, 12)
    ]
    cells = [
        SweepCell(
            index=i, profile=profile, seed=seed,
            evaluators=specs, context=context,
        )
        for i, (profile, seed) in enumerate(
            (profile, seed) for profile in profiles for seed in (0, 1)
        )
    ]
    return run_cells(cells, jobs=1)


class TestBatchedSweepMatchesReference:
    """The mega-solve sweep path is a pure perf change: identical figures."""

    def setup_method(self):
        parallel._SCENARIO_MEMO.clear()

    def test_figure_diff_batched_vs_sequential_vs_reference(self):
        batched_ctx = RunContext(lp_batch=True)
        sequential_ctx = RunContext(lp_batch=False)
        reference_ctx = RunContext(
            reference=True, vectorized_costs=False, cached_costs=False,
            lp_batch=False,
        )
        batched = _mini_figure(batched_ctx)
        sequential = _mini_figure(sequential_ctx)
        reference = _mini_figure(reference_ctx)
        # The batched path actually engaged, and neither control did.
        assert batched_ctx.telemetry.batch_solves > 0
        assert sequential_ctx.telemetry.batch_solves == 0
        assert reference_ctx.telemetry.batch_solves == 0
        # Cell-for-cell identical AlgorithmResults across all three modes.
        assert batched == sequential
        assert batched == reference


def _scenario_fingerprint(scenario):
    """Every float and field of a scenario, for exact comparison."""
    tasks = tuple(
        (
            t.owner_device_id, t.index, t.local_bytes, t.external_bytes,
            t.external_source, t.resource_demand, t.deadline_s,
            t.divisible, t.required_items, t.operation,
        )
        for t in scenario.tasks
    )
    devices = tuple(
        (
            d.device_id, d.cpu_frequency_hz, d.wireless, d.max_resource,
            d.data_items, d.position,
        )
        for d in (scenario.system.device(i) for i in scenario.system.devices)
    )
    return tasks, devices


class TestArrayGeneratorMatchesReference:
    """The raw-word-stream generator is a pure perf change: identical draws."""

    def test_scenarios_identical_across_all_three_paths(self):
        profiles = [
            PAPER_DEFAULTS.with_updates(num_tasks=60, num_devices=12, num_stations=3),
            PAPER_DEFAULTS.with_updates(num_tasks=7, num_devices=1, num_stations=1),
            PAPER_DEFAULTS.with_updates(
                num_tasks=30, num_devices=6, num_stations=2,
                external_ratio_range=(0.0, 0.0),
            ),
            PAPER_DEFAULTS.with_updates(
                num_tasks=30, num_devices=6, num_stations=3,
                external_cross_cluster_prob=1.0,
            ),
        ]
        for profile in profiles:
            for seed in (0, 5):
                with use_context(RunContext()):
                    array = _scenario_fingerprint(generate_scenario(profile, seed=seed))
                with use_context(RunContext(vectorized_generator=False)):
                    pooled = _scenario_fingerprint(generate_scenario(profile, seed=seed))
                with use_context(RunContext(reference=True)):
                    reference = _scenario_fingerprint(
                        generate_scenario(profile, seed=seed)
                    )
                assert array == pooled == reference

    def test_divisible_scenarios_identical_to_reference(self):
        # Divisible generation stays on the object path but memoises the
        # sorted catalog and the per-item owner index; draws and every
        # byte total must stay bit-identical to the unmemoised code.
        for num_tasks in (24, 120):
            profile = PAPER_DEFAULTS.with_updates(
                num_tasks=num_tasks, divisible=True
            )
            for seed in (0, 5):
                with use_context(RunContext()):
                    fast = _scenario_fingerprint(generate_scenario(profile, seed=seed))
                with use_context(RunContext(reference=True)):
                    reference = _scenario_fingerprint(
                        generate_scenario(profile, seed=seed)
                    )
                assert fast == reference

    def test_bailout_falls_back_to_object_path(self, monkeypatch):
        from repro.workload import array_gen

        profile = PAPER_DEFAULTS.with_updates(
            num_tasks=20, num_devices=5, num_stations=2
        )
        with use_context(RunContext(vectorized_generator=False)):
            expected = _scenario_fingerprint(generate_scenario(profile, seed=3))
        monkeypatch.setattr(
            array_gen, "generate_holistic_tasks", lambda *a, **k: None
        )
        context = RunContext()
        with use_context(context):
            bailed = _scenario_fingerprint(generate_scenario(profile, seed=3))
        assert bailed == expected
        assert context.telemetry.metrics.counters["generate.array_bailout"] > 0

    def test_fused_cost_table_identical_to_gather_loop(self):
        from repro.core import costs as costs_module

        profile = PAPER_DEFAULTS.with_updates(
            num_tasks=50, num_devices=10, num_stations=2
        )
        with use_context(RunContext()):
            scenario = generate_scenario(profile, seed=4)
            fused = cluster_costs(scenario.system, scenario.tasks)
            # Drop the generator's array hint and the table memo: the same
            # tasks now price through the per-task gather loop.
            costs_module._TASK_ARRAY_HINTS.pop(scenario.system, None)
            costs_module._TABLE_CACHE.pop(scenario.system, None)
            looped = cluster_costs(scenario.system, scenario.tasks)
        assert fused.time_s.tobytes() == looped.time_s.tobytes()
        assert fused.energy_j.tobytes() == looped.energy_j.tobytes()
        assert fused.resource.tobytes() == looped.resource.tobytes()
        assert fused.deadline_s.tobytes() == looped.deadline_s.tobytes()


class TestEngineReplayBitIdentity:
    """Array-engine replay equals the closure engine, metric for metric.

    Locally the engine runs its pure-Python event loop; on CI with the
    ``[perf]`` extra installed the same tests compile through numba — both
    interpreters must land on identical bits, and the jit/no-jit pair is
    additionally pinned below.
    """

    def _replay_matrix(self, scenario, assignment):
        from repro.des.replay import replay_assignment

        tasks = list(scenario.tasks)
        cases = [
            dict(contention=False),
            dict(contention=True),
            dict(contention=True, backhaul_outages=((0.2, 0.5),)),
            dict(
                contention=False,
                backhaul_outages=((0.1, 0.4),),
                wan_outages=((0.3, 0.8),),
            ),
        ]
        for kwargs in cases:
            with use_context(RunContext()):
                fast = replay_assignment(scenario.system, tasks, assignment, **kwargs)
            with use_context(RunContext(des_vectorized=False)):
                slow = replay_assignment(scenario.system, tasks, assignment, **kwargs)
            with use_context(RunContext(reference=True)):
                reference = replay_assignment(
                    scenario.system, tasks, assignment, **kwargs
                )
            assert fast == slow == reference

    def test_realized_metrics_bit_identical(self):
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=40, num_devices=8, num_stations=2),
            seed=0,
        )
        assignment = lp_hta(scenario.system, list(scenario.tasks)).assignment
        self._replay_matrix(scenario, assignment)

    def test_jit_and_python_loops_agree(self, monkeypatch):
        from repro.des import engine

        if engine._event_loop_jit is None:
            # No numba in this interpreter: the py loop *is* the engine,
            # already pinned against the object path above.  CI's [perf]
            # matrix leg runs the jit side of this test.
            return
        scenario = generate_scenario(
            PAPER_DEFAULTS.with_updates(num_tasks=40, num_devices=8, num_stations=2),
            seed=1,
        )
        tasks = list(scenario.tasks)
        assignment = lp_hta(scenario.system, tasks).assignment
        jitted = engine.replay_with_engine(
            scenario.system, tasks, assignment, True, ((0.2, 0.5),), (), None
        )
        monkeypatch.setattr(engine, "_event_loop_jit", None)
        interpreted = engine.replay_with_engine(
            scenario.system, tasks, assignment, True, ((0.2, 0.5),), (), None
        )
        assert jitted == interpreted


class TestVectorisedKernelsPreserveFigures:
    """The kernel flags change nothing about a figure-style sweep's output."""

    def setup_method(self):
        parallel._SCENARIO_MEMO.clear()

    def _holistic_mini_figure(self, context):
        specs = (holistic_spec("LP-HTA"), holistic_spec("HGOS"))
        cells = [
            SweepCell(
                index=i,
                profile=PAPER_DEFAULTS.with_updates(
                    num_tasks=n, num_devices=8, num_stations=2
                ),
                seed=seed,
                evaluators=specs,
                context=context,
            )
            for i, (n, seed) in enumerate(
                (n, seed) for n in (8, 12) for seed in (0, 1)
            )
        ]
        return run_cells(cells, jobs=1)

    def test_generator_and_engine_flags_are_pure_perf(self):
        default = self._holistic_mini_figure(RunContext())
        parallel._SCENARIO_MEMO.clear()
        no_kernels = self._holistic_mini_figure(
            RunContext(vectorized_generator=False, des_vectorized=False)
        )
        parallel._SCENARIO_MEMO.clear()
        reference = self._holistic_mini_figure(
            RunContext(
                reference=True, vectorized_costs=False, cached_costs=False,
                lp_batch=False,
            )
        )
        assert default == no_kernels
        assert default == reference
