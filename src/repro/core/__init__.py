"""Core contribution: the HTA problem, LP-HTA, baselines and exact solvers."""

from repro.core.assignment import Assignment, AssignmentStats, Subsystem
from repro.core.baselines import (
    all_offload,
    all_to_cloud,
    hgos,
    local_first,
    random_assignment,
)
from repro.core.costs import ClusterCosts, TaskCosts, cluster_costs, task_costs
from repro.core.exact import branch_and_bound_hta, brute_force_hta
from repro.core.game import GameOptions, GameResult, best_response_offloading
from repro.core.hta import HTAReport, LPHTAOptions, lp_hta
from repro.core.lagrangian import LagrangianOptions, LagrangianReport, lagrangian_hta
from repro.core.task import Task

__all__ = [
    "Assignment",
    "AssignmentStats",
    "ClusterCosts",
    "GameOptions",
    "GameResult",
    "HTAReport",
    "LPHTAOptions",
    "LagrangianOptions",
    "LagrangianReport",
    "Subsystem",
    "Task",
    "TaskCosts",
    "best_response_offloading",
    "lagrangian_hta",
    "all_offload",
    "all_to_cloud",
    "branch_and_bound_hta",
    "brute_force_hta",
    "cluster_costs",
    "hgos",
    "local_first",
    "lp_hta",
    "random_assignment",
    "task_costs",
]
