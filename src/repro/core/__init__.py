"""Core contribution: the HTA problem, LP-HTA, baselines and exact solvers."""

from repro.core.assignment import Assignment, AssignmentStats, Subsystem
from repro.core.baselines import (
    all_offload,
    all_to_cloud,
    hgos,
    local_first,
    random_assignment,
)
from repro.core.costs import ClusterCosts, TaskCosts, cluster_costs, task_costs
from repro.core.exact import branch_and_bound_hta, brute_force_hta
from repro.core.game import GameOptions, GameResult, best_response_offloading
from repro.core.hta import HTAReport, LPHTAOptions, lp_hta
from repro.core.lagrangian import (
    CoordinatorOptions,
    CoordinatorOutcome,
    LagrangianOptions,
    LagrangianReport,
    coordinate_shared_capacity,
    lagrangian_hta,
)
from repro.core.sharded import ShardedHTAReport, lp_hta_sharded
from repro.core.task import Task

__all__ = [
    "Assignment",
    "AssignmentStats",
    "ClusterCosts",
    "CoordinatorOptions",
    "CoordinatorOutcome",
    "GameOptions",
    "GameResult",
    "HTAReport",
    "LPHTAOptions",
    "LagrangianOptions",
    "LagrangianReport",
    "ShardedHTAReport",
    "Subsystem",
    "Task",
    "TaskCosts",
    "best_response_offloading",
    "coordinate_shared_capacity",
    "lagrangian_hta",
    "lp_hta_sharded",
    "all_offload",
    "all_to_cloud",
    "branch_and_bound_hta",
    "brute_force_hta",
    "cluster_costs",
    "hgos",
    "local_first",
    "lp_hta",
    "random_assignment",
    "task_costs",
]
