"""LP-HTA: the paper's approximation algorithm for holistic task assignment.

Section III-A, six steps per cluster:

1. solve the relaxation P2 with an interior-point method,
2. reshape ξ into the fractional matrix **X**,
3. round each task to its largest fractional subsystem,
4. repair deadline violations (move to the best deadline-feasible
   subsystem by fractional weight, else cancel),
5. repair per-device resource overflows (move greedily by resource
   occupation to the base station, else cancel),
6. repair the station resource overflow (move greedily to the cloud,
   else cancel).

The returned :class:`HTAReport` carries, per cluster and aggregated, the
quantities of the paper's analysis: the LP optimum :math:`E^{(OPT)}_{LP}`,
the rounded energy, the migration growth Δ, and the two ratio bounds
(Theorem 2 and Corollary 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.context import RunContext, current_context, use_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import NUM_SUBSYSTEMS, ClusterCosts, cluster_costs
from repro.core.lp_builder import (
    BatchedProblem,
    build_p2,
    build_p2_structured,
    reshape_solution,
)
from repro.lp.structured import solve_structured, solve_structured_batch
from repro.core.task import Task
from repro.lp.backends import solve as lp_solve
from repro.lp.interior_point import solve_interior_point_batch
from repro.lp.result import LPResult, LPStatus
from repro.obs.tracer import span
from repro.system.topology import MECSystem

__all__ = [
    "ClusterReport",
    "HTAReport",
    "LPHTAOptions",
    "lp_hta",
    "lp_hta_batch",
    "lp_hta_cluster",
]

#: Column indices into the cost arrays.
_DEVICE, _STATION, _CLOUD = 0, 1, 2


@dataclass(frozen=True)
class LPHTAOptions:
    """Tunables of LP-HTA (defaults reproduce the paper's algorithm).

    :param backend: LP backend for Step 1.  ``"structured"`` (default) is
        our interior-point method specialised to P2's block structure —
        mathematically the same relaxation the paper solves, effectively
        linear-time per Newton step; ``"interior-point"`` is the generic
        dense Mehrotra solver, ``"simplex"`` / ``"scipy"`` are for ablations
        and cross-checks.
    :param fallback_backends: tried in order if the primary backend fails
        numerically (the solver fallback ladder; a sparse interior-point
        rung gets an extra dense retry, and a greedy one-hot assignment
        is the always-feasible bottom rung).
    :param rounding: ``"argmax"`` (Step 3 as written) or ``"randomized"``
        (sample the subsystem from the fractional row — ablation only).
    :param repair_order: ``"largest-first"`` (greedy by resource occupation,
        as written) or ``"smallest-first"`` (ablation).
    :param seed: RNG seed for randomized rounding.
    """

    backend: str = "structured"
    fallback_backends: Tuple[str, ...] = ("interior-point", "simplex", "scipy")
    rounding: str = "argmax"
    repair_order: str = "largest-first"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounding not in ("argmax", "randomized"):
            raise ValueError(f"unknown rounding rule {self.rounding!r}")
        if self.repair_order not in ("largest-first", "smallest-first"):
            raise ValueError(f"unknown repair order {self.repair_order!r}")


@dataclass(frozen=True)
class ClusterReport:
    """Per-cluster diagnostics of one LP-HTA run.

    :param station_id: the cluster's base station.
    :param num_tasks: tasks assigned in this cluster.
    :param lp_objective_j: :math:`E^{(OPT)}_{LP}`, the relaxation optimum.
    :param rounded_energy_j: :math:`\\sum E_{ijl}\\hat{x}_{ijl}` after Step 3.
    :param final_energy_j: energy of the repaired assignment.
    :param delta_j: Δ, the energy growth caused by Steps 4–6 migrations.
    :param ratio_bound_theorem2: :math:`3 + Δ/E^{(OPT)}_{LP}`.
    :param ratio_bound_corollary1: the Corollary 1 bound
        (min of Theorem 2's and max E_ij3 / min E_ij1).
    :param lp_iterations: Step 1 solver iterations.
    :param lp_backend: backend that actually solved Step 1.
    :param cancelled_tasks: (i, j) ids of cancelled tasks.
    """

    station_id: int
    num_tasks: int
    lp_objective_j: float
    rounded_energy_j: float
    final_energy_j: float
    delta_j: float
    ratio_bound_theorem2: float
    ratio_bound_corollary1: float
    lp_iterations: int
    lp_backend: str
    cancelled_tasks: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class HTAReport:
    """Result of LP-HTA over a whole MEC system.

    :param assignment: the combined assignment over every input task.
    :param clusters: per-cluster diagnostics.
    """

    assignment: Assignment
    clusters: Tuple[ClusterReport, ...] = field(default_factory=tuple)

    @property
    def lp_objective_j(self) -> float:
        """System-wide :math:`E^{(OPT)}_{LP}` (sum over clusters)."""
        return sum(c.lp_objective_j for c in self.clusters)

    @property
    def delta_j(self) -> float:
        """System-wide migration growth Δ."""
        return sum(c.delta_j for c in self.clusters)

    @property
    def ratio_bound_theorem2(self) -> float:
        """Theorem 2 bound computed from the aggregated Δ and LP optimum."""
        lp_opt = self.lp_objective_j
        if lp_opt <= 0:
            return float("inf")
        return 3.0 + max(self.delta_j, 0.0) / lp_opt

    @property
    def empirical_ratio_upper_bound(self) -> float:
        """Final energy / LP optimum — an upper bound on the true ratio
        (the LP optimum lower-bounds the integral optimum)."""
        lp_opt = self.lp_objective_j
        if lp_opt <= 0:
            return float("inf")
        return self.assignment.total_energy_j() / lp_opt


def _options_from_context(context: RunContext) -> LPHTAOptions:
    """The LP-HTA tunables implied by a run context."""
    return LPHTAOptions(
        backend=context.lp_backend,
        fallback_backends=context.lp_fallback_backends,
        seed=context.seed,
    )


def _greedy_p2(
    costs: ClusterCosts, last: Optional[LPResult] = None
) -> LPResult:
    """The fallback ladder's bottom rung: greedy one-hot HTA.

    Assigns every task to its cheapest deadline-feasible subsystem (or its
    cheapest subsystem outright when none meets the deadline — Step 4 then
    migrates or cancels the row), ignoring the capacity rows, which
    Steps 5–6 repair exactly as they repair rounding overflows.  Always
    succeeds, so a cluster whose relaxation defeats every LP backend still
    produces an assignment instead of aborting the sweep.

    The returned objective is the energy of the one-hot assignment — an
    *upper* bound, NOT the LP lower bound the Theorem 2 ratio needs; the
    ``"greedy"`` backend tag marks the result so consumers (the sharded
    coordinator's duality gap, reports) can treat its bound as vacuous.
    """
    n = costs.num_tasks
    x = np.zeros(NUM_SUBSYSTEMS * n)
    total = 0.0
    for row in range(n):
        candidates = costs.feasible_subsystems(row) or tuple(
            range(NUM_SUBSYSTEMS)
        )
        best = min(candidates, key=lambda l: costs.energy_j[row, l])
        x[NUM_SUBSYSTEMS * row + best] = 1.0
        total += float(costs.energy_j[row, best])
    message = "greedy one-hot fallback; objective is not an LP lower bound"
    if last is not None:
        message += (
            f" (last LP attempt: {last.backend} -> {last.status.name})"
        )
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=x,
        objective=total,
        iterations=0,
        backend="greedy",
        message=message,
    )


def _record_rung(
    context: RunContext, options: LPHTAOptions, backend: str, dense: bool
) -> None:
    """Count a solve served by a ladder rung below the configured primary.

    The relaxed-bounds retry is *not* a rung: dropping the A1 bounds is
    the documented infeasibility workaround and happens on healthy runs,
    so only a backend change (or the dense interior-point retry) counts
    as a fallback.
    """
    if backend != options.backend or dense:
        context.telemetry.record_fallback(
            f"{backend}-dense" if dense else backend
        )


def _solve_p2(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    options: LPHTAOptions,
    context: RunContext,
) -> LPResult:
    """Step 1: solve P2 down the solver fallback ladder.

    When the resource rows (C2/C3) and the deadline bounds (A1) clash, P2 as
    written can be infeasible — e.g. a large task whose cloud path misses
    the deadline and whose device/station have no room.  The paper does not
    address this case; we retry with the A1 bounds dropped (always feasible:
    the cloud column is uncapped) and let Step 4 enforce deadlines by
    migration or cancellation.  The relaxed optimum is a weaker lower bound,
    so the reported Theorem 2 ratio stays a valid (conservative) bound.

    Within each relaxation level the configured backend and its fallbacks
    are tried in order; a sparse interior-point rung that fails gets a
    dense rebuild-and-retry (sparse factorisation is the usual numerical
    culprit).  A result from any rung below the primary is counted in the
    telemetry (``lp.fallback.<rung>`` and the ``--stats`` fallback line)
    and tagged with the backend that produced it.  When every backend
    fails at both relaxation levels, the ladder bottoms out at
    :func:`_greedy_p2` instead of raising, so one pathological cluster
    cannot abort a whole sweep.
    """
    last: Optional[LPResult] = None
    for relax in (False, True):
        generic_build = None
        rungs: List[Tuple[str, bool]] = []
        for backend in (options.backend, *options.fallback_backends):
            rungs.append((backend, False))
            if backend == "interior-point" and context.lp_sparse:
                # Dense retry right below the sparse IPM rung.
                rungs.append((backend, True))
        for backend, dense in rungs:
            if backend == "structured":
                grouped = build_p2_structured(
                    costs, device_caps, station_cap,
                    relax_deadline_bounds=relax,
                ).lp
                with span("solve", context=context, backend=backend):
                    # Timed from here so ``stage.solve_s`` (and the solve
                    # wall-time counter) excludes the build above, which has
                    # its own stage.
                    start = time.perf_counter()
                    # Reference mode solves uncached: the seed-era path had
                    # no solve cache, and benchmark baselines must stay
                    # honest.
                    cache = None if context.reference else context.lp_cache
                    key = None
                    if cache is not None:
                        from repro.caching.lp_cache import fingerprint_grouped

                        key = fingerprint_grouped(grouped, backend)
                        hit = cache.lookup(key)
                        if hit is not None:
                            context.telemetry.record_solve(
                                wall_time_s=time.perf_counter() - start,
                                iterations=0,
                                cache_hit=True,
                            )
                            _record_rung(context, options, backend, dense)
                            return hit
                    result = solve_structured(grouped)
                    if cache is not None and key is not None and result.status.ok:
                        cache.insert(key, result)
                    context.telemetry.record_solve(
                        wall_time_s=time.perf_counter() - start,
                        iterations=result.iterations,
                    )
            elif dense:
                # Rebuild the relaxation with dense assembly: the sparse
                # factorisation is the usual numerical culprit, and the
                # dense Mehrotra path is the slower, steadier reference.
                with use_context(context.replace(lp_sparse=False)):
                    dense_build = build_p2(
                        costs, device_caps, station_cap,
                        relax_deadline_bounds=relax,
                    )
                result = lp_solve(dense_build.lp, backend, context=context)
            else:
                if generic_build is None:
                    generic_build = build_p2(
                        costs, device_caps, station_cap,
                        relax_deadline_bounds=relax,
                    )
                result = lp_solve(generic_build.lp, backend, context=context)
            if result.status.ok:
                _record_rung(context, options, backend, dense)
                return result
            last = result
    # Bottom rung: never abort the sweep over one pathological cluster.
    context.telemetry.record_fallback("greedy")
    return _greedy_p2(costs, last=last)


#: Backends whose Step-1 solve has a block-diagonal batched path.
_BATCHABLE_BACKENDS = ("structured", "interior-point")


def _batching_enabled(context: RunContext, options: LPHTAOptions, blocks: int) -> bool:
    """Whether Step 1 should go through the batched mega-solve.

    Reference mode keeps the seed-era sequential path (it is the
    differential-testing baseline); a single block gains nothing from
    batching, so the sequential path also keeps its exact telemetry shape
    for simple runs.
    """
    return (
        blocks >= 2
        and context.lp_batch
        and not context.reference
        and options.backend in _BATCHABLE_BACKENDS
    )


def _solve_p2_batch(
    jobs: Sequence[Tuple[ClusterCosts, Mapping[int, float], float]],
    options: LPHTAOptions,
    context: RunContext,
) -> List[LPResult]:
    """Step 1 for many independent clusters: one block-diagonal mega-solve.

    Only the primary backend's unrelaxed solve is batched — the solve that
    succeeds on every healthy instance.  Any block the batched solver
    cannot clear falls back to the sequential :func:`_solve_p2`, which
    retains the full backend/relaxation ladder, so the returned results
    match the sequential path block for block (the batched solvers iterate
    each block's exact sequential trajectory; see
    :func:`repro.lp.structured.solve_structured_batch`).

    Cache interaction: a whole-batch fingerprint is probed first
    (:meth:`~repro.caching.lp_cache.LPSolveCache.lookup_batch`), then
    per-block keys, so a repeated sweep column skips assembly and solve in
    one lookup while a partially-overlapping batch still reuses every
    block it can.
    """
    from repro.caching.lp_cache import fingerprint_grouped, fingerprint_problem

    backend = options.backend
    results: List[Optional[LPResult]] = [None] * len(jobs)

    # Per-block builds feed the ``build`` stage exactly like the
    # sequential path; everything after them (fingerprints, offset
    # bookkeeping, block stacking) is batching overhead and is what
    # ``stage.batch_assembly_s`` measures.
    if backend == "structured":
        blocks = [
            build_p2_structured(
                costs, caps, cap, relax_deadline_bounds=False
            ).lp
            for costs, caps, cap in jobs
        ]
        generic = None
    else:
        generic = [
            build_p2(costs, caps, cap, relax_deadline_bounds=False).lp
            for costs, caps, cap in jobs
        ]
        blocks = None

    assembly_start = time.perf_counter()
    cache = None if context.reference else context.lp_cache
    keys: Optional[List[str]] = None
    if cache is not None:
        if blocks is not None:
            keys = [fingerprint_grouped(b, backend) for b in blocks]
        else:
            assert generic is not None
            keys = [fingerprint_problem(p, backend) for p in generic]
        lookup_start = time.perf_counter()
        whole = cache.lookup_batch(keys)
        if whole is not None:
            share = (time.perf_counter() - lookup_start) / len(jobs)
            for index, hit in enumerate(whole):
                results[index] = hit
                # Each block is a cache-served solve, so the per-solve
                # counters stay comparable with the sequential path.
                context.telemetry.record_cache(True)
                context.telemetry.record_solve(
                    wall_time_s=share, iterations=0, cache_hit=True
                )
            return list(whole)
        for index, key in enumerate(keys):
            lookup_start = time.perf_counter()
            hit = cache.lookup(key)
            if hit is not None:
                results[index] = hit
                context.telemetry.record_solve(
                    wall_time_s=time.perf_counter() - lookup_start,
                    iterations=0,
                    cache_hit=True,
                )

    pending = [index for index, result in enumerate(results) if result is None]
    if pending:
        if blocks is not None:
            batch_input = [blocks[index] for index in pending]
        else:
            assert generic is not None
            batch_input = BatchedProblem([generic[index] for index in pending])
        assembly_s = time.perf_counter() - assembly_start
        with span("solve", context=context, backend=backend):
            start = time.perf_counter()
            if blocks is not None:
                solved = solve_structured_batch(batch_input)
            else:
                solved = solve_interior_point_batch(batch_input)
            wall = time.perf_counter() - start
        context.telemetry.record_batch(
            blocks=len(pending),
            wall_time_s=wall,
            iterations=[result.iterations for result in solved],
            assembly_s=assembly_s,
        )
        for index, result in zip(pending, solved):
            results[index] = result
    if cache is not None and keys is not None:
        if all(r is not None and r.status.ok for r in results):
            # Store the whole column (per-block hits re-inserted unchanged)
            # so an identical batch later hits in one probe — including
            # when this batch itself was assembled purely from per-block
            # subset hits.
            cache.insert_batch(keys, results)  # type: ignore[arg-type]
        else:
            for index in pending:
                result = results[index]
                if result is not None and result.status.ok:
                    cache.insert(keys[index], result)

    out: List[LPResult] = []
    for job, result in zip(jobs, results):
        if result is None or not result.status.ok:
            # Rare: the primary backend failed on this block (or the whole
            # batch was empty).  Re-run the full sequential ladder, which
            # also covers the relaxed-bounds retry.
            costs, caps, cap = job
            if result is not None:
                # A block the batched solver actually failed on (not a
                # mere cache miss) is a ladder descent worth counting.
                context.telemetry.record_fallback("batch-to-sequential")
            result = _solve_p2(costs, caps, cap, options, context)
        out.append(result)
    return out


@dataclass(frozen=True)
class _ClusterSlice:
    """One cluster's slice of a system-wide cost table (Step-1 input)."""

    station_id: int
    rows: Tuple[int, ...]
    costs: ClusterCosts
    device_caps: Dict[int, float]
    station_cap: float


def _cluster_slices(
    system: MECSystem, tasks: Sequence[Task], costs: ClusterCosts
) -> List[_ClusterSlice]:
    """Split a priced task set into independent per-cluster instances."""
    by_cluster: Dict[int, List[int]] = {}
    for row, task in enumerate(tasks):
        by_cluster.setdefault(system.cluster_of(task.owner_device_id), []).append(row)
    slices: List[_ClusterSlice] = []
    for station_id in sorted(by_cluster):
        rows = by_cluster[station_id]
        sub_costs = ClusterCosts(
            tasks=tuple(costs.tasks[r] for r in rows),
            time_s=costs.time_s[rows],
            energy_j=costs.energy_j[rows],
            resource=costs.resource[rows],
            deadline_s=costs.deadline_s[rows],
        )
        device_caps = {
            device_id: system.device(device_id).max_resource
            for device_id in {t.owner_device_id for t in sub_costs.tasks}
        }
        slices.append(
            _ClusterSlice(
                station_id=station_id,
                rows=tuple(rows),
                costs=sub_costs,
                device_caps=device_caps,
                station_cap=system.station(station_id).max_resource,
            )
        )
    return slices


def _round(
    x_fractional: np.ndarray, options: LPHTAOptions
) -> np.ndarray:
    """Step 3: one subsystem per task from the fractional matrix."""
    num_tasks = x_fractional.shape[0]
    choices = np.empty(num_tasks, dtype=int)
    if options.rounding == "argmax":
        choices[:] = np.argmax(x_fractional, axis=1)
    else:
        rng = np.random.default_rng(options.seed)
        for row in range(num_tasks):
            weights = np.clip(x_fractional[row], 0.0, None)
            total = weights.sum()
            if total <= 0:
                choices[row] = int(np.argmax(x_fractional[row]))
            else:
                choices[row] = int(rng.choice(NUM_SUBSYSTEMS, p=weights / total))
    return choices


def _greedy_order(rows: Sequence[int], resource: np.ndarray, options: LPHTAOptions) -> List[int]:
    """Rows sorted by resource occupation per the configured repair order."""
    reverse = options.repair_order == "largest-first"
    return sorted(rows, key=lambda r: resource[r], reverse=reverse)


def lp_hta_cluster(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    options: Optional[LPHTAOptions] = None,
    station_id: int = 0,
    context: Optional[RunContext] = None,
    lp_result: Optional[LPResult] = None,
) -> Tuple[List[Subsystem], ClusterReport]:
    """Run the six LP-HTA steps on one cluster's cost table.

    :param costs: priced tasks of the cluster.
    :param device_caps: :math:`max_i` per device id.
    :param station_cap: :math:`max_S`.
    :param options: algorithm tunables; defaults to the context's LP
        settings.
    :param station_id: cluster label for the report.
    :param context: run configuration (perf mode, LP defaults, telemetry);
        defaults to the active context.
    :param lp_result: optional precomputed Step-1 solution (from the
        batched mega-solve, :func:`_solve_p2_batch`); when given, Step 1
        is skipped and Steps 2–6 run on it unchanged.
    :returns: per-row decisions plus the cluster report.
    """
    context = context if context is not None else current_context()
    if options is None:
        options = _options_from_context(context)
    n = costs.num_tasks
    if n == 0:
        report = ClusterReport(
            station_id=station_id, num_tasks=0, lp_objective_j=0.0,
            rounded_energy_j=0.0, final_energy_j=0.0, delta_j=0.0,
            ratio_bound_theorem2=3.0, ratio_bound_corollary1=3.0,
            lp_iterations=0, lp_backend="none", cancelled_tasks=(),
        )
        return [], report

    # Steps 1–2: solve P2 and reshape into X.
    if lp_result is None:
        lp_result = _solve_p2(costs, device_caps, station_cap, options, context)
    x_fractional = reshape_solution(lp_result.require_ok(), n)

    # Step 3: round.
    chosen = _round(x_fractional, options)

    if context.reference:
        rounded_energy = float(
            sum(costs.energy_j[row, chosen[row]] for row in range(n))
        )
        # Step 4: deadline repair (seed implementation).
        decisions: List[Subsystem] = [Subsystem.CANCELLED] * n
        for row in range(n):
            q = int(chosen[row])
            if costs.time_s[row, q] <= costs.deadline_s[row]:
                decisions[row] = Subsystem(q + 1)
                continue
            feasible = costs.feasible_subsystems(row)
            if feasible:
                best = max(feasible, key=lambda l: x_fractional[row, l])
                decisions[row] = Subsystem(best + 1)
            # else: stays CANCELLED ("cancel T_ij and inform users").
    else:
        cols = np.asarray(chosen, dtype=int)
        rows_n = np.arange(n)
        # Python sum over the row-ordered values keeps the sequential float
        # accumulation of the original per-row generator.
        rounded_energy = float(sum(costs.energy_j[rows_n, cols].tolist()))

        # Step 4: deadline repair.
        by_column = (Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD)
        decisions = [Subsystem.CANCELLED] * n
        rounded_ok = costs.time_s[rows_n, cols] <= costs.deadline_s
        for row in np.flatnonzero(rounded_ok).tolist():
            decisions[row] = by_column[cols[row]]
        for row in np.flatnonzero(~rounded_ok).tolist():
            feasible = costs.feasible_subsystems(row)
            if feasible:
                best = max(feasible, key=lambda l: x_fractional[row, l])
                decisions[row] = by_column[best]
            # else: stays CANCELLED ("cancel T_ij and inform users").

    deadline_ok = costs.time_s <= costs.deadline_s[:, None]

    # Step 5: per-device resource repair.
    owner_rows = costs.owner_rows()
    for device_id, rows in owner_rows.items():
        cap = device_caps.get(device_id, float("inf"))

        def device_load() -> float:
            return sum(
                costs.resource[r] for r in rows if decisions[r] is Subsystem.DEVICE
            )

        if device_load() <= cap:
            continue
        # Move station-feasible tasks to the base station, largest C first.
        movable = [
            r for r in rows
            if decisions[r] is Subsystem.DEVICE and deadline_ok[r, _STATION]
        ]
        for r in _greedy_order(movable, costs.resource, options):
            if device_load() <= cap:
                break
            decisions[r] = Subsystem.STATION
        # Still over: cancel the largest remaining local tasks.
        if device_load() > cap:
            local = [r for r in rows if decisions[r] is Subsystem.DEVICE]
            for r in _greedy_order(local, costs.resource, options):
                if device_load() <= cap:
                    break
                decisions[r] = Subsystem.CANCELLED

    # Step 6: station resource repair.
    def station_load() -> float:
        return sum(
            costs.resource[r] for r in range(n) if decisions[r] is Subsystem.STATION
        )

    if station_load() > station_cap:
        movable = [
            r for r in range(n)
            if decisions[r] is Subsystem.STATION and deadline_ok[r, _CLOUD]
        ]
        for r in _greedy_order(movable, costs.resource, options):
            if station_load() <= station_cap:
                break
            decisions[r] = Subsystem.CLOUD
        if station_load() > station_cap:
            remaining = [
                r for r in range(n) if decisions[r] is Subsystem.STATION
            ]
            for r in _greedy_order(remaining, costs.resource, options):
                if station_load() <= station_cap:
                    break
                decisions[r] = Subsystem.CANCELLED

    final_energy = float(
        sum(
            costs.energy_j[row, decisions[row].column]
            for row in range(n)
            if decisions[row] is not Subsystem.CANCELLED
        )
    )
    delta = final_energy - rounded_energy
    lp_opt = float(lp_result.objective)
    theorem2 = 3.0 + max(delta, 0.0) / lp_opt if lp_opt > 0 else float("inf")
    min_local = float(np.min(costs.energy_j[:, _DEVICE]))
    max_cloud = float(np.max(costs.energy_j[:, _CLOUD]))
    corollary1 = min(theorem2, max_cloud / min_local) if min_local > 0 else theorem2

    report = ClusterReport(
        station_id=station_id,
        num_tasks=n,
        lp_objective_j=lp_opt,
        rounded_energy_j=rounded_energy,
        final_energy_j=final_energy,
        delta_j=delta,
        ratio_bound_theorem2=theorem2,
        ratio_bound_corollary1=corollary1,
        lp_iterations=lp_result.iterations,
        lp_backend=lp_result.backend,
        cancelled_tasks=tuple(
            costs.tasks[row].task_id
            for row in range(n)
            if decisions[row] is Subsystem.CANCELLED
        ),
    )
    return decisions, report


def lp_hta(
    system: MECSystem,
    tasks: Sequence[Task],
    options: Optional[LPHTAOptions] = None,
    context: Optional[RunContext] = None,
) -> HTAReport:
    """Run LP-HTA over a whole MEC system (each cluster independently).

    Section III-A observes that a task can only run on its own device, its
    own base station, or the cloud, so clusters decouple and are solved
    separately; the cloud is shared but unconstrained.

    :param system: the MEC system.
    :param tasks: the holistic tasks to assign.
    :param options: algorithm tunables; defaults to the context's LP
        settings (explicit options win, field for field).
    :param context: run configuration (perf mode, LP defaults, telemetry);
        defaults to the active context.
    """
    context = context if context is not None else current_context()
    if options is None:
        options = _options_from_context(context)
    costs = cluster_costs(system, tasks)
    slices = _cluster_slices(system, tasks, costs)

    lp_results: Optional[List[LPResult]] = None
    if _batching_enabled(context, options, len(slices)):
        lp_results = _solve_p2_batch(
            [(s.costs, s.device_caps, s.station_cap) for s in slices],
            options,
            context,
        )

    decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
    reports: List[ClusterReport] = []
    for index, cluster in enumerate(slices):
        sub_decisions, report = lp_hta_cluster(
            cluster.costs, cluster.device_caps, cluster.station_cap, options,
            station_id=cluster.station_id, context=context,
            lp_result=None if lp_results is None else lp_results[index],
        )
        for local_row, decision in zip(cluster.rows, sub_decisions):
            decisions[local_row] = decision
        reports.append(report)

    return HTAReport(
        assignment=Assignment(costs, decisions),
        clusters=tuple(reports),
    )


def lp_hta_batch(
    jobs: Sequence[Tuple[MECSystem, Sequence[Task]]],
    options: Optional[LPHTAOptions] = None,
    context: Optional[RunContext] = None,
) -> List[HTAReport]:
    """Run LP-HTA over many (system, tasks) inputs with one mega-solve.

    Every cluster of every input is an independent P2 block, so the whole
    job list pools into a single block-diagonal Step-1 solve — this is the
    batch entry point the sweep engine and the DTA candidate loop use to
    amortise per-solve overhead across a column of cells.  Results are
    identical to ``[lp_hta(s, t, ...) for s, t in jobs]`` block for block;
    when batching is off (reference mode, ``lp_batch=False``, non-IPM
    backend, or fewer than two blocks) it literally runs that loop.

    :param jobs: (system, tasks) pairs, each priced and clustered exactly
        as :func:`lp_hta` would.
    :param options: algorithm tunables shared by every job.
    :param context: run configuration; defaults to the active context.
    """
    context = context if context is not None else current_context()
    if options is None:
        options = _options_from_context(context)
    prepared = []
    total_blocks = 0
    for system, tasks in jobs:
        costs = cluster_costs(system, tasks)
        slices = _cluster_slices(system, tasks, costs)
        prepared.append((tasks, costs, slices))
        total_blocks += len(slices)

    lp_results: Optional[List[LPResult]] = None
    if _batching_enabled(context, options, total_blocks):
        lp_results = _solve_p2_batch(
            [
                (s.costs, s.device_caps, s.station_cap)
                for _, _, slices in prepared
                for s in slices
            ],
            options,
            context,
        )

    out: List[HTAReport] = []
    cursor = 0
    for tasks, costs, slices in prepared:
        decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
        reports: List[ClusterReport] = []
        for cluster in slices:
            sub_decisions, report = lp_hta_cluster(
                cluster.costs, cluster.device_caps, cluster.station_cap,
                options, station_id=cluster.station_id, context=context,
                lp_result=None if lp_results is None else lp_results[cursor],
            )
            cursor += 1
            for local_row, decision in zip(cluster.rows, sub_decisions):
                decisions[local_row] = decision
            reports.append(report)
        out.append(
            HTAReport(
                assignment=Assignment(costs, decisions),
                clusters=tuple(reports),
            )
        )
    return out
