"""Decentralized computation-offloading game (the [8]/[9] family).

The paper's related work contrasts LP-HTA with game-theoretic schemes in
which each user picks its own offloading strategy and the system converges
to a Nash equilibrium (Chen et al., "Decentralized computation offloading
game for mobile cloud computing"; Chen et al., "Efficient multi-user
computation offloading for mobile-edge cloud computing").  This module
implements that family as an additional baseline:

- each *task* is a player whose strategies are the three subsystems
  (deadline-infeasible strategies are excluded when any feasible one
  exists);
- a player's cost is its own Section II energy plus a congestion price for
  crowding a capped resource (its device's :math:`max_i`, its station's
  :math:`max_S`) — the decentralised stand-in for constraints C2/C3;
- players run round-robin best-response dynamics until no player moves
  (a Nash equilibrium) or a round cap is hit.

Like the algorithms it models, the scheme is greedy and local: it needs no
global LP, converges quickly in practice, but cannot coordinate the way the
relaxation can — the ablation bench quantifies the gap to LP-HTA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import NUM_SUBSYSTEMS, cluster_costs
from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = ["GameOptions", "GameResult", "best_response_offloading"]

_DEVICE, _STATION, _CLOUD = 0, 1, 2


@dataclass(frozen=True)
class GameOptions:
    """Tunables of the offloading game.

    :param max_rounds: best-response sweeps before giving up on
        convergence (each sweep visits every player once).
    :param hard_constraints: exclude strategies whose resource would
        overflow its cap given everyone else's current choice (the cloud is
        always allowed, so players are never stuck).  With False, overloads
        are merely *priced* via ``congestion_weight`` — the softer
        mechanism of the pricing-based schemes, which can violate C2/C3 at
        equilibrium.
    :param congestion_weight: price per joule-equivalent of resource
        overload (soft mode; also breaks ties in hard mode).
    :param respect_deadlines: exclude deadline-violating strategies when
        the player has at least one feasible strategy (set False to model
        the fully deadline-blind variants of [8]).
    :param tie_tolerance: a player only moves if it saves more than this
        fraction of its current cost (prevents dithering on float ties).
    """

    max_rounds: int = 100
    hard_constraints: bool = True
    congestion_weight: float = 10.0
    respect_deadlines: bool = True
    tie_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if self.congestion_weight < 0:
            raise ValueError("congestion_weight must be non-negative")


@dataclass(frozen=True)
class GameResult:
    """Outcome of the best-response dynamics.

    :param assignment: the final strategy profile.
    :param rounds: best-response sweeps executed.
    :param converged: whether a full sweep passed with no player moving
        (i.e. the profile is a Nash equilibrium of the priced game).
    :param moves: total strategy changes across all sweeps.
    :param total_cost_history: summed player cost after each sweep — the
        quantity the dynamics drive downhill.
    """

    assignment: Assignment
    rounds: int
    converged: bool
    moves: int
    total_cost_history: Tuple[float, ...]


class _GameState:
    """Mutable loads + strategy vector during the dynamics."""

    def __init__(self, system: MECSystem, tasks: Sequence[Task], costs) -> None:
        self.system = system
        self.tasks = tasks
        self.costs = costs
        self.strategy = np.full(len(tasks), _CLOUD, dtype=int)  # start offloaded
        self.device_loads: Dict[int, float] = {d: 0.0 for d in system.devices}
        self.station_loads: Dict[int, float] = {s: 0.0 for s in system.stations}

    def _resource_of(self, row: int, strategy: int) -> Tuple[Dict[int, float], int, float]:
        """(load map, key, cap) of the capped resource a strategy uses."""
        task = self.tasks[row]
        if strategy == _DEVICE:
            owner = task.owner_device_id
            return self.device_loads, owner, self.system.device(owner).max_resource
        if strategy == _STATION:
            station = self.system.cluster_of(task.owner_device_id)
            return self.station_loads, station, self.system.station(station).max_resource
        return {}, -1, float("inf")

    def apply(self, row: int, strategy: int, sign: float) -> None:
        """Add (+1) or remove (-1) a task's demand from its resource."""
        loads, key, _ = self._resource_of(row, strategy)
        if key >= 0:
            loads[key] += sign * float(self.costs.resource[row])

    def congestion_price(self, row: int, strategy: int, weight: float) -> float:
        """Price of the overload this strategy would cause (self included)."""
        loads, key, cap = self._resource_of(row, strategy)
        if key < 0 or not np.isfinite(cap):
            return 0.0
        demand = float(self.costs.resource[row])
        overload = max(0.0, loads[key] + demand - cap)
        if overload <= 0.0:
            return 0.0
        # Charge proportionally to the player's share of the overload.
        return weight * overload * demand / max(cap, 1e-12)

    def player_cost(self, row: int, strategy: int, options: GameOptions) -> float:
        """Energy plus congestion price of playing ``strategy``."""
        return float(self.costs.energy_j[row, strategy]) + self.congestion_price(
            row, strategy, options.congestion_weight
        )

    def _fits(self, row: int, strategy: int) -> bool:
        """Whether the strategy's resource has room for this player."""
        loads, key, cap = self._resource_of(row, strategy)
        if key < 0:
            return True
        return loads[key] + float(self.costs.resource[row]) <= cap + 1e-12

    def allowed_strategies(self, row: int, options: GameOptions) -> Tuple[int, ...]:
        """Strategies the player may consider (call with own demand removed)."""
        if options.respect_deadlines:
            candidates = self.costs.feasible_subsystems(row)
            if not candidates:
                candidates = tuple(range(NUM_SUBSYSTEMS))
        else:
            candidates = tuple(range(NUM_SUBSYSTEMS))
        if options.hard_constraints:
            fitting = tuple(l for l in candidates if self._fits(row, l))
            # The cloud is uncapped, so the player always has an out.
            candidates = fitting if fitting else (_CLOUD,)
        return candidates

    def total_cost(self, options: GameOptions) -> float:
        """Sum of all players' current costs."""
        return sum(
            self.player_cost(row, int(self.strategy[row]), options)
            for row in range(len(self.tasks))
        )


def best_response_offloading(
    system: MECSystem,
    tasks: Sequence[Task],
    options: GameOptions = GameOptions(),
) -> GameResult:
    """Run round-robin best-response dynamics to a Nash equilibrium.

    Players start fully offloaded to the cloud (every strategy profile is
    valid there: the cloud is uncapped) and take turns switching to their
    cheapest strategy given everyone else's choice.

    :param system: the MEC system.
    :param tasks: the tasks (= players).
    :param options: game tunables.
    """
    costs = cluster_costs(system, tasks)
    state = _GameState(system, tasks, costs)
    for row in range(len(tasks)):
        state.apply(row, int(state.strategy[row]), +1.0)

    history: List[float] = []
    total_moves = 0
    converged = False
    rounds = 0
    for rounds in range(1, options.max_rounds + 1):
        moves = 0
        for row in range(len(tasks)):
            current = int(state.strategy[row])
            # Evaluate alternatives with this player's demand removed.
            state.apply(row, current, -1.0)
            candidates = state.allowed_strategies(row, options)
            best = min(
                candidates, key=lambda l: state.player_cost(row, l, options)
            )
            current_cost = state.player_cost(row, current, options)
            best_cost = state.player_cost(row, best, options)
            if best != current and best_cost < current_cost * (
                1.0 - options.tie_tolerance
            ):
                state.strategy[row] = best
                moves += 1
            state.apply(row, int(state.strategy[row]), +1.0)
        total_moves += moves
        history.append(state.total_cost(options))
        if moves == 0:
            converged = True
            break

    assignment = Assignment(
        costs, [Subsystem(int(l) + 1) for l in state.strategy]
    )
    return GameResult(
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        moves=total_moves,
        total_cost_history=tuple(history),
    )
