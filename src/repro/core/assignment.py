"""Assignment results: which subsystem runs each task, and derived metrics.

An :class:`Assignment` is the output of every algorithm in this library
(LP-HTA, the baselines, the exact solvers, and the rearranged divisible-task
schedules).  It pairs a decision per task with the cost table that priced the
tasks, so energy/latency/constraint metrics are computed consistently no
matter which algorithm produced the decisions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro import perf
from repro.core.costs import NUM_SUBSYSTEMS, ClusterCosts

__all__ = ["Assignment", "AssignmentStats", "Subsystem"]


class Subsystem(enum.IntEnum):
    """Where a task runs: the paper's indicator index *l* (plus CANCELLED).

    The integer values match the paper's l = 1, 2, 3; CANCELLED covers tasks
    the algorithm dropped (Steps 4–6 of LP-HTA "cancel and inform users").
    """

    CANCELLED = 0
    DEVICE = 1
    STATION = 2
    CLOUD = 3

    @property
    def column(self) -> int:
        """0-based column into the cost arrays (only for assigned tasks)."""
        if self is Subsystem.CANCELLED:
            raise ValueError("cancelled tasks have no cost column")
        return int(self) - 1


@dataclass(frozen=True)
class AssignmentStats:
    """Aggregate metrics of an assignment (the quantities the paper plots).

    :param total_energy_j: summed :math:`E_{ijl}` over assigned tasks.
    :param mean_latency_s: average :math:`t_{ijl}` over assigned tasks.
    :param max_latency_s: worst-case latency over assigned tasks.
    :param unsatisfied_rate: fraction of all tasks that are cancelled or miss
        their deadline (the Fig. 3 metric).
    :param cancelled: number of cancelled tasks.
    :param per_subsystem: task counts keyed by subsystem.
    """

    total_energy_j: float
    mean_latency_s: float
    max_latency_s: float
    unsatisfied_rate: float
    cancelled: int
    per_subsystem: Mapping[Subsystem, int]


class Assignment:
    """A per-task placement decision over one cost table.

    :param costs: the cost table pricing the tasks.
    :param decisions: subsystem per task, in the cost table's row order.
    """

    def __init__(self, costs: ClusterCosts, decisions: Iterable[Subsystem]) -> None:
        self.costs = costs
        self.decisions: Tuple[Subsystem, ...] = tuple(
            d if type(d) is Subsystem else Subsystem(d) for d in decisions
        )
        if len(self.decisions) != costs.num_tasks:
            raise ValueError(
                f"{len(self.decisions)} decisions for {costs.num_tasks} tasks"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, costs: ClusterCosts, subsystem: Subsystem) -> "Assignment":
        """Assign every task to the same subsystem."""
        return cls(costs, [subsystem] * costs.num_tasks)

    @classmethod
    def from_indicator(cls, costs: ClusterCosts, x: np.ndarray) -> "Assignment":
        """Build from a binary indicator matrix of shape (tasks, 3).

        Rows summing to zero are treated as cancelled; rows must never select
        more than one subsystem (constraint C4).
        """
        if x.shape != (costs.num_tasks, NUM_SUBSYSTEMS):
            raise ValueError(f"indicator must be ({costs.num_tasks}, 3), got {x.shape}")
        decisions: List[Subsystem] = []
        for row in range(costs.num_tasks):
            chosen = np.flatnonzero(x[row])
            if len(chosen) > 1:
                raise ValueError(f"task row {row} assigned to multiple subsystems")
            if len(chosen) == 0:
                decisions.append(Subsystem.CANCELLED)
            else:
                decisions.append(Subsystem(int(chosen[0]) + 1))
        return cls(costs, decisions)

    def to_indicator(self) -> np.ndarray:
        """The binary matrix :math:`x_{ijl}` (cancelled rows are all-zero)."""
        x = np.zeros((self.costs.num_tasks, NUM_SUBSYSTEMS))
        for row, decision in enumerate(self.decisions):
            if decision is not Subsystem.CANCELLED:
                x[row, decision.column] = 1.0
        return x

    def replace(self, row: int, decision: Subsystem) -> "Assignment":
        """A copy with task ``row`` reassigned to ``decision``."""
        decisions = list(self.decisions)
        decisions[row] = decision
        return Assignment(self.costs, decisions)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def task_energy_j(self, row: int) -> float:
        """Energy of task ``row`` under its decision (0 if cancelled)."""
        decision = self.decisions[row]
        if decision is Subsystem.CANCELLED:
            return 0.0
        return float(self.costs.energy_j[row, decision.column])

    def task_latency_s(self, row: int) -> Optional[float]:
        """Latency of task ``row``, or ``None`` if cancelled."""
        decision = self.decisions[row]
        if decision is Subsystem.CANCELLED:
            return None
        return float(self.costs.time_s[row, decision.column])

    def _assigned_rows_cols(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (rows, columns) index arrays of the assigned tasks.

        Row order is preserved, so metrics built from these arrays see the
        same value sequence as the per-row accessors.
        """
        cached = self.__dict__.get("_rows_cols")
        if cached is None:
            cols = np.fromiter(
                (int(d) - 1 for d in self.decisions),
                dtype=np.intp,
                count=len(self.decisions),
            )
            rows = np.flatnonzero(cols >= 0)
            cached = (rows, cols[rows])
            self.__dict__["_rows_cols"] = cached
        return cached

    def total_energy_j(self) -> float:
        """Total system energy :math:`\\sum E_{ijl} x_{ijl}` (the objective)."""
        if perf.reference_mode():
            return sum(self.task_energy_j(row) for row in range(self.costs.num_tasks))
        rows, cols = self._assigned_rows_cols()
        # Python sum over the row-ordered values: same sequential float
        # accumulation as summing task_energy_j per row.
        return float(sum(self.costs.energy_j[rows, cols].tolist()))

    def latencies_s(self) -> List[float]:
        """Latencies of the assigned (non-cancelled) tasks."""
        if perf.reference_mode():
            values = (self.task_latency_s(row) for row in range(self.costs.num_tasks))
            return [v for v in values if v is not None]
        rows, cols = self._assigned_rows_cols()
        return self.costs.time_s[rows, cols].tolist()

    def meets_deadline(self, row: int) -> bool:
        """Whether task ``row`` is assigned and finishes by its deadline."""
        latency = self.task_latency_s(row)
        return latency is not None and latency <= self.costs.deadline_s[row]

    def unsatisfied_rate(self) -> float:
        """Fraction of tasks cancelled or missing their deadline (Fig. 3)."""
        if self.costs.num_tasks == 0:
            return 0.0
        if perf.reference_mode():
            unsatisfied = sum(
                1
                for row in range(self.costs.num_tasks)
                if not self.meets_deadline(row)
            )
            return unsatisfied / self.costs.num_tasks
        rows, cols = self._assigned_rows_cols()
        latencies = self.costs.time_s[rows, cols]
        met = int(np.count_nonzero(latencies <= self.costs.deadline_s[rows]))
        return (self.costs.num_tasks - met) / self.costs.num_tasks

    def device_loads(self) -> Dict[int, float]:
        """Resource load :math:`\\sum_j C_{ij} x_{ij1}` per device."""
        loads: Dict[int, float] = {}
        for row, decision in enumerate(self.decisions):
            owner = self.costs.tasks[row].owner_device_id
            loads.setdefault(owner, 0.0)
            if decision is Subsystem.DEVICE:
                loads[owner] += float(self.costs.resource[row])
        return loads

    def station_load(self) -> float:
        """Resource load :math:`\\sum_{ij} C_{ij} x_{ij2}` on the base station."""
        return sum(
            float(self.costs.resource[row])
            for row, decision in enumerate(self.decisions)
            if decision is Subsystem.STATION
        )

    def involved_devices(self) -> int:
        """Number of distinct devices that execute at least one task."""
        return len(
            {
                self.costs.tasks[row].owner_device_id
                for row, decision in enumerate(self.decisions)
                if decision is Subsystem.DEVICE
            }
        )

    def subsystem_counts(self) -> Dict[Subsystem, int]:
        """Task counts per subsystem (cancelled included)."""
        counts = {subsystem: 0 for subsystem in Subsystem}
        for decision in self.decisions:
            counts[decision] += 1
        return counts

    def stats(self) -> AssignmentStats:
        """All aggregate metrics in one object."""
        if perf.reference_mode():
            latencies = self.latencies_s()
            return AssignmentStats(
                total_energy_j=self.total_energy_j(),
                mean_latency_s=float(np.mean(latencies)) if latencies else 0.0,
                max_latency_s=float(np.max(latencies)) if latencies else 0.0,
                unsatisfied_rate=self.unsatisfied_rate(),
                cancelled=self.subsystem_counts()[Subsystem.CANCELLED],
                per_subsystem=self.subsystem_counts(),
            )
        rows, cols = self._assigned_rows_cols()
        latencies = self.costs.time_s[rows, cols]
        counts = self.subsystem_counts()
        return AssignmentStats(
            total_energy_j=self.total_energy_j(),
            mean_latency_s=float(np.mean(latencies)) if latencies.size else 0.0,
            max_latency_s=float(np.max(latencies)) if latencies.size else 0.0,
            unsatisfied_rate=self.unsatisfied_rate(),
            cancelled=counts[Subsystem.CANCELLED],
            per_subsystem=counts,
        )

    # ------------------------------------------------------------------
    # Constraint checking
    # ------------------------------------------------------------------

    def violations(
        self,
        device_caps: Mapping[int, float],
        station_cap: float,
        require_all_assigned: bool = False,
    ) -> List[str]:
        """Human-readable list of violated HTA constraints (empty if feasible).

        :param device_caps: :math:`max_i` per device id (constraint C2).
        :param station_cap: :math:`max_S` (constraint C3).
        :param require_all_assigned: if true, cancelled tasks violate C4.
        """
        problems: List[str] = []
        for row, decision in enumerate(self.decisions):
            task = self.costs.tasks[row]
            if decision is Subsystem.CANCELLED:
                if require_all_assigned:
                    problems.append(f"task {task.task_id}: cancelled (violates C4)")
                continue
            latency = self.costs.time_s[row, decision.column]
            if latency > self.costs.deadline_s[row] + 1e-12:
                problems.append(
                    f"task {task.task_id}: latency {latency:.4f}s exceeds "
                    f"deadline {self.costs.deadline_s[row]:.4f}s (C1)"
                )
        for device_id, load in self.device_loads().items():
            cap = device_caps.get(device_id, float("inf"))
            if load > cap + 1e-9:
                problems.append(
                    f"device {device_id}: load {load:.1f} exceeds max_i {cap:.1f} (C2)"
                )
        if self.station_load() > station_cap + 1e-9:
            problems.append(
                f"station: load {self.station_load():.1f} exceeds "
                f"max_S {station_cap:.1f} (C3)"
            )
        return problems

    def __repr__(self) -> str:
        counts = self.subsystem_counts()
        return (
            f"Assignment(tasks={self.costs.num_tasks}, "
            f"device={counts[Subsystem.DEVICE]}, station={counts[Subsystem.STATION]}, "
            f"cloud={counts[Subsystem.CLOUD]}, cancelled={counts[Subsystem.CANCELLED]})"
        )
