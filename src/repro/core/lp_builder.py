"""Builder for the relaxed linear program P2 of Section III-A.

Variables are the relaxed indicators :math:`\\xi[3m(i-1) + 3(j-1) + l]`
∈ [0, 1], one per (task, subsystem) pair.  The constraint blocks map to the
paper's matrices:

- **A1/b1** (deadlines, C1): ``t_ijl · ξ_ijl ≤ T_ij`` — a diagonal system,
  i.e. per-variable upper bounds ``ξ_ijl ≤ min(1, T_ij / t_ijl)``.
- **A2/b2** (device resources, C2): ``Σ_j C_ij ξ_ij1 ≤ max_i`` per device.
- **A3/b3** (station resources, C3): ``Σ_ij C_ij ξ_ij2 ≤ max_S``.
- **A4/b4** (completeness, C4): ``Σ_l ξ_ijl = 1`` per task.

Tasks for which *no* subsystem meets the deadline would make the deadline
bounds clash with C4 (the bounds sum below one).  The paper's algorithm
cancels such tasks in Step 4; to keep Step 1 feasible we relax their bounds
to 1 and let Step 4 do the cancelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro import perf

from repro.context import current_context
from repro.core.costs import NUM_SUBSYSTEMS, ClusterCosts
from repro.obs.tracer import staged
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult
from repro.lp.structured import GroupedBoundedLP

__all__ = [
    "BatchedProblem",
    "P2Build",
    "P2StructuredBuild",
    "build_p2",
    "build_p2_structured",
    "reshape_solution",
]


@dataclass(frozen=True)
class P2Build:
    """The relaxed LP plus bookkeeping needed by the rounding steps.

    :param lp: the relaxation P2 as a :class:`LinearProgram`.
    :param doomed_rows: task rows with no deadline-feasible subsystem (their
        bounds were relaxed; Step 4 will cancel them).
    """

    lp: LinearProgram
    doomed_rows: Tuple[int, ...]


def _flat(row: int, subsystem: int) -> int:
    """Flattened variable index of (task row, subsystem column)."""
    return NUM_SUBSYSTEMS * row + subsystem


def _deadline_bounds(
    costs: ClusterCosts, relax_deadline_bounds: bool
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """A1/b1 as per-variable upper bounds, plus the hopeless task rows.

    With ``relax_deadline_bounds`` every bound is 1: used as a fallback when
    the deadline bounds clash with the resource rows and make P2 infeasible
    (a case the paper does not address) — Step 4 then enforces C1 instead.
    """
    n_tasks = costs.num_tasks
    upper = np.ones(NUM_SUBSYSTEMS * n_tasks)
    if perf.reference_mode():
        doomed_list: List[int] = []
        for row in range(n_tasks):
            deadline_row = costs.deadline_s[row]
            if not costs.feasible_subsystems(row):
                doomed_list.append(row)
                continue  # bounds stay at 1; Step 4 cancels this task
            if relax_deadline_bounds:
                continue
            for l in range(NUM_SUBSYSTEMS):
                t = costs.time_s[row, l]
                if t > 0:
                    upper[_flat(row, l)] = min(1.0, deadline_row / t)
        return upper, tuple(doomed_list)
    if n_tasks == 0:
        return upper, ()
    time_s = costs.time_s
    deadline = costs.deadline_s
    feasible = time_s <= deadline[:, None]
    doomed_mask = ~feasible.any(axis=1)
    doomed = tuple(int(row) for row in np.flatnonzero(doomed_mask))
    if not relax_deadline_bounds:
        # min(1.0, deadline / t) wherever t > 0; doomed rows stay at 1
        # (Step 4 cancels them), exactly as the per-row loop computed.
        with np.errstate(divide="ignore", invalid="ignore"):
            bounds = np.minimum(1.0, deadline[:, None] / time_s)
        bounds = np.where(time_s > 0, bounds, 1.0)
        bounds[doomed_mask] = 1.0
        upper = bounds.reshape(-1)
    return upper, doomed


def _assemble_ub_sparse(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    n_tasks: int,
    n_vars: int,
) -> Tuple[Optional[sp.csr_array], Optional[np.ndarray]]:
    """A2/A3 stacked as one CSR block, entry-for-entry equal to the dense
    assembly (rows for infinite caps are skipped rather than filtered out,
    which yields the same matrix).

    Returns ``(None, None)`` in exactly the cases the dense path collapses
    ``a_ub`` to ``None``: no variables or no finite-cap rows.
    """
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    b_ub: List[float] = []
    row = 0
    # A2 — per-device resource caps on the l=1 columns, sorted device order.
    owner_rows = costs.owner_rows()
    for device_id in sorted(owner_rows):
        cap = device_caps.get(device_id, float("inf"))
        if not np.isfinite(cap):
            continue
        task_rows = np.asarray(owner_rows[device_id], dtype=np.intp)
        rows_parts.append(np.full(task_rows.shape[0], row, dtype=np.intp))
        cols_parts.append(task_rows * NUM_SUBSYSTEMS)  # l = 0
        data_parts.append(costs.resource[task_rows])
        b_ub.append(cap)
        row += 1
    # A3 — the single station resource row on the l=2 columns.
    if np.isfinite(station_cap):
        rows_parts.append(np.full(n_tasks, row, dtype=np.intp))
        cols_parts.append(np.arange(1, n_vars, NUM_SUBSYSTEMS, dtype=np.intp))
        data_parts.append(np.asarray(costs.resource, dtype=float))
        b_ub.append(station_cap)
        row += 1
    if row == 0 or n_vars == 0:
        return None, None
    a_ub = sp.csr_array(
        sp.coo_array(
            (
                np.concatenate(data_parts),
                (np.concatenate(rows_parts), np.concatenate(cols_parts)),
            ),
            shape=(row, n_vars),
        )
    )
    return a_ub, np.asarray(b_ub, dtype=float)


@staged("build")
def build_p2(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    relax_deadline_bounds: bool = False,
) -> P2Build:
    """Assemble P2 for one cluster's cost table.

    :param costs: the priced tasks of the cluster.
    :param device_caps: :math:`max_i` per device id.
    :param station_cap: :math:`max_S` for the cluster's base station.
    :param relax_deadline_bounds: drop the A1 bounds (see
        :func:`_deadline_bounds`).
    """
    n_tasks = costs.num_tasks
    n_vars = NUM_SUBSYSTEMS * n_tasks

    objective = costs.energy_j.reshape(-1).astype(float)
    upper, doomed = _deadline_bounds(costs, relax_deadline_bounds)

    if not perf.reference_mode() and current_context().lp_sparse:
        a_ub, b_ub = _assemble_ub_sparse(
            costs, device_caps, station_cap, n_tasks, n_vars
        )
        # A4/b4 — each task's three consecutive columns sum to one: CSR with
        # three entries per row, written down directly.
        a4 = sp.csr_array(
            (
                np.ones(n_vars),
                np.arange(n_vars),
                np.arange(0, n_vars + 1, NUM_SUBSYSTEMS),
            ),
            shape=(n_tasks, n_vars),
        )
        lp = LinearProgram(
            c=objective,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a4,
            b_eq=np.ones(n_tasks),
            upper_bounds=upper,
        )
        return P2Build(lp=lp, doomed_rows=doomed)

    # A2/b2 — per-device resource caps on the l=1 columns.
    owner_rows = costs.owner_rows()
    device_ids = sorted(owner_rows)
    a2 = np.zeros((len(device_ids), n_vars))
    b2 = np.zeros(len(device_ids))
    for idx, device_id in enumerate(device_ids):
        for row in owner_rows[device_id]:
            a2[idx, _flat(row, 0)] = costs.resource[row]
        b2[idx] = device_caps.get(device_id, float("inf"))
    finite_rows = np.isfinite(b2)
    a2, b2 = a2[finite_rows], b2[finite_rows]

    # A3/b3 — the single station resource row on the l=2 columns.
    a3 = np.zeros((1, n_vars))
    for row in range(n_tasks):
        a3[0, _flat(row, 1)] = costs.resource[row]
    b3 = np.array([station_cap])
    if not np.isfinite(station_cap):
        a3 = np.zeros((0, n_vars))
        b3 = np.zeros(0)

    a_ub = np.vstack([a2, a3]) if a2.size or a3.size else None
    b_ub = np.concatenate([b2, b3]) if a2.size or a3.size else None
    if a_ub is not None and a_ub.shape[0] == 0:
        a_ub, b_ub = None, None

    # A4/b4 — each task fully assigned.
    a4 = np.zeros((n_tasks, n_vars))
    for row in range(n_tasks):
        a4[row, _flat(row, 0) : _flat(row, 0) + NUM_SUBSYSTEMS] = 1.0
    b4 = np.ones(n_tasks)

    lp = LinearProgram(
        c=objective,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a4,
        b_eq=b4,
        upper_bounds=upper,
    )
    return P2Build(lp=lp, doomed_rows=doomed)


@dataclass(frozen=True)
class P2StructuredBuild:
    """P2 in the grouped-bounded form for the structured IPM.

    :param lp: the relaxation as a :class:`GroupedBoundedLP` (one equality
        group per task, coupling rows for C2/C3).
    :param doomed_rows: task rows with no deadline-feasible subsystem.
    """

    lp: GroupedBoundedLP
    doomed_rows: Tuple[int, ...]


@staged("build")
def build_p2_structured(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    relax_deadline_bounds: bool = False,
) -> P2StructuredBuild:
    """Assemble P2 in the form the structured IPM consumes.

    Mathematically identical to :func:`build_p2`; the groups are the C4 rows
    and the coupling block stacks the finite C2 rows and the C3 row.

    :param costs: the priced tasks of the cluster.
    :param device_caps: :math:`max_i` per device id.
    :param station_cap: :math:`max_S` for the cluster's base station.
    :param relax_deadline_bounds: drop the A1 bounds (see
        :func:`_deadline_bounds`).
    """
    n_tasks = costs.num_tasks
    n_vars = NUM_SUBSYSTEMS * n_tasks

    objective = costs.energy_j.reshape(-1).astype(float)
    group_index = np.repeat(np.arange(n_tasks), NUM_SUBSYSTEMS)
    group_rhs = np.ones(n_tasks)
    upper, doomed = _deadline_bounds(costs, relax_deadline_bounds)

    reference = perf.reference_mode()
    coupling_rows: List[np.ndarray] = []
    coupling_rhs: List[float] = []
    for device_id, rows in sorted(costs.owner_rows().items()):
        cap = device_caps.get(device_id, float("inf"))
        if not np.isfinite(cap):
            continue
        row_vec = np.zeros(n_vars)
        if reference:
            for r in rows:
                row_vec[_flat(r, 0)] = costs.resource[r]
        else:
            row_vec[rows * NUM_SUBSYSTEMS] = costs.resource[rows]  # l = 0
        coupling_rows.append(row_vec)
        coupling_rhs.append(cap)
    if np.isfinite(station_cap):
        row_vec = np.zeros(n_vars)
        if reference:
            for r in range(n_tasks):
                row_vec[_flat(r, 1)] = costs.resource[r]
        else:
            row_vec[1::NUM_SUBSYSTEMS] = costs.resource  # l = 1 columns
        coupling_rows.append(row_vec)
        coupling_rhs.append(station_cap)

    lp = GroupedBoundedLP(
        c=objective,
        group_index=group_index,
        group_rhs=group_rhs,
        coupling_a=np.vstack(coupling_rows) if coupling_rows else None,
        coupling_b=np.asarray(coupling_rhs) if coupling_rows else None,
        upper=upper,
    )
    return P2StructuredBuild(lp=lp, doomed_rows=doomed)


class BatchedProblem:
    """Many independent LPs stacked into one block-diagonal mega-problem.

    Each input :class:`LinearProgram` is converted to its standard form;
    the joint problem places the per-block constraint matrices on the
    diagonal (COO triplets shifted by the variable/constraint offsets) and
    concatenates the per-block objectives and right-hand sides.  Because
    the blocks share no rows or columns, a solution of the joint problem
    restricted to a block's variable slice is a solution of that block —
    :meth:`split` and :meth:`split_result` recover the per-instance views.

    The joint matrix is assembled lazily: the lockstep batch solvers only
    need the per-block standard forms plus the offset bookkeeping, so a
    batch that never goes through a single joint solve never pays for the
    stacked CSR.

    :param problems: independent bounded-variable LPs (any mix of sizes).
    """

    def __init__(self, problems: Sequence[LinearProgram]) -> None:
        self.problems: Tuple[LinearProgram, ...] = tuple(problems)
        self.standard: Tuple[StandardFormLP, ...] = tuple(
            problem.to_standard_form() for problem in self.problems
        )
        self.var_offsets: np.ndarray = np.concatenate(
            ([0], np.cumsum([sf.num_vars for sf in self.standard]))
        ).astype(np.intp)
        self.row_offsets: np.ndarray = np.concatenate(
            ([0], np.cumsum([sf.num_rows for sf in self.standard]))
        ).astype(np.intp)
        self._joint: Optional[StandardFormLP] = None

    @property
    def num_blocks(self) -> int:
        """Number of stacked instances."""
        return len(self.standard)

    @property
    def num_vars(self) -> int:
        """Total variables (original + slack) across all blocks."""
        return int(self.var_offsets[-1])

    @property
    def num_rows(self) -> int:
        """Total equality rows across all blocks."""
        return int(self.row_offsets[-1])

    def block_var_slice(self, index: int) -> slice:
        """The joint-variable slice holding block ``index``'s variables."""
        return slice(int(self.var_offsets[index]), int(self.var_offsets[index + 1]))

    def block_row_slice(self, index: int) -> slice:
        """The joint-row slice holding block ``index``'s constraints."""
        return slice(int(self.row_offsets[index]), int(self.row_offsets[index + 1]))

    def joint(self) -> StandardFormLP:
        """The block-diagonal standard form (lazily assembled, cached).

        Pure placement: every block's COO triplets are shifted by its
        offsets and concatenated, so the joint matrix's entries are
        entry-for-entry the per-block ones — no summation, no reordering
        within a block.
        """
        if self._joint is None:
            rows_parts: List[np.ndarray] = []
            cols_parts: List[np.ndarray] = []
            data_parts: List[np.ndarray] = []
            for index, sf in enumerate(self.standard):
                coo = sp.coo_array(sf.a)
                rows_parts.append(coo.row + self.row_offsets[index])
                cols_parts.append(coo.col + self.var_offsets[index])
                data_parts.append(coo.data)
            shape = (self.num_rows, self.num_vars)
            if rows_parts:
                a = sp.csr_array(
                    sp.coo_array(
                        (
                            np.concatenate(data_parts),
                            (
                                np.concatenate(rows_parts),
                                np.concatenate(cols_parts),
                            ),
                        ),
                        shape=shape,
                    )
                )
            else:
                a = sp.csr_array(shape, dtype=float)
            c = (
                np.concatenate([sf.c for sf in self.standard])
                if self.standard
                else np.zeros(0)
            )
            b = (
                np.concatenate([sf.b for sf in self.standard])
                if self.standard
                else np.zeros(0)
            )
            self._joint = StandardFormLP(
                c=c, a=a, b=b, num_original=self.num_vars
            )
        return self._joint

    def split(self, x: np.ndarray) -> List[np.ndarray]:
        """Per-block slices of a joint standard-form solution (copies)."""
        return [
            np.asarray(x[self.block_var_slice(index)], dtype=float).copy()
            for index in range(self.num_blocks)
        ]

    def split_result(self, result: LPResult) -> List[LPResult]:
        """Per-instance :class:`LPResult` views of a joint solve.

        Successful joint solutions are sliced per block, projected back to
        each instance's original variables, and re-priced with the
        instance's own objective; failures propagate unchanged to every
        block.
        """
        out: List[LPResult] = []
        for index, (problem, sf) in enumerate(zip(self.problems, self.standard)):
            if result.x is None:
                out.append(
                    LPResult(
                        status=result.status,
                        x=None,
                        objective=float("nan"),
                        iterations=result.iterations,
                        backend=result.backend,
                        message=result.message,
                    )
                )
                continue
            x_std = np.asarray(
                result.x[self.block_var_slice(index)], dtype=float
            )
            x_orig = sf.extract_original(x_std)
            out.append(
                LPResult(
                    status=result.status,
                    x=x_orig,
                    objective=problem.objective(x_orig),
                    iterations=result.iterations,
                    backend=result.backend,
                    message=result.message,
                )
            )
        return out


def reshape_solution(xi: np.ndarray, num_tasks: int) -> np.ndarray:
    """Step 2: the fractional matrix **X** of shape (tasks, 3) from ξ."""
    expected = NUM_SUBSYSTEMS * num_tasks
    if xi.shape != (expected,):
        raise ValueError(f"solution must have length {expected}, got {xi.shape}")
    return xi.reshape(num_tasks, NUM_SUBSYSTEMS)
