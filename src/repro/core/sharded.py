"""LP-HTA over a sharded system, with Lagrangian cloud-budget coordination.

The monolithic :func:`repro.core.hta.lp_hta` already solves clusters
independently; a shard is a group of whole clusters
(:mod:`repro.system.sharding`), so with the paper's uncapped cloud the
sharded solve is *literally* the monolithic solve regrouped:

- each shard view is a standalone :class:`~repro.system.topology.MECSystem`
  whose cost rows are bitwise equal to the monolithic table's rows (halo
  devices carry the external-source geometry across the shard boundary),
- every cluster of every shard pools into the same block-diagonal
  mega-solve (:func:`repro.core.hta.lp_hta_batch`), whose per-block results
  are independent of batch composition,
- concatenating the shard outputs in sorted-station order reproduces the
  monolithic cluster order, so the final report is bit-identical.

With a *finite* shared cloud budget the shards couple, and the solver runs
a capacity-splitting outer loop through
:func:`repro.core.lagrangian.coordinate_shared_capacity`: the cloud column
is priced at ν per resource unit, the priced per-cluster relaxations
decompose again (and batch again), the fractional cloud load drives a
projected-subgradient update of ν, and each iteration recovers a feasible
primal by priced rounding plus a global largest-first cloud-overflow
repair.  Weak duality makes the best dual value a lower bound, so the
returned report carries an honest duality gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import ClusterCosts, cluster_costs
from repro.core.hta import (
    ClusterReport,
    HTAReport,
    LPHTAOptions,
    _batching_enabled,
    _cluster_slices,
    _options_from_context,
    _solve_p2,
    _solve_p2_batch,
    lp_hta_batch,
    lp_hta_cluster,
)
from repro.core.lagrangian import (
    CoordinatorOptions,
    coordinate_shared_capacity,
    guarded_relative_gap,
)
from repro.core.lp_builder import reshape_solution
from repro.core.task import Task
from repro.system.sharding import ShardSpec, ShardedSystem
from repro.system.topology import MECSystem

__all__ = ["ShardedHTAReport", "lp_hta_sharded"]

_DEVICE, _STATION, _CLOUD = 0, 1, 2


@dataclass(frozen=True)
class ShardedHTAReport(HTAReport):
    """An :class:`~repro.core.hta.HTAReport` plus shard/coordinator facts.

    The inherited ``clusters`` always describe the ν = 0 (unpriced)
    per-cluster solves — for an uncapped cloud these are the final solves;
    under a binding budget they are the uncoordinated baseline while the
    assignment itself comes from the best coordinated iteration.

    :param num_shards: shards the system was split into.
    :param outer_iterations: coordinator iterations run (0 when the cloud
        budget is infinite and no coordination was needed).
    :param best_dual_j: best Lagrangian dual value — a lower bound on the
        (capacity-constrained) optimum; equals the LP bound when ν = 0.
    :param cloud_capacity: the shared cloud budget.
    :param cloud_load: resource the returned assignment puts on the cloud.
    :param dual_history: dual value per outer iteration.
    """

    num_shards: int = 1
    outer_iterations: int = 0
    best_dual_j: float = 0.0
    cloud_capacity: float = float("inf")
    cloud_load: float = 0.0
    dual_history: Tuple[float, ...] = ()

    @property
    def primal_energy_j(self) -> float:
        """Energy of the returned assignment."""
        return self.assignment.total_energy_j()

    @property
    def duality_gap_j(self) -> float:
        """primal − best dual.

        Non-negative up to solver tolerance whenever the repair cancelled
        nothing; cancellations can push the primal energy below the bound
        (the bound prices *served* work), which the relative gap guard
        treats as exact.
        """
        return self.primal_energy_j - self.best_dual_j

    @property
    def relative_gap(self) -> float:
        """Duality gap relative to the dual bound (guarded for the
        degenerate zero-bound case)."""
        return guarded_relative_gap(self.duality_gap_j, self.best_dual_j)


def _cloud_load(costs: ClusterCosts, decisions: Sequence[Subsystem]) -> float:
    """Resource the decisions place on the cloud."""
    return float(
        sum(
            float(costs.resource[row])
            for row, decision in enumerate(decisions)
            if decision is Subsystem.CLOUD
        )
    )


def _repair_cloud_overflow(
    costs: ClusterCosts,
    decisions: List[Subsystem],
    system: MECSystem,
    capacity: float,
) -> None:
    """Global Step-6 analogue for the shared cloud budget (in place).

    Largest-C-first over the cloud-assigned rows: pull each back to its
    base station if the deadline and the station's residual capacity
    allow, else to its own device under the same conditions, else cancel.
    Mirrors the paper's repair style (greedy by resource occupation,
    deterministic order) one level up.
    """
    load = _cloud_load(costs, decisions)
    if load <= capacity:
        return
    deadline_ok = costs.time_s <= costs.deadline_s[:, None]
    station_load: Dict[int, float] = {}
    device_load: Dict[int, float] = {}
    for row, decision in enumerate(decisions):
        owner = costs.tasks[row].owner_device_id
        if decision is Subsystem.STATION:
            station_id = system.cluster_of(owner)
            station_load[station_id] = (
                station_load.get(station_id, 0.0) + float(costs.resource[row])
            )
        elif decision is Subsystem.DEVICE:
            device_load[owner] = device_load.get(owner, 0.0) + float(
                costs.resource[row]
            )
    cloud_rows = [
        row for row, decision in enumerate(decisions) if decision is Subsystem.CLOUD
    ]
    for row in sorted(cloud_rows, key=lambda r: (-float(costs.resource[r]), r)):
        if load <= capacity:
            break
        demand = float(costs.resource[row])
        owner = costs.tasks[row].owner_device_id
        station_id = system.cluster_of(owner)
        if (
            deadline_ok[row, _STATION]
            and station_load.get(station_id, 0.0) + demand
            <= system.station(station_id).max_resource
        ):
            decisions[row] = Subsystem.STATION
            station_load[station_id] = station_load.get(station_id, 0.0) + demand
        elif (
            deadline_ok[row, _DEVICE]
            and device_load.get(owner, 0.0) + demand
            <= system.device(owner).max_resource
        ):
            decisions[row] = Subsystem.DEVICE
            device_load[owner] = device_load.get(owner, 0.0) + demand
        else:
            decisions[row] = Subsystem.CANCELLED
        load -= demand


def _priced_costs(costs: ClusterCosts, nu: float) -> ClusterCosts:
    """The cluster's cost table with the cloud column priced at ν."""
    if nu == 0.0:
        return costs  # identity keeps fingerprints (and cache hits) exact
    energy = costs.energy_j.copy()
    energy[:, _CLOUD] = energy[:, _CLOUD] + nu * costs.resource
    return ClusterCosts(
        tasks=costs.tasks,
        time_s=costs.time_s,
        energy_j=energy,
        resource=costs.resource,
        deadline_s=costs.deadline_s,
    )


def lp_hta_sharded(
    system: MECSystem,
    tasks: Sequence[Task],
    spec: Optional[ShardSpec] = None,
    options: Optional[LPHTAOptions] = None,
    coordinator: Optional[CoordinatorOptions] = None,
    cloud_capacity: float = float("inf"),
    context: Optional[RunContext] = None,
) -> ShardedHTAReport:
    """Run LP-HTA shard by shard, coordinating any shared cloud budget.

    With ``cloud_capacity=inf`` (the paper's model) the result is
    bit-identical to :func:`repro.core.hta.lp_hta` for *any* spec — the
    differential tests pin this.  With a finite budget the shards couple
    and a Lagrangian outer loop prices the cloud column; the report then
    carries the duality gap of the best recovered primal.

    :param system: the global MEC system.
    :param tasks: the holistic tasks (global row order).
    :param spec: station partition; defaults to
        ``ShardSpec.balanced(..., context.shards)`` (one shard when the
        context does not ask for sharding).
    :param options: LP-HTA tunables, shared by every shard.
    :param coordinator: outer-loop tunables (finite budgets only).
    :param cloud_capacity: shared cloud resource budget.
    :param context: run configuration; defaults to the active context.
    """
    context = context if context is not None else current_context()
    if options is None:
        options = _options_from_context(context)
    tasks = list(tasks)
    if spec is None:
        requested = context.shards if context.shards > 0 else 1
        spec = ShardSpec.balanced(system.stations.keys(), requested)
    sharded = ShardedSystem(system, spec)
    views = sharded.views(tasks, cloud_capacity=cloud_capacity)
    costs = cluster_costs(system, tasks)
    telemetry = context.telemetry

    if math.isinf(cloud_capacity):
        # Uncapped cloud: shards never couple.  One mega-solve pools every
        # cluster of every shard; regrouping in sorted-station order
        # reproduces the monolithic output bit for bit.
        reports = lp_hta_batch(
            [(view.system, [tasks[row] for row in view.task_rows]) for view in views],
            options,
            context,
        )
        decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
        for view, report in zip(views, reports):
            for local_row, decision in zip(view.task_rows, report.assignment.decisions):
                decisions[local_row] = decision
        clusters = tuple(
            sorted(
                (cluster for report in reports for cluster in report.clusters),
                key=lambda cluster: cluster.station_id,
            )
        )
        assignment = Assignment(costs, decisions)
        best_dual = sum(cluster.lp_objective_j for cluster in clusters)
        telemetry.shard_solves += len(views)
        gap = assignment.total_energy_j() - best_dual
        telemetry.coordinator_gap_j += gap
        relative = guarded_relative_gap(gap, best_dual)
        if math.isfinite(relative):
            telemetry.metrics.observe("coordinator.duality_gap_rel", relative)
        return ShardedHTAReport(
            assignment=assignment,
            clusters=clusters,
            num_shards=spec.num_shards,
            outer_iterations=0,
            best_dual_j=best_dual,
            cloud_capacity=cloud_capacity,
            cloud_load=_cloud_load(costs, decisions),
            dual_history=(),
        )

    # Finite shared budget: decompose per shard at a cloud price ν and let
    # the coordinator drive ν.  Slices are prepared once — only the priced
    # energy column changes between iterations.
    prepared = []
    for view in views:
        view_tasks = [tasks[row] for row in view.task_rows]
        view_costs = cluster_costs(view.system, view_tasks)
        slices = _cluster_slices(view.system, view_tasks, view_costs)
        prepared.append((view, slices))
    base_clusters: List[ClusterReport] = []

    def solve_priced(nu: float) -> Tuple[float, float, Tuple[Any, ...], Any]:
        jobs = []
        meta = []
        for view, slices in prepared:
            for cluster_slice in slices:
                priced = _priced_costs(cluster_slice.costs, nu)
                jobs.append(
                    (priced, cluster_slice.device_caps, cluster_slice.station_cap)
                )
                meta.append((view, cluster_slice, priced))
        if _batching_enabled(context, options, len(jobs)):
            results = _solve_p2_batch(jobs, options, context)
        else:
            results = [
                _solve_p2(p, caps, cap, options, context) for p, caps, cap in jobs
            ]
        telemetry.shard_solves += len(prepared)

        objective = 0.0
        fractional_load = 0.0
        decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
        clusters: List[ClusterReport] = []
        greedy_rung = False
        for (view, cluster_slice, priced), result in zip(meta, results):
            # A block that fell all the way to the greedy rung carries a
            # one-hot objective, not an LP lower bound: poison the whole
            # iteration's dual value so weak duality stays honest.
            greedy_rung = greedy_rung or result.backend == "greedy"
            objective += float(result.objective)
            x_fractional = reshape_solution(result.require_ok(), priced.num_tasks)
            fractional_load += float(
                np.dot(priced.resource, x_fractional[:, _CLOUD])
            )
            sub_decisions, report = lp_hta_cluster(
                priced,
                cluster_slice.device_caps,
                cluster_slice.station_cap,
                options,
                station_id=cluster_slice.station_id,
                context=context,
                lp_result=result,
            )
            for local_row, decision in zip(cluster_slice.rows, sub_decisions):
                decisions[view.task_rows[local_row]] = decision
            clusters.append(report)
        if not base_clusters:
            # First iteration runs at ν = 0, so these reports are the
            # true-cost (uncoordinated) per-cluster diagnostics.
            base_clusters.extend(
                sorted(clusters, key=lambda cluster: cluster.station_id)
            )
        _repair_cloud_overflow(costs, decisions, system, cloud_capacity)
        energy = float(
            sum(
                float(costs.energy_j[row, decision.column])
                for row, decision in enumerate(decisions)
                if decision is not Subsystem.CANCELLED
            )
        )
        cancelled = sum(
            1 for decision in decisions if decision is Subsystem.CANCELLED
        )
        if greedy_rung:
            objective = float("-inf")
        return objective, fractional_load, (cancelled, energy), decisions

    outcome = coordinate_shared_capacity(solve_priced, cloud_capacity, coordinator)
    assignment = Assignment(costs, list(outcome.best_payload))
    gap = assignment.total_energy_j() - outcome.best_dual_j
    telemetry.coordinator_iterations += outcome.iterations_run
    telemetry.coordinator_gap_j += gap
    relative = guarded_relative_gap(gap, outcome.best_dual_j)
    if math.isfinite(relative):
        telemetry.metrics.observe("coordinator.duality_gap_rel", relative)
    return ShardedHTAReport(
        assignment=assignment,
        clusters=tuple(base_clusters),
        num_shards=spec.num_shards,
        outer_iterations=outcome.iterations_run,
        best_dual_j=outcome.best_dual_j,
        cloud_capacity=cloud_capacity,
        cloud_load=_cloud_load(costs, assignment.decisions),
        dual_history=outcome.dual_history,
    )
