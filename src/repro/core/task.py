"""The computation-task model of Section II.

A task :math:`\\mathcal{T}_{ij} = (op_{ij}, LD_{ij}, ED_{ij}, L_{ij},
C_{ij}, T_{ij})` is the *j*-th task raised by user :math:`U_i`.  We keep the
paper's abstraction: the payloads themselves are not materialised, only their
sizes (α = |LD|, β = |ED|) and the location of the external data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """One computation task raised by a user.

    :param owner_device_id: *i*, the device that raised the task (and where
        the local data lives).
    :param index: *j*, the task's index within its user's task list.
    :param local_bytes: :math:`\\alpha_{ij} = |LD_{ij}|`, local input size.
    :param external_bytes: :math:`\\beta_{ij} = |ED_{ij}|`, external input
        size; zero means the task is self-contained.
    :param external_source: :math:`L_{ij}`, device id holding the external
        data; must be ``None`` iff ``external_bytes`` is zero.
    :param resource_demand: :math:`C_{ij}`, resource units the task occupies
        while running on a device or base station.
    :param deadline_s: :math:`T_{ij}`, the completion deadline (constraint C1).
    :param divisible: whether the task can be computed distributedly by
        aggregating partial results (Section IV); holistic tasks are the
        Section III case.
    :param required_items: the ids of the data items the task needs
        (:math:`LD_{ij} \\cup ED_{ij}` as a set of blocks); only used by the
        divisible-task machinery, may be empty for holistic workloads.
    :param operation: a label for :math:`op_{ij}` (e.g. ``"sum"``); carried
        for bookkeeping, never interpreted.
    """

    owner_device_id: int
    index: int
    local_bytes: float
    external_bytes: float
    external_source: Optional[int]
    resource_demand: float
    deadline_s: float
    divisible: bool = False
    required_items: FrozenSet[int] = field(default_factory=frozenset)
    operation: str = "generic"

    def __post_init__(self) -> None:
        if self.owner_device_id < 0:
            raise ValueError("owner_device_id must be non-negative")
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.local_bytes < 0 or self.external_bytes < 0:
            raise ValueError("data sizes must be non-negative")
        if self.resource_demand < 0:
            raise ValueError("resource_demand must be non-negative")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.external_bytes > 0 and self.external_source is None:
            raise ValueError("external data present but no external_source given")
        if self.external_bytes == 0 and self.external_source is not None:
            raise ValueError("external_source given but external_bytes is zero")
        if self.external_source is not None and self.external_source == self.owner_device_id:
            raise ValueError("external data cannot come from the owner itself")

    def __hash__(self) -> int:
        # Same value the generated dataclass hash produces, memoised:
        # the cost-table cache hashes whole task tuples on every lookup.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.owner_device_id,
                    self.index,
                    self.local_bytes,
                    self.external_bytes,
                    self.external_source,
                    self.resource_demand,
                    self.deadline_s,
                    self.divisible,
                    self.required_items,
                    self.operation,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def task_id(self) -> tuple:
        """The (i, j) pair identifying this task."""
        return (self.owner_device_id, self.index)

    @property
    def input_bytes(self) -> float:
        """Total input size :math:`\\alpha_{ij} + \\beta_{ij}`."""
        return self.local_bytes + self.external_bytes

    @property
    def has_external_data(self) -> bool:
        """Whether the task needs data from another device."""
        return self.external_bytes > 0

    def with_deadline(self, deadline_s: float) -> "Task":
        """A copy of this task with a different deadline."""
        return Task(
            owner_device_id=self.owner_device_id,
            index=self.index,
            local_bytes=self.local_bytes,
            external_bytes=self.external_bytes,
            external_source=self.external_source,
            resource_demand=self.resource_demand,
            deadline_s=deadline_s,
            divisible=self.divisible,
            required_items=self.required_items,
            operation=self.operation,
        )
