"""Baseline and comparison task-assignment algorithms (Section V-B).

- :func:`all_to_cloud` — *AllToC*: every task runs on the remote cloud.
- :func:`all_offload` — *AllOffload*: every task is offloaded away from its
  device — to the base station while its resource cap allows, else to the
  cloud.
- :func:`hgos` — the Heuristic Greedy Offloading Scheme of [12]
  (Guo/Liu/Zhang 2018), reconstructed: each task is greedily placed on its
  cheapest subsystem subject to the resource caps, but the heuristic is
  blind to the data distribution (it prices tasks as if all input data were
  local) and to task deadlines — exactly the two blind spots the paper
  criticises in Section I and exploits in Figs. 2–4.
- :func:`local_first` and :func:`random_assignment` — extra reference
  points used by the ablation benches.

All baselines are *charged* with the true Section II costs; only their
decision rules differ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import NUM_SUBSYSTEMS, ClusterCosts, cluster_costs
from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = [
    "all_offload",
    "all_to_cloud",
    "hgos",
    "local_first",
    "random_assignment",
]

_DEVICE, _STATION, _CLOUD = 0, 1, 2
_SUBSYSTEM_OF_COLUMN = (Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD)


def all_to_cloud(system: MECSystem, tasks: Sequence[Task]) -> Assignment:
    """AllToC: offload every task to the remote cloud.

    :param system: the MEC system.
    :param tasks: tasks to assign.
    """
    costs = cluster_costs(system, tasks)
    return Assignment.uniform(costs, Subsystem.CLOUD)


def all_offload(system: MECSystem, tasks: Sequence[Task]) -> Assignment:
    """AllOffload: offload everything to the base stations and the cloud.

    Tasks go to their base station while its :math:`max_S` allows (greedily,
    in task order), the overflow goes to the cloud.  Devices are never used
    and deadlines are not considered — the classical
    computation-ability-blind scheme the paper compares against.

    :param system: the MEC system.
    :param tasks: tasks to assign.
    """
    costs = cluster_costs(system, tasks)
    station_loads = {sid: 0.0 for sid in system.stations}
    decisions: List[Subsystem] = []
    for row, task in enumerate(tasks):
        station_id = system.cluster_of(task.owner_device_id)
        cap = system.station(station_id).max_resource
        demand = float(costs.resource[row])
        if station_loads[station_id] + demand <= cap:
            station_loads[station_id] += demand
            decisions.append(Subsystem.STATION)
        else:
            decisions.append(Subsystem.CLOUD)
    return Assignment(costs, decisions)


def _data_blind_costs(system: MECSystem, tasks: Sequence[Task]) -> ClusterCosts:
    """Cost table as a data-distribution-blind scheme perceives it.

    External data is treated as if it were already local (α' = α + β,
    β' = 0): no retrieval hops, no inter-station transfers.
    """
    blind_tasks = [
        Task(
            owner_device_id=task.owner_device_id,
            index=task.index,
            local_bytes=task.input_bytes,
            external_bytes=0.0,
            external_source=None,
            resource_demand=task.resource_demand,
            deadline_s=task.deadline_s,
            divisible=task.divisible,
            required_items=task.required_items,
            operation=task.operation,
        )
        for task in tasks
    ]
    return cluster_costs(system, blind_tasks)


def hgos(
    system: MECSystem,
    tasks: Sequence[Task],
    context: Optional[RunContext] = None,
) -> Assignment:
    """HGOS: reconstructed Heuristic Greedy Offloading Scheme of [12].

    Processes tasks in decreasing order of perceived offloading gain and
    greedily places each on its *perceived*-cheapest subsystem that still
    has resources.  Perceived costs ignore the data distribution (external
    data priced as local); deadlines are ignored entirely.  The returned
    assignment is charged with the true costs.

    :param system: the MEC system.
    :param tasks: tasks to assign.
    :param context: run configuration; defaults to the active context.
    """
    context = context if context is not None else current_context()
    costs = cluster_costs(system, tasks)
    perceived = _data_blind_costs(system, tasks)

    device_loads = {device_id: 0.0 for device_id in system.devices}
    station_loads = {sid: 0.0 for sid in system.stations}

    # Largest perceived gain from offloading first — the greedy order of a
    # gain-driven offloading heuristic.
    gain = perceived.energy_j[:, _DEVICE] - np.min(
        perceived.energy_j[:, (_STATION, _CLOUD)], axis=1
    )
    if context.reference:
        order = sorted(range(len(tasks)), key=lambda r: -gain[r])

        decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
        for row in order:
            task = tasks[row]
            demand = float(costs.resource[row])
            station_id = system.cluster_of(task.owner_device_id)
            device_cap = system.device(task.owner_device_id).max_resource
            station_cap = system.station(station_id).max_resource

            candidates = []
            if device_loads[task.owner_device_id] + demand <= device_cap:
                candidates.append(_DEVICE)
            if station_loads[station_id] + demand <= station_cap:
                candidates.append(_STATION)
            candidates.append(_CLOUD)  # the cloud always has room

            best = min(candidates, key=lambda l: perceived.energy_j[row, l])
            decisions[row] = Subsystem(best + 1)
            if best == _DEVICE:
                device_loads[task.owner_device_id] += demand
            elif best == _STATION:
                station_loads[station_id] += demand
        return Assignment(costs, decisions)

    # Optimised variant of the loop above: same greedy, same tie-breaks,
    # same float comparisons — the per-row topology lookups and numpy
    # scalar reads are just hoisted out of the sequential pass.
    # (Stable argsort on -gain == the stable Python sort it replaces.)
    order = np.argsort(-gain, kind="stable").tolist()
    demands = costs.resource.astype(float).tolist()
    owners = [task.owner_device_id for task in tasks]
    stations = [system.cluster_of(owner) for owner in owners]
    device_cap_of = {o: system.device(o).max_resource for o in set(owners)}
    station_cap_of = {s: system.station(s).max_resource for s in set(stations)}
    perceived_rows = perceived.energy_j.tolist()

    decisions = [Subsystem.CANCELLED] * len(tasks)
    for row in order:
        owner = owners[row]
        demand = demands[row]
        station_id = stations[row]
        row_energy = perceived_rows[row]

        candidates = []
        if device_loads[owner] + demand <= device_cap_of[owner]:
            candidates.append(_DEVICE)
        if station_loads[station_id] + demand <= station_cap_of[station_id]:
            candidates.append(_STATION)
        candidates.append(_CLOUD)  # the cloud always has room

        best = min(candidates, key=row_energy.__getitem__)
        decisions[row] = _SUBSYSTEM_OF_COLUMN[best]
        if best == _DEVICE:
            device_loads[owner] += demand
        elif best == _STATION:
            station_loads[station_id] += demand
    return Assignment(costs, decisions)


def local_first(system: MECSystem, tasks: Sequence[Task]) -> Assignment:
    """Deadline- and resource-aware greedy: device, else station, else cloud.

    A simple sane heuristic used as an ablation reference: it respects every
    constraint but never looks at energy.

    :param system: the MEC system.
    :param tasks: tasks to assign.
    """
    costs = cluster_costs(system, tasks)
    device_loads = {device_id: 0.0 for device_id in system.devices}
    station_loads = {sid: 0.0 for sid in system.stations}
    decisions: List[Subsystem] = []
    for row, task in enumerate(tasks):
        demand = float(costs.resource[row])
        station_id = system.cluster_of(task.owner_device_id)
        deadline = costs.deadline_s[row]
        decision = Subsystem.CANCELLED
        if (
            costs.time_s[row, _DEVICE] <= deadline
            and device_loads[task.owner_device_id] + demand
            <= system.device(task.owner_device_id).max_resource
        ):
            decision = Subsystem.DEVICE
            device_loads[task.owner_device_id] += demand
        elif (
            costs.time_s[row, _STATION] <= deadline
            and station_loads[station_id] + demand
            <= system.station(station_id).max_resource
        ):
            decision = Subsystem.STATION
            station_loads[station_id] += demand
        elif costs.time_s[row, _CLOUD] <= deadline:
            decision = Subsystem.CLOUD
        decisions.append(decision)
    return Assignment(costs, decisions)


def random_assignment(
    system: MECSystem,
    tasks: Sequence[Task],
    seed: Optional[int] = 0,
) -> Assignment:
    """Uniformly random subsystem per task (constraint-blind reference).

    :param system: the MEC system.
    :param tasks: tasks to assign.
    :param seed: RNG seed for reproducibility.
    """
    costs = cluster_costs(system, tasks)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, NUM_SUBSYSTEMS, size=len(tasks))
    return Assignment(costs, [Subsystem(int(p) + 1) for p in picks])
