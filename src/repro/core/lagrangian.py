"""Lagrangian-relaxation solver for the HTA problem.

An alternative to LP-HTA's relax-and-round: dualise the coupling
constraints C2 (device caps, multipliers :math:`\\mu_i \\ge 0`) and C3
(station cap, multiplier :math:`\\nu \\ge 0`).  The Lagrangian then
*decomposes per task* —

.. math::

   L(x, \\mu, \\nu) = \\sum_{ij}\\sum_l \\tilde{E}_{ijl}\\, x_{ijl}
      - \\sum_i \\mu_i\\, max_i - \\nu\\, max_S,
   \\qquad
   \\tilde{E}_{ij1} = E_{ij1} + \\mu_i C_{ij},\\;
   \\tilde{E}_{ij2} = E_{ij2} + \\nu C_{ij},\\;
   \\tilde{E}_{ij3} = E_{ij3},

so each task just picks its cheapest deadline-feasible subsystem at the
current prices.  Projected subgradient ascent drives the multipliers; the
per-task subproblem has the integrality property, so the dual optimum
equals the LP relaxation bound :math:`E^{(OPT)}_{LP}` — which the tests
verify against the structured IPM.

Primal recovery reuses the paper's own medicine: the price-driven decisions
are repaired exactly like LP-HTA's Steps 5–6 (greedy migrations by resource
occupation), so the result is always feasible and directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import ClusterCosts, cluster_costs
from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = [
    "CoordinatorOptions",
    "CoordinatorOutcome",
    "LagrangianOptions",
    "LagrangianReport",
    "coordinate_shared_capacity",
    "guarded_relative_gap",
    "lagrangian_hta",
]

_DEVICE, _STATION, _CLOUD = 0, 1, 2


def guarded_relative_gap(gap_j: float, dual_j: float, tolerance: float = 1e-12) -> float:
    """``gap / dual`` with the degenerate non-positive dual guarded.

    A degenerate instance — every task local or cancelled, or no tasks at
    all — has a zero (or, numerically, slightly negative) dual bound.  If
    the gap itself is zero too, the solve is *exact* and the relative gap
    is 0, not the ``inf`` a bare division guard would report; ``inf`` is
    reserved for a genuinely unbounded ratio (positive gap over a
    non-positive bound).
    """
    if dual_j > 0:
        return gap_j / dual_j
    if abs(gap_j) <= tolerance:
        return 0.0
    return float("inf")


@dataclass(frozen=True)
class LagrangianOptions:
    """Tunables of the subgradient ascent.

    :param iterations: subgradient steps.
    :param initial_step: step-size numerator; the schedule is
        ``initial_step / (sqrt(t) · ||subgradient||)``.  The default is
        calibrated so the multipliers (joules per resource unit) cross the
        ~5–10 J/unit regime where device/station prices start moving tasks;
        on the paper's scenarios the dual then reaches the LP bound within
        ~150 iterations.
    :param repair_every: recover (and keep the best) feasible primal every
        this many iterations.
    """

    iterations: int = 200
    initial_step: float = 50.0
    repair_every: int = 10

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.initial_step <= 0:
            raise ValueError("initial_step must be positive")
        if self.repair_every <= 0:
            raise ValueError("repair_every must be positive")


@dataclass(frozen=True)
class LagrangianReport:
    """Outcome of the Lagrangian solve.

    :param assignment: best feasible assignment recovered.
    :param best_dual_j: largest dual value seen — a lower bound on the
        optimum (and on the LP relaxation's optimum).
    :param dual_history: dual value per iteration.
    :param primal_energy_j: the returned assignment's energy.
    """

    assignment: Assignment
    best_dual_j: float
    dual_history: Tuple[float, ...]
    primal_energy_j: float

    @property
    def duality_gap_j(self) -> float:
        """primal − best dual (≥ 0 up to solver tolerance)."""
        return self.primal_energy_j - self.best_dual_j

    @property
    def relative_gap(self) -> float:
        """Duality gap relative to the dual bound.

        Guarded for the degenerate all-local / no-task case (zero dual
        bound with zero gap): see :func:`guarded_relative_gap`.
        """
        return guarded_relative_gap(self.duality_gap_j, self.best_dual_j)


@dataclass(frozen=True)
class CoordinatorOptions:
    """Tunables of the shared-capacity coordinator.

    :param iterations: maximum outer subgradient steps.
    :param initial_step: step-size numerator; the schedule is
        ``initial_step / (sqrt(t) · |subgradient|)`` — the same Polyak-style
        divergent-series rule :class:`LagrangianOptions` uses, scaled to a
        single multiplier.
    :param tolerance: relative slack (w.r.t. the capacity) below which the
        shared constraint counts as tight and the ascent stops.
    """

    iterations: int = 25
    initial_step: float = 50.0
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.initial_step <= 0:
            raise ValueError("initial_step must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")


@dataclass(frozen=True)
class CoordinatorOutcome:
    """Result of one :func:`coordinate_shared_capacity` run.

    :param multiplier: final price ν of the shared resource.
    :param best_dual_j: largest dual value seen — a valid lower bound on
        the capacity-constrained optimum for every ν ≥ 0 (weak duality;
        the inner solves are relaxations of the priced subproblems).
    :param iterations_run: outer iterations actually executed.
    :param dual_history: dual value per outer iteration.
    :param best_key: ordering key of the kept primal candidate.
    :param best_payload: caller-defined payload of the kept candidate.
    """

    multiplier: float
    best_dual_j: float
    iterations_run: int
    dual_history: Tuple[float, ...]
    best_key: Tuple[Any, ...]
    best_payload: Any


def coordinate_shared_capacity(
    solve_priced: Callable[[float], Tuple[float, float, Tuple[Any, ...], Any]],
    capacity: float,
    options: Optional[CoordinatorOptions] = None,
) -> CoordinatorOutcome:
    """Projected subgradient ascent on one shared capacity budget.

    The sharded solver decomposes per shard once the single *shared*
    resource (the cloud budget) is priced: for a price ν ≥ 0,

    .. math::

       d(\\nu) = \\sum_{\\text{shards}} \\min_x
           \\big(E + \\nu\\,C_{\\text{cloud}}\\big)\\,x \\;-\\; \\nu\\,cap

    is a valid lower bound on the capacity-constrained optimum, and its
    supergradient at the priced solution is ``shared_load − capacity``.
    This helper owns the ascent; the caller owns the (parallelisable)
    priced solves and the primal recovery.

    :param solve_priced: callback mapping ν to
        ``(priced_objective, shared_load, primal_key, payload)`` —
        the summed priced relaxation optima, the fractional load the
        priced solution puts on the shared resource, an orderable
        candidate key (smaller = better, e.g. ``(cancelled, energy)``)
        for the recovered feasible primal, and an arbitrary payload
        (the decisions) kept for the best key.
    :param capacity: the shared budget (must be finite — an infinite
        budget never binds, so there is nothing to coordinate).
    :param options: ascent tunables.
    :returns: the best dual bound, the best primal payload, and the
        iteration history.
    """
    if not np.isfinite(capacity):
        raise ValueError("coordinate_shared_capacity needs a finite capacity")
    if options is None:
        options = CoordinatorOptions()
    scale = capacity if capacity > 0 else 1.0
    nu = 0.0
    best_dual = -float("inf")
    best_key: Optional[Tuple[Any, ...]] = None
    best_payload: Any = None
    history: List[float] = []
    for t in range(1, options.iterations + 1):
        objective, load, key, payload = solve_priced(nu)
        dual = objective - nu * capacity
        history.append(dual)
        best_dual = max(best_dual, dual)
        if best_key is None or key < best_key:
            best_key = key
            best_payload = payload
        gradient = load - capacity
        if abs(gradient) <= options.tolerance * scale:
            break  # the priced solution meets the budget exactly: ν is optimal
        if gradient < 0 and nu <= 0:
            break  # budget slack at zero price: the constraint never binds
        step = options.initial_step / (np.sqrt(t) * abs(gradient))
        nu = max(0.0, nu + step * gradient)
    assert best_key is not None
    return CoordinatorOutcome(
        multiplier=nu,
        best_dual_j=best_dual,
        iterations_run=len(history),
        dual_history=tuple(history),
        best_key=best_key,
        best_payload=best_payload,
    )


def _price_and_choose(
    costs: ClusterCosts,
    mu: Dict[int, float],
    nu: float,
) -> Tuple[np.ndarray, float]:
    """Per-task cheapest priced choice; returns (choices, dual term sum).

    Cancelled (hopeless) tasks contribute 0 and are marked -1.
    """
    n = costs.num_tasks
    choices = np.full(n, -1, dtype=int)
    total = 0.0
    for row in range(n):
        feasible = costs.feasible_subsystems(row)
        if not feasible:
            continue
        owner = costs.tasks[row].owner_device_id
        best_l = -1
        best_cost = float("inf")
        for l in feasible:
            priced = float(costs.energy_j[row, l])
            if l == _DEVICE:
                priced += mu.get(owner, 0.0) * float(costs.resource[row])
            elif l == _STATION:
                priced += nu * float(costs.resource[row])
            if priced < best_cost:
                best_cost = priced
                best_l = l
        choices[row] = best_l
        total += best_cost
    return choices, total


def _repair(
    costs: ClusterCosts,
    choices: np.ndarray,
    device_caps: Mapping[int, float],
    station_cap: float,
) -> List[Subsystem]:
    """LP-HTA Steps 5–6 applied to a price-driven choice vector."""
    decisions = [
        Subsystem.CANCELLED if c < 0 else Subsystem(int(c) + 1) for c in choices
    ]
    deadline_ok = costs.time_s <= costs.deadline_s[:, None]

    by_owner: Dict[int, List[int]] = {}
    for row, task in enumerate(costs.tasks):
        by_owner.setdefault(task.owner_device_id, []).append(row)

    for owner, rows in by_owner.items():
        cap = device_caps.get(owner, float("inf"))

        def load() -> float:
            return sum(
                costs.resource[r] for r in rows if decisions[r] is Subsystem.DEVICE
            )

        movable = sorted(
            (r for r in rows
             if decisions[r] is Subsystem.DEVICE and deadline_ok[r, _STATION]),
            key=lambda r: -costs.resource[r],
        )
        for r in movable:
            if load() <= cap:
                break
            decisions[r] = Subsystem.STATION
        if load() > cap:
            for r in sorted(
                (r for r in rows if decisions[r] is Subsystem.DEVICE),
                key=lambda r: -costs.resource[r],
            ):
                if load() <= cap:
                    break
                decisions[r] = Subsystem.CANCELLED

    def station_load() -> float:
        return sum(
            costs.resource[r]
            for r in range(costs.num_tasks)
            if decisions[r] is Subsystem.STATION
        )

    if station_load() > station_cap:
        movable = sorted(
            (r for r in range(costs.num_tasks)
             if decisions[r] is Subsystem.STATION and deadline_ok[r, _CLOUD]),
            key=lambda r: -costs.resource[r],
        )
        for r in movable:
            if station_load() <= station_cap:
                break
            decisions[r] = Subsystem.CLOUD
        if station_load() > station_cap:
            for r in sorted(
                (r for r in range(costs.num_tasks)
                 if decisions[r] is Subsystem.STATION),
                key=lambda r: -costs.resource[r],
            ):
                if station_load() <= station_cap:
                    break
                decisions[r] = Subsystem.CANCELLED
    return decisions


def _solve_cluster(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
    options: LagrangianOptions,
) -> Tuple[List[Subsystem], float, List[float]]:
    """Subgradient ascent + primal recovery for one cluster."""
    n = costs.num_tasks
    if n == 0:
        return [], 0.0, []

    mu: Dict[int, float] = {
        owner: 0.0 for owner in {t.owner_device_id for t in costs.tasks}
    }
    nu = 0.0
    finite_station = np.isfinite(station_cap)

    best_dual = -float("inf")
    best_decisions: Optional[List[Subsystem]] = None
    best_energy = float("inf")
    history: List[float] = []

    for t in range(1, options.iterations + 1):
        choices, priced_sum = _price_and_choose(costs, mu, nu)
        dual = (
            priced_sum
            - sum(mu[o] * device_caps.get(o, 0.0) for o in mu)
            - (nu * station_cap if finite_station else 0.0)
        )
        history.append(dual)
        best_dual = max(best_dual, dual)

        # Subgradients: constraint slack at the priced solution.
        sub_mu = {}
        for owner in mu:
            load = sum(
                costs.resource[r]
                for r in range(n)
                if choices[r] == _DEVICE
                and costs.tasks[r].owner_device_id == owner
            )
            cap = device_caps.get(owner, float("inf"))
            sub_mu[owner] = load - cap if np.isfinite(cap) else 0.0
        if finite_station:
            sub_nu = (
                sum(costs.resource[r] for r in range(n) if choices[r] == _STATION)
                - station_cap
            )
        else:
            sub_nu = 0.0

        norm = float(
            np.sqrt(sum(g * g for g in sub_mu.values()) + sub_nu * sub_nu)
        )
        if norm > 0:
            step = options.initial_step / (np.sqrt(t) * norm)
            for owner in mu:
                mu[owner] = max(0.0, mu[owner] + step * sub_mu[owner])
            if finite_station:
                nu = max(0.0, nu + step * sub_nu)

        if t % options.repair_every == 0 or t == options.iterations or norm == 0:
            decisions = _repair(costs, choices, device_caps, station_cap)
            energy = sum(
                float(costs.energy_j[r, d.column])
                for r, d in enumerate(decisions)
                if d is not Subsystem.CANCELLED
            )
            cancelled = sum(1 for d in decisions if d is Subsystem.CANCELLED)
            best_cancelled = (
                sum(1 for d in best_decisions if d is Subsystem.CANCELLED)
                if best_decisions is not None
                else n + 1
            )
            # Prefer serving more tasks; break ties by energy.
            if (cancelled, energy) < (best_cancelled, best_energy):
                best_decisions = decisions
                best_energy = energy
        if norm == 0:
            break  # multipliers are optimal: the priced solution is feasible

    assert best_decisions is not None
    return best_decisions, best_dual, history


def _merge_histories(a: List[float], b: List[float]) -> List[float]:
    """Element-wise sum of dual histories, padding with the final value
    (clusters may stop early when their multipliers hit optimality)."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    length = max(len(a), len(b))
    padded_a = a + [a[-1]] * (length - len(a))
    padded_b = b + [b[-1]] * (length - len(b))
    return [x + y for x, y in zip(padded_a, padded_b)]


def lagrangian_hta(
    system: MECSystem,
    tasks: Sequence[Task],
    options: LagrangianOptions = LagrangianOptions(),
) -> LagrangianReport:
    """Solve HTA by Lagrangian relaxation of C2/C3 (per cluster).

    :param system: the MEC system.
    :param tasks: the holistic tasks.
    :param options: subgradient tunables.
    """
    costs = cluster_costs(system, tasks)
    by_cluster: Dict[int, List[int]] = {}
    for row, task in enumerate(tasks):
        by_cluster.setdefault(system.cluster_of(task.owner_device_id), []).append(row)

    decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
    total_dual = 0.0
    merged_history: List[float] = []
    for station_id in sorted(by_cluster):
        rows = by_cluster[station_id]
        sub_costs = ClusterCosts(
            tasks=tuple(costs.tasks[r] for r in rows),
            time_s=costs.time_s[rows],
            energy_j=costs.energy_j[rows],
            resource=costs.resource[rows],
            deadline_s=costs.deadline_s[rows],
        )
        caps = {
            device_id: system.device(device_id).max_resource
            for device_id in {t.owner_device_id for t in sub_costs.tasks}
        }
        cluster_decisions, dual, history = _solve_cluster(
            sub_costs, caps, system.station(station_id).max_resource, options
        )
        for local, decision in zip(rows, cluster_decisions):
            decisions[local] = decision
        total_dual += dual
        merged_history = _merge_histories(merged_history, history)

    assignment = Assignment(costs, decisions)
    return LagrangianReport(
        assignment=assignment,
        best_dual_j=total_dual,
        dual_history=tuple(merged_history),
        primal_energy_j=assignment.total_energy_j(),
    )
