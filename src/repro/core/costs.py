"""Per-task delay and energy costs :math:`t_{ijl}`, :math:`E_{ijl}`.

This module evaluates, exactly as written in Section II, the six quantities
attached to each task: transmission time and energy plus computation time
(and, locally, computation energy) for each of the three candidate
subsystems *l*:

- l = 1: the owning mobile device,
- l = 2: the base station the owner is attached to,
- l = 3: the remote cloud.

The paper's formulas distinguish whether the external-data holder
:math:`L_{ij}` sits in the owner's cluster (one radio hop) or in another
cluster (an extra base-station↔base-station backhaul transfer).  For l = 3
the paper routes both data sources straight up to the cloud through their own
base stations, so no BS–BS hop appears there.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.context import current_context, use_context
from repro.core.task import Task
from repro.system.topology import MECSystem
from repro.units import BITS_PER_BYTE

__all__ = [
    "ClusterCosts",
    "TaskCosts",
    "cluster_costs",
    "costs_config",
    "task_costs",
]

#: Number of candidate subsystems per task.
NUM_SUBSYSTEMS = 3


@dataclass(frozen=True)
class TaskCosts:
    """All Section II cost components for one task.

    Index 0/1/2 of each tuple corresponds to subsystem l = 1/2/3.

    :param transmission_time_s: :math:`t^{(R)}_{ijl}`.
    :param computation_time_s: :math:`t^{(C)}_{ijl}`.
    :param transmission_energy_j: :math:`E^{(R)}_{ijl}`.
    :param computation_energy_j: :math:`E^{(C)}_{ijl}` (zero for l = 2, 3:
        the paper neglects station/cloud compute energy).
    """

    transmission_time_s: Tuple[float, float, float]
    computation_time_s: Tuple[float, float, float]
    transmission_energy_j: Tuple[float, float, float]
    computation_energy_j: Tuple[float, float, float]

    @property
    def total_time_s(self) -> Tuple[float, float, float]:
        """:math:`t_{ijl} = t^{(C)}_{ijl} + t^{(R)}_{ijl}` (Eq. 5)."""
        return tuple(
            c + r for c, r in zip(self.computation_time_s, self.transmission_time_s)
        )

    @property
    def total_energy_j(self) -> Tuple[float, float, float]:
        """:math:`E_{ijl}` (Eq. 5): transmission plus, locally, computation."""
        return tuple(
            r + c
            for r, c in zip(self.transmission_energy_j, self.computation_energy_j)
        )


def task_costs(system: MECSystem, task: Task) -> TaskCosts:
    """Evaluate every :math:`t_{ijl}` / :math:`E_{ijl}` component for ``task``.

    :param system: the MEC system the task lives in.
    :param task: the task to price.
    :returns: the full cost breakdown.
    :raises KeyError: if the task references devices unknown to the system.
    """
    params = system.parameters
    owner = system.device(task.owner_device_id)
    station = system.station_of(task.owner_device_id)
    alpha = task.local_bytes
    beta = task.external_bytes
    total_input = alpha + beta
    result = params.result_size.result_bytes(total_input)

    if task.has_external_data:
        source = system.device(task.external_source)
        same_cluster = system.same_cluster(task.owner_device_id, task.external_source)
        ext_upload_time = source.wireless.upload_time_s(beta)
        ext_upload_energy = source.wireless.upload_energy_j(beta)
    else:
        source = None
        same_cluster = True
        ext_upload_time = 0.0
        ext_upload_energy = 0.0

    bs_bs_time = 0.0 if same_cluster else system.bs_bs_link.transfer_time_s(beta)
    bs_bs_energy = 0.0 if same_cluster else system.bs_bs_link.transfer_energy_j(beta)

    # --- l = 1: run on the owning device -------------------------------
    cycles_device = params.cycles.cycles_on_device(total_input)
    t_c1 = cycles_device / owner.cpu_frequency_hz
    # f·f rather than f**2: libm pow is not always correctly rounded, and
    # the vectorised table must agree with this reference bit for bit.
    e_c1 = params.kappa * cycles_device * (
        owner.cpu_frequency_hz * owner.cpu_frequency_hz
    )
    if task.has_external_data:
        # Retrieve ED: source uplink, (cross-cluster backhaul,) owner downlink.
        t_r1 = ext_upload_time + owner.wireless.download_time_s(beta) + bs_bs_time
        e_r1 = ext_upload_energy + owner.wireless.download_energy_j(beta) + bs_bs_energy
    else:
        t_r1 = 0.0
        e_r1 = 0.0

    # --- l = 2: run on the owner's base station ------------------------
    cycles_station = params.cycles.cycles_on_station(total_input)
    t_c2 = cycles_station / station.cpu_frequency_hz
    # LD and ED travel concurrently (the max in the paper's formula); the
    # result is pushed back down to the owner afterwards.
    t_r2 = (
        max(ext_upload_time + bs_bs_time, owner.wireless.upload_time_s(alpha))
        + owner.wireless.download_time_s(result)
    )
    e_r2 = (
        ext_upload_energy
        + owner.wireless.upload_energy_j(alpha)
        + owner.wireless.download_energy_j(result)
        + bs_bs_energy
    )

    # --- l = 3: run on the remote cloud --------------------------------
    cycles_cloud = params.cycles.cycles_on_cloud(total_input)
    t_c3 = cycles_cloud / system.cloud.cpu_frequency_hz
    wan_payload = total_input + result
    t_r3 = (
        max(ext_upload_time, owner.wireless.upload_time_s(alpha))
        + owner.wireless.download_time_s(result)
        + system.bs_cloud_link.transfer_time_s(wan_payload)
    )
    e_r3 = (
        ext_upload_energy
        + owner.wireless.upload_energy_j(alpha)
        + owner.wireless.download_energy_j(result)
        + system.bs_cloud_link.transfer_energy_j(wan_payload)
    )

    return TaskCosts(
        transmission_time_s=(t_r1, t_r2, t_r3),
        computation_time_s=(t_c1, t_c2, t_c3),
        transmission_energy_j=(e_r1, e_r2, e_r3),
        computation_energy_j=(e_c1, 0.0, 0.0),
    )


@dataclass(frozen=True)
class ClusterCosts:
    """Vectorised costs for a list of tasks (one cluster, usually).

    :param tasks: the tasks, in the row order of the arrays.
    :param time_s: array of shape (len(tasks), 3): :math:`t_{ijl}`.
    :param energy_j: array of shape (len(tasks), 3): :math:`E_{ijl}`.
    :param resource: array of shape (len(tasks),): :math:`C_{ij}`.
    :param deadline_s: array of shape (len(tasks),): :math:`T_{ij}`.
    """

    tasks: Tuple[Task, ...]
    time_s: np.ndarray
    energy_j: np.ndarray
    resource: np.ndarray
    deadline_s: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.tasks)
        if self.time_s.shape != (n, NUM_SUBSYSTEMS):
            raise ValueError(f"time_s must be ({n}, 3), got {self.time_s.shape}")
        if self.energy_j.shape != (n, NUM_SUBSYSTEMS):
            raise ValueError(f"energy_j must be ({n}, 3), got {self.energy_j.shape}")
        if self.resource.shape != (n,):
            raise ValueError(f"resource must be ({n},), got {self.resource.shape}")
        if self.deadline_s.shape != (n,):
            raise ValueError(f"deadline_s must be ({n},), got {self.deadline_s.shape}")

    @property
    def num_tasks(self) -> int:
        """Number of tasks priced in this cost table."""
        return len(self.tasks)

    def feasible_subsystems(self, row: int) -> Tuple[int, ...]:
        """Subsystem indices (0-based) meeting the deadline for task ``row``."""
        return tuple(
            l for l in range(NUM_SUBSYSTEMS) if self.time_s[row, l] <= self.deadline_s[row]
        )

    def owner_rows(self) -> Dict[int, np.ndarray]:
        """Row indices grouped by owning device id.

        The grouping is computed once and cached (this accessor is called
        per LP build); treat the returned mapping as read-only.
        """
        cached = self.__dict__.get("_owner_rows")
        if cached is None:
            groups: Dict[int, list] = {}
            for row, task in enumerate(self.tasks):
                groups.setdefault(task.owner_device_id, []).append(row)
            cached = {
                owner: np.asarray(rows, dtype=int) for owner, rows in groups.items()
            }
            # Frozen dataclass: memoise via __dict__ to bypass __setattr__.
            self.__dict__["_owner_rows"] = cached
        return cached


#: Per-system memo of priced tables.  Keyed weakly by the system (identity)
#: and strongly by the task tuple (value equality), so tables are shared by
#: every algorithm evaluating the same scenario and die with the scenario.
_TABLE_CACHE: "WeakKeyDictionary[MECSystem, Dict[tuple, ClusterCosts]]" = (
    WeakKeyDictionary()
)

#: Retained tables per system; old entries are evicted FIFO beyond this.
_TABLE_CACHE_PER_SYSTEM = 64

#: Generator-supplied task arrays, keyed weakly by system.  The array-native
#: generator already holds every task field as a flat array; registering them
#: here lets :func:`_cluster_costs_vectorized` skip its per-task gather loop
#: (the generate→costs fusion).  One entry per system: ``(tasks, arrays)``.
_TASK_ARRAY_HINTS: "WeakKeyDictionary[MECSystem, tuple]" = WeakKeyDictionary()


def register_task_arrays(system: MECSystem, tasks, arrays: dict) -> None:
    """Register the flat arrays a task list was materialised from.

    Called by :mod:`repro.workload.array_gen` after building a scenario's
    tasks.  ``arrays`` must hold ``owner``/``source`` (int64, source -1 for
    None), ``alpha``/``beta``/``resource``/``deadline`` (float64) and
    ``has_ext`` (bool), all parallel to ``tasks``.  The hint is advisory:
    the cost builder uses it only when the task tuple it is pricing is the
    *same objects* in the same order, and falls back to the loop otherwise.
    """
    _TASK_ARRAY_HINTS[system] = (tuple(tasks), arrays)


def _task_array_hint(system: MECSystem, tasks: Tuple[Task, ...]) -> Optional[dict]:
    """The registered arrays for exactly this task tuple, if any."""
    entry = _TASK_ARRAY_HINTS.get(system)
    if entry is None:
        return None
    stored, arrays = entry
    if stored is not tasks:
        if len(stored) != len(tasks):
            return None
        for stored_task, task in zip(stored, tasks):
            if stored_task is not task:
                return None
    return arrays


@contextmanager
def costs_config(
    *, vectorized: Optional[bool] = None, cached: Optional[bool] = None
) -> Iterator[None]:
    """Temporarily override the cost-table defaults.

    ``costs_config(vectorized=False, cached=False)`` reproduces the original
    per-task scalar pipeline — the reference mode `scripts/bench_perf.py`
    times the optimised path against.

    A shim over the context stack: activates a copy of the current
    :class:`~repro.context.RunContext` with the cost flags replaced, so the
    setting travels with explicitly passed contexts (and into spawn
    workers) instead of living in a process global.

    :param vectorized: use the batched NumPy evaluation (default True).
    :param cached: memoise tables per (system, tasks) (default True).
    """
    context = current_context()
    changes = {}
    if vectorized is not None:
        changes["vectorized_costs"] = vectorized
    if cached is not None:
        changes["cached_costs"] = cached
    if changes:
        context = context.replace(**changes)
    with use_context(context):
        yield


def _cluster_costs_scalar(system: MECSystem, tasks: Tuple[Task, ...]) -> ClusterCosts:
    """Reference implementation: one :func:`task_costs` call per row."""
    n = len(tasks)
    time_s = np.zeros((n, NUM_SUBSYSTEMS))
    energy_j = np.zeros((n, NUM_SUBSYSTEMS))
    resource = np.zeros(n)
    deadline = np.zeros(n)
    for row, task in enumerate(tasks):
        costs = task_costs(system, task)
        time_s[row, :] = costs.total_time_s
        energy_j[row, :] = costs.total_energy_j
        resource[row] = task.resource_demand
        deadline[row] = task.deadline_s
    return ClusterCosts(
        tasks=tasks,
        time_s=time_s,
        energy_j=energy_j,
        resource=resource,
        deadline_s=deadline,
    )


def _cluster_costs_vectorized(
    system: MECSystem, tasks: Tuple[Task, ...]
) -> ClusterCosts:
    """Batched evaluation of the Section II formulas over task arrays.

    Every arithmetic step mirrors :func:`task_costs` operation for
    operation (same order, same associativity), so the resulting arrays are
    bit-identical to the scalar reference — asserted by the test suite.
    """
    n = len(tasks)
    params = system.parameters

    # Per-device attribute table (tiny: one row per device).
    device_info = {}
    for device_id in system.devices:
        device = system.device(device_id)
        wireless = device.wireless
        device_info[device_id] = (
            wireless.upload_rate_bps,
            wireless.download_rate_bps,
            wireless.tx_power_w,
            wireless.rx_power_w,
            device.cpu_frequency_hz,
            system.station_of(device_id).cpu_frequency_hz,
            system.cluster_of(device_id),
        )

    hint = _task_array_hint(system, tasks)
    if hint is not None and list(system.devices) != list(range(len(device_info))):
        # Positional gather below needs device ids 0..n-1 in order.
        hint = None
    if hint is not None:
        # Generate→costs fusion: the array generator already produced every
        # task field as a flat array, so the gather is pure fancy indexing
        # over a per-device attribute table.  Values are the same float64
        # objects the loop below would copy element by element, so the
        # resulting table is bit-identical.
        device_rows = [device_info[d] for d in system.devices]
        dev_up = np.array([r[0] for r in device_rows])
        dev_down = np.array([r[1] for r in device_rows])
        dev_tx = np.array([r[2] for r in device_rows])
        dev_rx = np.array([r[3] for r in device_rows])
        dev_freq = np.array([r[4] for r in device_rows])
        dev_sfreq = np.array([r[5] for r in device_rows])
        dev_cluster = np.array([r[6] for r in device_rows], dtype=np.int64)
        owner = hint["owner"]
        alpha = hint["alpha"]
        beta = hint["beta"]
        resource = hint["resource"].copy()
        deadline = hint["deadline"].copy()
        own_up_rate = dev_up[owner]
        own_down_rate = dev_down[owner]
        own_tx = dev_tx[owner]
        own_rx = dev_rx[owner]
        own_freq = dev_freq[owner]
        station_freq = dev_sfreq[owner]
        has_ext = hint["has_ext"]
        src_idx = np.where(has_ext, hint["source"], 0)
        src_up_rate = np.where(has_ext, dev_up[src_idx], 1.0)
        src_tx = np.where(has_ext, dev_tx[src_idx], 0.0)
        cross = has_ext & (dev_cluster[src_idx] != dev_cluster[owner])
    else:
        alpha = np.empty(n)
        beta = np.empty(n)
        resource = np.empty(n)
        deadline = np.empty(n)
        own_up_rate = np.empty(n)
        own_down_rate = np.empty(n)
        own_tx = np.empty(n)
        own_rx = np.empty(n)
        own_freq = np.empty(n)
        station_freq = np.empty(n)
        src_up_rate = np.ones(n)
        src_tx = np.zeros(n)
        has_ext = np.zeros(n, dtype=bool)
        cross = np.zeros(n, dtype=bool)

        for row, task in enumerate(tasks):
            info = device_info[task.owner_device_id]
            alpha[row] = task.local_bytes
            beta[row] = task.external_bytes
            resource[row] = task.resource_demand
            deadline[row] = task.deadline_s
            (
                own_up_rate[row],
                own_down_rate[row],
                own_tx[row],
                own_rx[row],
                own_freq[row],
                station_freq[row],
                owner_cluster,
            ) = info
            if task.has_external_data:
                source = device_info[task.external_source]
                has_ext[row] = True
                src_up_rate[row] = source[0]
                src_tx[row] = source[2]
                cross[row] = source[6] != owner_cluster

    total = alpha + beta
    result_model = params.result_size
    if result_model.is_constant:
        result = np.full(n, float(result_model.constant_bytes))
    else:
        result = result_model.ratio * total

    bits = BITS_PER_BYTE
    # External-data retrieval legs (zero where the task is self-contained).
    ext_up_t = np.where(has_ext, beta * bits / src_up_rate, 0.0)
    ext_up_e = src_tx * ext_up_t
    bs_bs = system.bs_bs_link
    bs_bs_t = np.where(
        cross, bs_bs.latency_s + beta * bits / bs_bs.bandwidth_bps, 0.0
    )
    bs_bs_e = np.where(cross, bs_bs.energy_per_byte_j * beta, 0.0)

    cycles = params.cycles
    # --- l = 1: run on the owning device -------------------------------
    cycles_device = (cycles.cycles_per_byte * cycles.device_multiplier) * total
    t_c1 = cycles_device / own_freq
    e_c1 = params.kappa * cycles_device * (own_freq * own_freq)
    own_down_beta_t = beta * bits / own_down_rate
    t_r1 = np.where(has_ext, ext_up_t + own_down_beta_t + bs_bs_t, 0.0)
    e_r1 = np.where(has_ext, ext_up_e + own_rx * own_down_beta_t + bs_bs_e, 0.0)

    # --- l = 2: run on the owner's base station ------------------------
    cycles_station = (cycles.cycles_per_byte * cycles.station_multiplier) * total
    t_c2 = cycles_station / station_freq
    own_up_alpha_t = alpha * bits / own_up_rate
    own_up_alpha_e = own_tx * own_up_alpha_t
    own_down_res_t = result * bits / own_down_rate
    own_down_res_e = own_rx * own_down_res_t
    t_r2 = np.maximum(ext_up_t + bs_bs_t, own_up_alpha_t) + own_down_res_t
    e_r2 = ext_up_e + own_up_alpha_e + own_down_res_e + bs_bs_e

    # --- l = 3: run on the remote cloud --------------------------------
    cycles_cloud = (cycles.cycles_per_byte * cycles.cloud_multiplier) * total
    t_c3 = cycles_cloud / system.cloud.cpu_frequency_hz
    wan_payload = total + result
    bs_cloud = system.bs_cloud_link
    wan_t = np.where(
        wan_payload == 0.0,
        0.0,
        bs_cloud.latency_s + wan_payload * bits / bs_cloud.bandwidth_bps,
    )
    t_r3 = np.maximum(ext_up_t, own_up_alpha_t) + own_down_res_t + wan_t
    e_r3 = (
        ext_up_e
        + own_up_alpha_e
        + own_down_res_e
        + bs_cloud.energy_per_byte_j * wan_payload
    )

    time_s = np.column_stack((t_c1 + t_r1, t_c2 + t_r2, t_c3 + t_r3))
    energy_j = np.column_stack((e_r1 + e_c1, e_r2 + 0.0, e_r3 + 0.0))
    return ClusterCosts(
        tasks=tasks,
        time_s=time_s,
        energy_j=energy_j,
        resource=resource,
        deadline_s=deadline,
    )


def cluster_costs(
    system: MECSystem,
    tasks: Sequence[Task],
    *,
    vectorized: Optional[bool] = None,
    cached: Optional[bool] = None,
) -> ClusterCosts:
    """Price every task and pack the results into arrays.

    By default the table is computed with the batched NumPy path and
    memoised per (system, tasks): the figure pipeline prices each scenario
    once instead of once per algorithm.  Both knobs can be overridden per
    call or module-wide via :func:`costs_config`.

    :param system: the MEC system.
    :param tasks: tasks to price (typically all tasks of one cluster).
    :param vectorized: override the batched-evaluation default.
    :param cached: override the memoisation default.
    """
    context = current_context()
    use_vectorized = context.vectorized_costs if vectorized is None else vectorized
    use_cache = context.cached_costs if cached is None else cached
    task_tuple = tuple(tasks)

    if use_cache:
        per_system = _TABLE_CACHE.get(system)
        if per_system is None:
            per_system = {}
            _TABLE_CACHE[system] = per_system
        key = (task_tuple, use_vectorized)
        hit = per_system.get(key)
        if hit is not None:
            return hit

    compute = _cluster_costs_vectorized if use_vectorized else _cluster_costs_scalar
    table = compute(system, task_tuple)

    if use_cache:
        while len(per_system) >= _TABLE_CACHE_PER_SYSTEM:
            per_system.pop(next(iter(per_system)))
        per_system[key] = table
    return table
