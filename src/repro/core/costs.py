"""Per-task delay and energy costs :math:`t_{ijl}`, :math:`E_{ijl}`.

This module evaluates, exactly as written in Section II, the six quantities
attached to each task: transmission time and energy plus computation time
(and, locally, computation energy) for each of the three candidate
subsystems *l*:

- l = 1: the owning mobile device,
- l = 2: the base station the owner is attached to,
- l = 3: the remote cloud.

The paper's formulas distinguish whether the external-data holder
:math:`L_{ij}` sits in the owner's cluster (one radio hop) or in another
cluster (an extra base-station↔base-station backhaul transfer).  For l = 3
the paper routes both data sources straight up to the cloud through their own
base stations, so no BS–BS hop appears there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = ["ClusterCosts", "TaskCosts", "cluster_costs", "task_costs"]

#: Number of candidate subsystems per task.
NUM_SUBSYSTEMS = 3


@dataclass(frozen=True)
class TaskCosts:
    """All Section II cost components for one task.

    Index 0/1/2 of each tuple corresponds to subsystem l = 1/2/3.

    :param transmission_time_s: :math:`t^{(R)}_{ijl}`.
    :param computation_time_s: :math:`t^{(C)}_{ijl}`.
    :param transmission_energy_j: :math:`E^{(R)}_{ijl}`.
    :param computation_energy_j: :math:`E^{(C)}_{ijl}` (zero for l = 2, 3:
        the paper neglects station/cloud compute energy).
    """

    transmission_time_s: Tuple[float, float, float]
    computation_time_s: Tuple[float, float, float]
    transmission_energy_j: Tuple[float, float, float]
    computation_energy_j: Tuple[float, float, float]

    @property
    def total_time_s(self) -> Tuple[float, float, float]:
        """:math:`t_{ijl} = t^{(C)}_{ijl} + t^{(R)}_{ijl}` (Eq. 5)."""
        return tuple(
            c + r for c, r in zip(self.computation_time_s, self.transmission_time_s)
        )

    @property
    def total_energy_j(self) -> Tuple[float, float, float]:
        """:math:`E_{ijl}` (Eq. 5): transmission plus, locally, computation."""
        return tuple(
            r + c
            for r, c in zip(self.transmission_energy_j, self.computation_energy_j)
        )


def task_costs(system: MECSystem, task: Task) -> TaskCosts:
    """Evaluate every :math:`t_{ijl}` / :math:`E_{ijl}` component for ``task``.

    :param system: the MEC system the task lives in.
    :param task: the task to price.
    :returns: the full cost breakdown.
    :raises KeyError: if the task references devices unknown to the system.
    """
    params = system.parameters
    owner = system.device(task.owner_device_id)
    station = system.station_of(task.owner_device_id)
    alpha = task.local_bytes
    beta = task.external_bytes
    total_input = alpha + beta
    result = params.result_size.result_bytes(total_input)

    if task.has_external_data:
        source = system.device(task.external_source)
        same_cluster = system.same_cluster(task.owner_device_id, task.external_source)
        ext_upload_time = source.wireless.upload_time_s(beta)
        ext_upload_energy = source.wireless.upload_energy_j(beta)
    else:
        source = None
        same_cluster = True
        ext_upload_time = 0.0
        ext_upload_energy = 0.0

    bs_bs_time = 0.0 if same_cluster else system.bs_bs_link.transfer_time_s(beta)
    bs_bs_energy = 0.0 if same_cluster else system.bs_bs_link.transfer_energy_j(beta)

    # --- l = 1: run on the owning device -------------------------------
    cycles_device = params.cycles.cycles_on_device(total_input)
    t_c1 = cycles_device / owner.cpu_frequency_hz
    e_c1 = params.kappa * cycles_device * owner.cpu_frequency_hz**2
    if task.has_external_data:
        # Retrieve ED: source uplink, (cross-cluster backhaul,) owner downlink.
        t_r1 = ext_upload_time + owner.wireless.download_time_s(beta) + bs_bs_time
        e_r1 = ext_upload_energy + owner.wireless.download_energy_j(beta) + bs_bs_energy
    else:
        t_r1 = 0.0
        e_r1 = 0.0

    # --- l = 2: run on the owner's base station ------------------------
    cycles_station = params.cycles.cycles_on_station(total_input)
    t_c2 = cycles_station / station.cpu_frequency_hz
    # LD and ED travel concurrently (the max in the paper's formula); the
    # result is pushed back down to the owner afterwards.
    t_r2 = (
        max(ext_upload_time + bs_bs_time, owner.wireless.upload_time_s(alpha))
        + owner.wireless.download_time_s(result)
    )
    e_r2 = (
        ext_upload_energy
        + owner.wireless.upload_energy_j(alpha)
        + owner.wireless.download_energy_j(result)
        + bs_bs_energy
    )

    # --- l = 3: run on the remote cloud --------------------------------
    cycles_cloud = params.cycles.cycles_on_cloud(total_input)
    t_c3 = cycles_cloud / system.cloud.cpu_frequency_hz
    wan_payload = total_input + result
    t_r3 = (
        max(ext_upload_time, owner.wireless.upload_time_s(alpha))
        + owner.wireless.download_time_s(result)
        + system.bs_cloud_link.transfer_time_s(wan_payload)
    )
    e_r3 = (
        ext_upload_energy
        + owner.wireless.upload_energy_j(alpha)
        + owner.wireless.download_energy_j(result)
        + system.bs_cloud_link.transfer_energy_j(wan_payload)
    )

    return TaskCosts(
        transmission_time_s=(t_r1, t_r2, t_r3),
        computation_time_s=(t_c1, t_c2, t_c3),
        transmission_energy_j=(e_r1, e_r2, e_r3),
        computation_energy_j=(e_c1, 0.0, 0.0),
    )


@dataclass(frozen=True)
class ClusterCosts:
    """Vectorised costs for a list of tasks (one cluster, usually).

    :param tasks: the tasks, in the row order of the arrays.
    :param time_s: array of shape (len(tasks), 3): :math:`t_{ijl}`.
    :param energy_j: array of shape (len(tasks), 3): :math:`E_{ijl}`.
    :param resource: array of shape (len(tasks),): :math:`C_{ij}`.
    :param deadline_s: array of shape (len(tasks),): :math:`T_{ij}`.
    """

    tasks: Tuple[Task, ...]
    time_s: np.ndarray
    energy_j: np.ndarray
    resource: np.ndarray
    deadline_s: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.tasks)
        if self.time_s.shape != (n, NUM_SUBSYSTEMS):
            raise ValueError(f"time_s must be ({n}, 3), got {self.time_s.shape}")
        if self.energy_j.shape != (n, NUM_SUBSYSTEMS):
            raise ValueError(f"energy_j must be ({n}, 3), got {self.energy_j.shape}")
        if self.resource.shape != (n,):
            raise ValueError(f"resource must be ({n},), got {self.resource.shape}")
        if self.deadline_s.shape != (n,):
            raise ValueError(f"deadline_s must be ({n},), got {self.deadline_s.shape}")

    @property
    def num_tasks(self) -> int:
        """Number of tasks priced in this cost table."""
        return len(self.tasks)

    def feasible_subsystems(self, row: int) -> Tuple[int, ...]:
        """Subsystem indices (0-based) meeting the deadline for task ``row``."""
        return tuple(
            l for l in range(NUM_SUBSYSTEMS) if self.time_s[row, l] <= self.deadline_s[row]
        )

    def owner_rows(self) -> Dict[int, np.ndarray]:
        """Row indices grouped by owning device id."""
        groups: Dict[int, list] = {}
        for row, task in enumerate(self.tasks):
            groups.setdefault(task.owner_device_id, []).append(row)
        return {owner: np.asarray(rows, dtype=int) for owner, rows in groups.items()}


def cluster_costs(system: MECSystem, tasks: Sequence[Task]) -> ClusterCosts:
    """Price every task and pack the results into arrays.

    :param system: the MEC system.
    :param tasks: tasks to price (typically all tasks of one cluster).
    """
    n = len(tasks)
    time_s = np.zeros((n, NUM_SUBSYSTEMS))
    energy_j = np.zeros((n, NUM_SUBSYSTEMS))
    resource = np.zeros(n)
    deadline = np.zeros(n)
    for row, task in enumerate(tasks):
        costs = task_costs(system, task)
        time_s[row, :] = costs.total_time_s
        energy_j[row, :] = costs.total_energy_j
        resource[row] = task.resource_demand
        deadline[row] = task.deadline_s
    return ClusterCosts(
        tasks=tuple(tasks),
        time_s=time_s,
        energy_j=energy_j,
        resource=resource,
        deadline_s=deadline,
    )
