"""Exact HTA solvers for small instances.

The HTA problem is NP-complete (Theorem 1), so these solvers exist to
*measure* LP-HTA's empirical approximation ratio, not to replace it:

- :func:`brute_force_hta` enumerates all :math:`3^n` assignments — the
  ground truth for up to a dozen tasks.
- :func:`branch_and_bound_hta` prunes a depth-first search with an
  admissible bound (each unfixed task's cheapest deadline-feasible energy),
  practical up to a few dozen tasks.

Both treat cancellation as forbidden (constraint C4 as an equality): they
return ``None`` when no feasible full assignment exists, which is also the
paper's notion of the optimum :math:`x^{OPT}`.
"""

from __future__ import annotations

import itertools
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import NUM_SUBSYSTEMS, ClusterCosts

__all__ = ["branch_and_bound_hta", "brute_force_hta"]

_BRUTE_FORCE_LIMIT = 14


def _feasible(
    costs: ClusterCosts,
    choice: Sequence[int],
    device_caps: Mapping[int, float],
    station_cap: float,
) -> bool:
    """Check C1–C3 for a complete 0-based subsystem choice vector."""
    device_loads: dict = {}
    station_load = 0.0
    for row, l in enumerate(choice):
        if costs.time_s[row, l] > costs.deadline_s[row]:
            return False
        if l == 0:
            owner = costs.tasks[row].owner_device_id
            device_loads[owner] = device_loads.get(owner, 0.0) + costs.resource[row]
        elif l == 1:
            station_load += costs.resource[row]
    for owner, load in device_loads.items():
        if load > device_caps.get(owner, float("inf")):
            return False
    return station_load <= station_cap


def brute_force_hta(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
) -> Optional[Assignment]:
    """Optimal assignment by full enumeration (≤ 14 tasks).

    :param costs: the cluster's priced tasks.
    :param device_caps: :math:`max_i` per device id.
    :param station_cap: :math:`max_S`.
    :returns: the minimum-energy feasible assignment, or ``None`` if no
        full assignment satisfies the constraints.
    :raises ValueError: if the instance is too large to enumerate.
    """
    n = costs.num_tasks
    if n > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"{n} tasks is beyond the brute-force limit ({_BRUTE_FORCE_LIMIT}); "
            "use branch_and_bound_hta"
        )
    best_energy = float("inf")
    best_choice: Optional[Tuple[int, ...]] = None
    for choice in itertools.product(range(NUM_SUBSYSTEMS), repeat=n):
        if not _feasible(costs, choice, device_caps, station_cap):
            continue
        energy = float(sum(costs.energy_j[row, l] for row, l in enumerate(choice)))
        if energy < best_energy:
            best_energy = energy
            best_choice = choice
    if best_choice is None:
        return None
    return Assignment(costs, [Subsystem(l + 1) for l in best_choice])


def branch_and_bound_hta(
    costs: ClusterCosts,
    device_caps: Mapping[int, float],
    station_cap: float,
) -> Optional[Assignment]:
    """Optimal assignment by depth-first branch and bound.

    The lower bound for the unfixed suffix is the sum of each task's
    cheapest deadline-feasible energy (resource constraints relaxed) — an
    admissible bound, so the search is exact.

    :param costs: the cluster's priced tasks.
    :param device_caps: :math:`max_i` per device id.
    :param station_cap: :math:`max_S`.
    :returns: the minimum-energy feasible assignment, or ``None``.
    """
    n = costs.num_tasks
    deadline_ok = costs.time_s <= costs.deadline_s[:, None]

    # Cheapest deadline-feasible energy per task (inf if none).
    masked = np.where(deadline_ok, costs.energy_j, np.inf)
    per_task_min = masked.min(axis=1)
    if np.any(np.isinf(per_task_min)):
        return None  # some task cannot meet its deadline anywhere
    # suffix_bound[k] = lower bound on energy of tasks k..n-1.
    suffix_bound = np.concatenate([np.cumsum(per_task_min[::-1])[::-1], [0.0]])

    # Fix tasks in decreasing resource-demand order: the tightest packing
    # decisions happen high in the tree, so infeasible branches die early.
    order = sorted(range(n), key=lambda r: -costs.resource[r])
    # Rebuild suffix bounds in search order.
    ordered_min = per_task_min[order]
    suffix_bound = np.concatenate([np.cumsum(ordered_min[::-1])[::-1], [0.0]])

    best_energy = float("inf")
    best_choice: Optional[List[int]] = None
    choice = [0] * n

    device_loads: dict = {}
    station_load = 0.0

    def descend(depth: int, energy: float) -> None:
        nonlocal best_energy, best_choice, station_load
        if energy + suffix_bound[depth] >= best_energy:
            return
        if depth == n:
            best_energy = energy
            best_choice = list(choice)
            return
        row = order[depth]
        owner = costs.tasks[row].owner_device_id
        demand = float(costs.resource[row])
        # Try subsystems cheapest-first for better early incumbents.
        for l in sorted(range(NUM_SUBSYSTEMS), key=lambda l: costs.energy_j[row, l]):
            if not deadline_ok[row, l]:
                continue
            if l == 0:
                cap = device_caps.get(owner, float("inf"))
                if device_loads.get(owner, 0.0) + demand > cap:
                    continue
                device_loads[owner] = device_loads.get(owner, 0.0) + demand
            elif l == 1:
                if station_load + demand > station_cap:
                    continue
                station_load += demand
            choice[row] = l
            descend(depth + 1, energy + float(costs.energy_j[row, l]))
            if l == 0:
                device_loads[owner] -= demand
            elif l == 1:
                station_load -= demand

    descend(0, 0.0)
    if best_choice is None:
        return None
    return Assignment(costs, [Subsystem(l + 1) for l in best_choice])
