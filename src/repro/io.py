"""JSON serialization: scenarios, assignments and figure series.

Reproducibility plumbing: a scenario saved with :func:`save_scenario` and
reloaded with :func:`load_scenario` prices every task to the same joule —
the round-trip is exact (tests enforce it), so results can be archived,
diffed and shared without carrying the generator along.

Wireless profiles are serialized by value (not by name), so custom and
Shannon-derived profiles survive the trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.task import Task
from repro.data.items import DataCatalog
from repro.data.ownership import OwnershipMap
from repro.experiments.series import SeriesData
from repro.system.computation import CyclesModel, ResultSizeModel
from repro.system.devices import BaseStation, Cloud, MobileDevice
from repro.system.links import BackhaulLink
from repro.system.radio import WirelessProfile
from repro.system.topology import MECSystem, SystemParameters
from repro.workload.generator import Scenario
from repro.workload.profiles import WorkloadProfile

__all__ = [
    "assignment_from_dict",
    "assignment_to_dict",
    "load_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "series_from_dict",
    "series_to_dict",
    "system_from_dict",
    "system_to_dict",
    "task_from_dict",
    "task_to_dict",
]

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Leaf converters
# ----------------------------------------------------------------------

def _profile_to_dict(profile: WirelessProfile) -> Dict[str, Any]:
    return {
        "name": profile.name,
        "download_rate_bps": profile.download_rate_bps,
        "upload_rate_bps": profile.upload_rate_bps,
        "tx_power_w": profile.tx_power_w,
        "rx_power_w": profile.rx_power_w,
    }


def _profile_from_dict(data: Dict[str, Any]) -> WirelessProfile:
    return WirelessProfile(**data)


def _link_to_dict(link: BackhaulLink) -> Dict[str, Any]:
    return {
        "latency_s": link.latency_s,
        "bandwidth_bps": link.bandwidth_bps,
        "energy_per_byte_j": link.energy_per_byte_j,
    }


def _link_from_dict(data: Dict[str, Any]) -> BackhaulLink:
    return BackhaulLink(**data)


def task_to_dict(task: Task) -> Dict[str, Any]:
    """One task as plain JSON-serializable data."""
    return {
        "owner_device_id": task.owner_device_id,
        "index": task.index,
        "local_bytes": task.local_bytes,
        "external_bytes": task.external_bytes,
        "external_source": task.external_source,
        "resource_demand": task.resource_demand,
        "deadline_s": task.deadline_s,
        "divisible": task.divisible,
        "required_items": sorted(task.required_items),
        "operation": task.operation,
    }


def task_from_dict(data: Dict[str, Any]) -> Task:
    """Inverse of :func:`task_to_dict`."""
    payload = dict(data)
    payload["required_items"] = frozenset(payload.get("required_items", ()))
    return Task(**payload)


# ----------------------------------------------------------------------
# System
# ----------------------------------------------------------------------

def system_to_dict(system: MECSystem) -> Dict[str, Any]:
    """A whole MEC system as plain data."""
    params = system.parameters
    return {
        "devices": [
            {
                "device_id": device.device_id,
                "cpu_frequency_hz": device.cpu_frequency_hz,
                "wireless": _profile_to_dict(device.wireless),
                "max_resource": device.max_resource,
                "data_items": sorted(device.data_items),
                "position": list(device.position) if device.position else None,
            }
            for device in system.devices.values()
        ],
        "stations": [
            {
                "station_id": station.station_id,
                "cpu_frequency_hz": station.cpu_frequency_hz,
                "max_resource": station.max_resource,
                "position": list(station.position) if station.position else None,
            }
            for station in system.stations.values()
        ],
        "attachment": {
            str(device_id): system.cluster_of(device_id)
            for device_id in system.devices
        },
        "cloud": {"cpu_frequency_hz": system.cloud.cpu_frequency_hz},
        "bs_bs_link": _link_to_dict(system.bs_bs_link),
        "bs_cloud_link": _link_to_dict(system.bs_cloud_link),
        "parameters": {
            "kappa": params.kappa,
            "cycles": {
                "cycles_per_byte": params.cycles.cycles_per_byte,
                "device_multiplier": params.cycles.device_multiplier,
                "station_multiplier": params.cycles.station_multiplier,
                "cloud_multiplier": params.cycles.cloud_multiplier,
            },
            "result_size": {
                "ratio": params.result_size.ratio,
                "constant_bytes": params.result_size.constant_bytes,
            },
        },
    }


def system_from_dict(data: Dict[str, Any]) -> MECSystem:
    """Inverse of :func:`system_to_dict`."""
    devices = [
        MobileDevice(
            device_id=entry["device_id"],
            cpu_frequency_hz=entry["cpu_frequency_hz"],
            wireless=_profile_from_dict(entry["wireless"]),
            max_resource=entry["max_resource"],
            data_items=frozenset(entry.get("data_items", ())),
            position=tuple(entry["position"]) if entry.get("position") else None,
        )
        for entry in data["devices"]
    ]
    stations = [
        BaseStation(
            station_id=entry["station_id"],
            cpu_frequency_hz=entry["cpu_frequency_hz"],
            max_resource=entry["max_resource"],
            position=tuple(entry["position"]) if entry.get("position") else None,
        )
        for entry in data["stations"]
    ]
    params = data["parameters"]
    return MECSystem(
        devices=devices,
        stations=stations,
        attachment={int(k): v for k, v in data["attachment"].items()},
        cloud=Cloud(cpu_frequency_hz=data["cloud"]["cpu_frequency_hz"]),
        bs_bs_link=_link_from_dict(data["bs_bs_link"]),
        bs_cloud_link=_link_from_dict(data["bs_cloud_link"]),
        parameters=SystemParameters(
            kappa=params["kappa"],
            cycles=CyclesModel(**params["cycles"]),
            result_size=ResultSizeModel(**params["result_size"]),
        ),
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------

def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """A full scenario (system, tasks, data universe) as plain data."""
    out: Dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "seed": scenario.seed,
        "profile": {
            field: getattr(scenario.profile, field)
            for field in WorkloadProfile.__dataclass_fields__
        },
        "system": system_to_dict(scenario.system),
        "tasks": [task_to_dict(task) for task in scenario.tasks],
        "catalog": None,
        "ownership": None,
    }
    # Tuples → lists for JSON friendliness.
    for key, value in out["profile"].items():
        if isinstance(value, tuple):
            out["profile"][key] = list(value)
    if scenario.catalog is not None:
        out["catalog"] = {
            str(item_id): scenario.catalog.size_of(item_id)
            for item_id in sorted(scenario.catalog.item_ids)
        }
    if scenario.ownership is not None:
        out["ownership"] = {
            str(device_id): sorted(scenario.ownership.items_of(device_id))
            for device_id in sorted(scenario.ownership.device_ids)
        }
    return out


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Inverse of :func:`scenario_to_dict`.

    :raises ValueError: on unknown format versions.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version {version!r}")
    profile_data = dict(data["profile"])
    for key, value in profile_data.items():
        if isinstance(value, list):
            profile_data[key] = tuple(value)
    catalog = None
    if data.get("catalog") is not None:
        catalog = DataCatalog.from_sizes(
            {int(k): v for k, v in data["catalog"].items()}
        )
    ownership = None
    if data.get("ownership") is not None:
        ownership = OwnershipMap(
            {int(k): set(v) for k, v in data["ownership"].items()}
        )
    return Scenario(
        profile=WorkloadProfile(**profile_data),
        seed=data["seed"],
        system=system_from_dict(data["system"]),
        tasks=tuple(task_from_dict(entry) for entry in data["tasks"]),
        catalog=catalog,
        ownership=ownership,
    )


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write a scenario to a JSON file."""
    Path(path).write_text(json.dumps(scenario_to_dict(scenario)))


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a scenario from a JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Assignments and series
# ----------------------------------------------------------------------

def assignment_to_dict(assignment: Assignment) -> Dict[str, Any]:
    """Decisions keyed by task id (costs are re-derived on load)."""
    return {
        "decisions": [
            {"task_id": list(task.task_id), "subsystem": decision.name}
            for task, decision in zip(assignment.costs.tasks, assignment.decisions)
        ],
    }


def assignment_from_dict(
    data: Dict[str, Any], system: MECSystem, tasks: List[Task]
) -> Assignment:
    """Rebuild an assignment against a (re-loaded) system and task list.

    :raises ValueError: if the stored decisions do not match the tasks.
    """
    by_id = {tuple(entry["task_id"]): entry["subsystem"] for entry in data["decisions"]}
    decisions = []
    for task in tasks:
        try:
            decisions.append(Subsystem[by_id[task.task_id]])
        except KeyError:
            raise ValueError(f"no stored decision for task {task.task_id}") from None
    return Assignment(cluster_costs(system, tasks), decisions)


def series_to_dict(series: SeriesData) -> Dict[str, Any]:
    """A figure's series as plain data (the results/figures.json shape)."""
    return {
        "figure_id": series.figure_id,
        "title": series.title,
        "x_label": series.x_label,
        "y_label": series.y_label,
        "x_values": list(series.x_values),
        "series": {name: list(values) for name, values in series.series.items()},
    }


def series_from_dict(data: Dict[str, Any]) -> SeriesData:
    """Inverse of :func:`series_to_dict`."""
    return SeriesData(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        y_label=data["y_label"],
        x_values=tuple(data["x_values"]),
        series={name: tuple(values) for name, values in data["series"].items()},
    )
