"""Partial offloading extension (the [25]/[26] line of related work).

The paper assigns each holistic task to exactly one subsystem.  Its related
work discusses *partial* offloading — splitting a task's computation across
levels — as the natural relaxation.  This package implements that extension
for the data-shared setting: each task's local and external input bytes are
split across device/station/cloud by one linear program per cluster, with
the same energy and (conservatively linearised) deadline model as
Section II.  Because the split is fractional, its optimum lower-bounds any
binary assignment of the same instance — the ablation bench measures how
much binary LP-HTA leaves on the table.
"""

from repro.partial.model import (
    PartialAssignment,
    PartialOptions,
    TaskSplit,
    partial_offloading,
)

__all__ = [
    "PartialAssignment",
    "PartialOptions",
    "TaskSplit",
    "partial_offloading",
]
