"""The partial-offloading linear program.

Variables, per task: the bytes of local data (α) and of external data (β)
processed at each level —

====  ==========================  =============================
var   meaning                     data path priced
====  ==========================  =============================
d_l   local bytes on the device   compute only
d_e   external bytes on device    source uplink (+BS–BS) + owner
                                  downlink + compute
s_l   local bytes on the station  owner uplink + result downlink
s_e   external bytes on station   source uplink (+BS–BS) + result downlink
c_l   local bytes on the cloud    owner uplink + WAN + result downlink
c_e   external bytes on cloud     source uplink + WAN + result downlink
u_l   unserved local bytes        penalty only (no feasible capacity)
u_e   unserved external bytes     penalty only (no feasible capacity)
====  ==========================  =============================

Constraints: the served variables plus the unserved slacks partition (α, β)
(two equality rows per task); per-device and per-station resource caps
scale with the byte share a
level processes (C2/C3); per-task-per-level deadline rows bound each
branch's *serialised* time — a conservative linearisation of Section II's
parallel max (a feasible split here is always feasible in the true model).
Fixed link latencies (BS–BS 15 ms, BS–cloud 250 ms) cannot be expressed per
byte, so a branch whose fixed latency alone exceeds the deadline has its
variables pinned to zero.

Energy is linear per byte throughout, so the whole model is one LP per
cluster, solved with the library's own solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.task import Task
from repro.lp.backends import solve_with_fallback
from repro.lp.problem import LinearProgram
from repro.system.topology import MECSystem

__all__ = ["PartialAssignment", "PartialOptions", "TaskSplit", "partial_offloading"]

_VARS_PER_TASK = 8
_D_L, _D_E, _S_L, _S_E, _C_L, _C_E, _U_L, _U_E = range(_VARS_PER_TASK)

#: LP variables are expressed in MB, not bytes: per-byte energies are ~1e-6
#: while payloads are ~1e6, and that 1e12 spread stalls the interior-point
#: solvers.  In MB both coefficients and right-hand sides are O(1)–O(10).
_BYTES_PER_UNIT = 1e6

#: Penalty (J per unserved MB) on the slack variables U_L/U_E.  Far above
#: any real per-MB cost (~20 J/MB worst case), so bytes go unserved only
#: when no deadline-feasible capacity exists anywhere — the fractional
#: analogue of LP-HTA's task cancellation.
_UNSERVED_PENALTY = 1e4


@dataclass(frozen=True)
class PartialOptions:
    """Tunables of the partial-offloading solver.

    :param backend: LP backend (``"interior-point"``, ``"simplex"`` or
        ``"scipy"``).
    :param fallback_backends: tried in order when the primary fails.
    """

    backend: str = "interior-point"
    fallback_backends: Tuple[str, ...] = ("scipy",)


@dataclass(frozen=True)
class TaskSplit:
    """How one task's bytes were divided.

    :param task: the task.
    :param device_bytes: bytes processed on the owning device.
    :param station_bytes: bytes processed on the base station.
    :param cloud_bytes: bytes processed on the cloud.
    :param unserved_bytes: bytes no deadline-feasible capacity could take
        (the fractional analogue of a cancelled task).
    :param energy_j: energy attributed to this task's split (unserved
        bytes carry no energy).
    """

    task: Task
    device_bytes: float
    station_bytes: float
    cloud_bytes: float
    unserved_bytes: float
    energy_j: float

    @property
    def fractions(self) -> Tuple[float, float, float]:
        """(device, station, cloud) shares of the task's input."""
        total = self.task.input_bytes
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            self.device_bytes / total,
            self.station_bytes / total,
            self.cloud_bytes / total,
        )

    @property
    def served_fraction(self) -> float:
        """Share of the task's bytes actually processed."""
        total = self.task.input_bytes
        if total == 0:
            return 1.0
        return 1.0 - self.unserved_bytes / total

    @property
    def is_binary(self) -> bool:
        """Whether the split degenerates to a single level."""
        return sum(1 for f in self.fractions if f > 1e-9) <= 1


@dataclass(frozen=True)
class PartialAssignment:
    """Result of partial offloading over a set of tasks.

    :param splits: per-task splits (one per input task).
    :param total_energy_j: summed energy of the splits.
    :param lp_iterations: solver iterations over all clusters.
    """

    splits: Tuple[TaskSplit, ...]
    total_energy_j: float
    lp_iterations: int

    @property
    def num_fractional(self) -> int:
        """Tasks genuinely split across more than one level."""
        return sum(1 for split in self.splits if not split.is_binary)

    @property
    def num_dropped(self) -> int:
        """Tasks with most of their bytes unserved (no feasible capacity)."""
        return sum(1 for split in self.splits if split.served_fraction < 0.5)

    @property
    def total_unserved_bytes(self) -> float:
        """Bytes no deadline-feasible capacity could take."""
        return sum(split.unserved_bytes for split in self.splits)


class _TaskCoefficients:
    """Per-byte energy/time coefficients of one task's variables."""

    def __init__(self, system: MECSystem, task: Task) -> None:
        owner = system.device(task.owner_device_id)
        station = system.station_of(task.owner_device_id)
        params = system.parameters
        eta = params.result_size.ratio if not params.result_size.is_constant else 0.0

        if task.has_external_data:
            source = system.device(task.external_source)
            cross = not system.same_cluster(
                task.owner_device_id, task.external_source
            )
            src_up_e = source.wireless.upload_energy_j(1.0)
            src_up_t = source.wireless.upload_time_s(1.0)
        else:
            source, cross = None, False
            src_up_e = src_up_t = 0.0

        bb_e = system.bs_bs_link.energy_per_byte_j if cross else 0.0
        bb_t = 1.0 / system.bs_bs_link.bandwidth_bps * 8.0 if cross else 0.0
        wan_e = system.bs_cloud_link.energy_per_byte_j
        wan_t = 8.0 / system.bs_cloud_link.bandwidth_bps

        own_up_e = owner.wireless.upload_energy_j(1.0)
        own_up_t = owner.wireless.upload_time_s(1.0)
        own_down_e = owner.wireless.download_energy_j(1.0)
        own_down_t = owner.wireless.download_time_s(1.0)

        comp_dev_t = params.cycles.cycles_on_device(1.0) / owner.cpu_frequency_hz
        comp_dev_e = (
            params.kappa
            * params.cycles.cycles_on_device(1.0)
            * owner.cpu_frequency_hz**2
        )
        comp_st_t = params.cycles.cycles_on_station(1.0) / station.cpu_frequency_hz
        comp_cl_t = params.cycles.cycles_on_cloud(1.0) / system.cloud.cpu_frequency_hz

        # Energy per byte, by variable.  The unserved slacks carry the
        # penalty (converted back to per-byte here; the builder rescales).
        self.energy = np.zeros(_VARS_PER_TASK)
        self.energy[_D_L] = comp_dev_e
        self.energy[_D_E] = comp_dev_e + src_up_e + bb_e + own_down_e
        self.energy[_S_L] = own_up_e + eta * own_down_e
        self.energy[_S_E] = src_up_e + bb_e + eta * own_down_e
        self.energy[_C_L] = own_up_e + (1 + eta) * wan_e + eta * own_down_e
        self.energy[_C_E] = src_up_e + (1 + eta) * wan_e + eta * own_down_e
        self.energy[_U_L] = _UNSERVED_PENALTY / _BYTES_PER_UNIT
        self.energy[_U_E] = _UNSERVED_PENALTY / _BYTES_PER_UNIT

        # Serialised branch time per byte, by variable (conservative).
        self.time = np.zeros(_VARS_PER_TASK)
        self.time[_D_L] = comp_dev_t
        self.time[_D_E] = comp_dev_t + src_up_t + bb_t + own_down_t
        self.time[_S_L] = comp_st_t + own_up_t + eta * own_down_t
        self.time[_S_E] = comp_st_t + src_up_t + bb_t + eta * own_down_t
        self.time[_C_L] = comp_cl_t + own_up_t + (1 + eta) * wan_t + eta * own_down_t
        self.time[_C_E] = comp_cl_t + src_up_t + (1 + eta) * wan_t + eta * own_down_t

        # Fixed latency floors per branch (device, station, cloud).
        self.fixed_latency = (
            system.bs_bs_link.latency_s if (cross and task.has_external_data) else 0.0,
            system.bs_bs_link.latency_s if (cross and task.has_external_data) else 0.0,
            system.bs_cloud_link.latency_s,
        )


def _cluster_lp(
    system: MECSystem,
    tasks: Sequence[Task],
    coefficients: Sequence[_TaskCoefficients],
) -> LinearProgram:
    """Build the partial-offloading LP for one cluster's tasks."""
    n = len(tasks)
    num_vars = _VARS_PER_TASK * n

    c = np.zeros(num_vars)
    upper = np.full(num_vars, np.inf)
    a_eq = np.zeros((2 * n, num_vars))
    b_eq = np.zeros(2 * n)
    deadline_rows: List[np.ndarray] = []
    deadline_rhs: List[float] = []

    for row, task in enumerate(tasks):
        base = _VARS_PER_TASK * row
        coeff = coefficients[row]
        c[base : base + _VARS_PER_TASK] = coeff.energy * _BYTES_PER_UNIT

        # Partition rows: locals sum to alpha, externals to beta.  The
        # unserved slacks make the partition always satisfiable.
        a_eq[2 * row, [base + _D_L, base + _S_L, base + _C_L, base + _U_L]] = 1.0
        b_eq[2 * row] = task.local_bytes / _BYTES_PER_UNIT
        a_eq[2 * row + 1, [base + _D_E, base + _S_E, base + _C_E, base + _U_E]] = 1.0
        b_eq[2 * row + 1] = task.external_bytes / _BYTES_PER_UNIT

        # Per-branch deadline rows; branches whose latency floor already
        # breaks the deadline are pinned to zero.
        branches = (
            (coeff.fixed_latency[0], (base + _D_L, base + _D_E)),
            (coeff.fixed_latency[1], (base + _S_L, base + _S_E)),
            (coeff.fixed_latency[2], (base + _C_L, base + _C_E)),
        )
        for floor, var_ids in branches:
            budget = task.deadline_s - floor
            if budget <= 0:
                for var in var_ids:
                    upper[var] = 0.0
                continue
            lhs = np.zeros(num_vars)
            for var in var_ids:
                lhs[var] = coeff.time[var - base] * _BYTES_PER_UNIT
            deadline_rows.append(lhs)
            deadline_rhs.append(budget)

    # Resource rows: device caps on the device share, station cap on the
    # station share, both proportional to processed bytes.
    resource_rows: List[np.ndarray] = []
    resource_rhs: List[float] = []
    by_owner: Dict[int, List[int]] = {}
    for row, task in enumerate(tasks):
        by_owner.setdefault(task.owner_device_id, []).append(row)
    for owner_id, rows in sorted(by_owner.items()):
        cap = system.device(owner_id).max_resource
        if not np.isfinite(cap):
            continue
        lhs = np.zeros(num_vars)
        for row in rows:
            task = tasks[row]
            if task.input_bytes == 0:
                continue
            density = task.resource_demand / task.input_bytes * _BYTES_PER_UNIT
            base = _VARS_PER_TASK * row
            lhs[base + _D_L] = density
            lhs[base + _D_E] = density
        resource_rows.append(lhs)
        resource_rhs.append(cap)
    station = system.station_of(tasks[0].owner_device_id)
    if np.isfinite(station.max_resource):
        lhs = np.zeros(num_vars)
        for row, task in enumerate(tasks):
            if task.input_bytes == 0:
                continue
            density = task.resource_demand / task.input_bytes * _BYTES_PER_UNIT
            base = _VARS_PER_TASK * row
            lhs[base + _S_L] = density
            lhs[base + _S_E] = density
        resource_rows.append(lhs)
        resource_rhs.append(station.max_resource)

    all_rows = deadline_rows + resource_rows
    all_rhs = deadline_rhs + resource_rhs
    lp = LinearProgram(
        c=c,
        a_ub=np.vstack(all_rows) if all_rows else None,
        b_ub=np.asarray(all_rhs) if all_rhs else None,
        a_eq=a_eq,
        b_eq=b_eq,
        upper_bounds=upper,
    )
    return lp


def partial_offloading(
    system: MECSystem,
    tasks: Sequence[Task],
    options: PartialOptions = PartialOptions(),
) -> PartialAssignment:
    """Optimally split every task's bytes across the three levels.

    :param system: the MEC system.
    :param tasks: holistic tasks to split (clusters are solved separately,
        as in LP-HTA).
    :param options: solver tunables.
    :returns: the fractional assignment; its energy lower-bounds any binary
        assignment of the same instance under the serialised-time model.
    """
    splits: List[Optional[TaskSplit]] = [None] * len(tasks)
    total_energy = 0.0
    iterations = 0

    by_cluster: Dict[int, List[int]] = {}
    for row, task in enumerate(tasks):
        by_cluster.setdefault(system.cluster_of(task.owner_device_id), []).append(row)

    for station_id in sorted(by_cluster):
        rows = by_cluster[station_id]
        cluster_tasks = [tasks[r] for r in rows]
        coefficients = [_TaskCoefficients(system, t) for t in cluster_tasks]
        lp = _cluster_lp(system, cluster_tasks, coefficients)

        result = solve_with_fallback(
            lp, methods=(options.backend, *options.fallback_backends)
        )
        if not result.status.ok:
            raise RuntimeError(
                f"partial-offloading LP failed for cluster {station_id}: {result}"
            )
        iterations += result.iterations
        x = result.require_ok()

        for local_row, task in enumerate(cluster_tasks):
            global_row = rows[local_row]
            base = _VARS_PER_TASK * local_row
            values = x[base : base + _VARS_PER_TASK] * _BYTES_PER_UNIT
            served = values.copy()
            served[_U_L] = served[_U_E] = 0.0
            energy = float(coefficients[local_row].energy @ served)
            splits[global_row] = TaskSplit(
                task=task,
                device_bytes=float(values[_D_L] + values[_D_E]),
                station_bytes=float(values[_S_L] + values[_S_E]),
                cloud_bytes=float(values[_C_L] + values[_C_E]),
                unserved_bytes=float(values[_U_L] + values[_U_E]),
                energy_j=energy,
            )
            total_energy += energy

    return PartialAssignment(
        splits=tuple(splits),
        total_energy_j=total_energy,
        lp_iterations=iterations,
    )
