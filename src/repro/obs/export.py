"""Exporters: JSONL event log, Chrome/Perfetto trace, human stage report.

Three consumers of one :class:`~repro.context.Telemetry` sink:

- :func:`write_jsonl` — a line-per-event structured log (spans, counters,
  histograms) for ad-hoc ``jq``/pandas analysis; CLI ``--log-json PATH``.
- :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON format
  (complete ``"X"`` events plus thread-name metadata), loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev; CLI ``--trace PATH``.
  Each logical span track becomes one thread row, with timestamps
  normalised so every track starts at zero.
- :func:`stage_report` — the ``mecrepro report`` table: per-stage counts,
  totals and p50/p95/p99 estimated from the fixed-bucket stage histograms.

Only ``ts``/``dur`` (and the spans' ``start_s``/``duration_s``) carry
wall-clock; :func:`canonical_trace` strips them so CI can diff fork- vs
spawn-started runs byte-for-byte (``scripts/validate_trace.py --strip``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.context import Telemetry

__all__ = [
    "CANONICAL_STAGES",
    "canonical_trace",
    "chrome_trace",
    "jsonl_lines",
    "stage_breakdown",
    "stage_report",
    "write_chrome_trace",
    "write_jsonl",
]

#: The pipeline's coarse stages, in execution order; ``mecrepro report``
#: always prints these rows (zero-count rows included) so breakdowns stay
#: comparable run over run.
CANONICAL_STAGES: Tuple[str, ...] = (
    "generate", "build", "presolve", "solve", "dta", "replay",
)


# ---------------------------------------------------------------------------
# JSONL structured event log


def jsonl_lines(telemetry: "Telemetry") -> Iterator[str]:
    """One JSON object per line: spans first, then counters, histograms and
    the scalar telemetry counters.  Keys are sorted, so two logs differ
    only where their content does."""
    for record in telemetry.spans:
        yield json.dumps(
            {
                "type": "span",
                "name": record.name,
                "start_s": record.start_s,
                "duration_s": record.duration_s,
                "depth": record.depth,
                "track": record.track,
                "attrs": dict(record.attrs),
            },
            sort_keys=True,
        )
    metrics = telemetry.metrics
    for name in sorted(metrics.counters):
        yield json.dumps(
            {"type": "counter", "name": name, "value": metrics.counters[name]},
            sort_keys=True,
        )
    for name in sorted(metrics.histograms):
        payload = metrics.histograms[name].as_dict()
        payload["type"] = "histogram"
        yield json.dumps(payload, sort_keys=True)
    yield json.dumps(
        {"type": "telemetry", "counters": telemetry.as_dict()}, sort_keys=True
    )


def write_jsonl(telemetry: "Telemetry", path: str) -> None:
    """Write :func:`jsonl_lines` to ``path``."""
    with open(path, "w") as handle:
        for line in jsonl_lines(telemetry):
            handle.write(line)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Chrome trace_event


def chrome_trace(telemetry: "Telemetry") -> Dict[str, Any]:
    """The telemetry's spans as a Chrome ``trace_event`` document.

    Spans become complete (``"ph": "X"``) events.  Tracks map to thread
    ids; workers' perf-counter epochs are unrelated, so timestamps are
    re-based per track (every track starts at 0).  Event order, names,
    categories, args, pids and tids are all deterministic for a
    deterministic workload — only ``ts``/``dur`` carry wall-clock.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "mecrepro"},
        }
    ]
    # Spans record on *exit* (children before parents), so a track's first
    # record is not its earliest: base each track on its minimum start.
    track_base: Dict[int, float] = {}
    for record in telemetry.spans:
        base = track_base.get(record.track)
        if base is None or record.start_s < base:
            track_base[record.track] = record.start_s
    for track in sorted(track_base):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": track,
                "args": {"name": f"track-{track}"},
            }
        )
    for record in telemetry.spans:
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": "stage",
                "pid": 0,
                "tid": record.track,
                "ts": (record.start_s - track_base[record.track]) * 1e6,
                "dur": record.duration_s * 1e6,
                "args": dict(record.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(telemetry: "Telemetry", path: str) -> None:
    """Write :func:`chrome_trace` to ``path`` (sorted keys, one line)."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry), handle, sort_keys=True)
        handle.write("\n")


def canonical_trace(trace: Dict[str, Any]) -> Dict[str, Any]:
    """A trace document with every wall-clock field removed.

    The result is bit-identical across start methods and repeated runs of
    the same deterministic workload; CI diffs it between fork and spawn.
    """
    events = []
    for event in trace.get("traceEvents", ()):
        events.append(
            {k: v for k, v in event.items() if k not in ("ts", "dur")}
        )
    out = {k: v for k, v in trace.items() if k != "traceEvents"}
    out["traceEvents"] = events
    return out


# ---------------------------------------------------------------------------
# Human report


def _format_seconds(value: float) -> str:
    if value != value:  # nan: empty histogram
        return "-"
    return f"{value * 1e3:10.3f}"


def stage_report(telemetry: "Telemetry") -> str:
    """The per-stage latency breakdown table plus supporting metrics.

    Canonical stages always appear (zero-count rows print dashes); any
    additional ``stage.*`` histograms follow, then the non-stage
    histograms (LP iterations, per-epoch decision latency, ...) and the
    counters that only make sense as ratios.
    """
    metrics = telemetry.metrics
    named = [(name, f"stage.{name}_s") for name in CANONICAL_STAGES]
    extra = sorted(
        metric
        for metric in metrics.histograms
        if metric.startswith("stage.")
        and metric not in {m for _, m in named}
    )
    named.extend(
        (metric[len("stage."):-len("_s")], metric) for metric in extra
    )

    lines = [
        f"{'stage':<10} {'count':>7} {'total (s)':>10} "
        f"{'p50 (ms)':>10} {'p95 (ms)':>10} {'p99 (ms)':>10}"
    ]
    for stage_name, metric in named:
        histogram = metrics.histogram(metric)
        if histogram is None or histogram.count == 0:
            lines.append(
                f"{stage_name:<10} {0:>7} {'-':>10} {'-':>10} {'-':>10} {'-':>10}"
            )
            continue
        lines.append(
            f"{stage_name:<10} {histogram.count:>7} {histogram.sum:>10.3f} "
            f"{_format_seconds(histogram.quantile(0.50))} "
            f"{_format_seconds(histogram.quantile(0.95))} "
            f"{_format_seconds(histogram.quantile(0.99))}"
        )

    other = sorted(
        metric
        for metric in metrics.histograms
        if not metric.startswith("stage.")
    )
    if other:
        lines.append("")
        for metric in other:
            histogram = metrics.histograms[metric]
            if histogram.count == 0:
                # A histogram can exist with no samples (created by a run
                # that recorded nothing, or restored from a journal); its
                # quantiles are undefined, so print dashes instead of
                # raising or emitting NaN.
                lines.append(
                    f"{metric:<26} count {0:>6}  p50 -  p95 -  p99 -"
                )
                continue
            scale = 1e3 if metric.endswith("_s") else 1.0
            unit = " ms" if metric.endswith("_s") else ""
            lines.append(
                f"{metric:<26} count {histogram.count:>6}  "
                f"p50 {histogram.quantile(0.50) * scale:.3f}{unit}  "
                f"p95 {histogram.quantile(0.95) * scale:.3f}{unit}  "
                f"p99 {histogram.quantile(0.99) * scale:.3f}{unit}"
            )

    if metrics.counters:
        lines.append("")
        for name in sorted(metrics.counters):
            value = metrics.counters[name]
            rendered = f"{value:g}"
            lines.append(f"{name:<26} {rendered}")

    lookups = telemetry.cache_hits + telemetry.cache_misses
    if lookups:
        lines.append("")
        lines.append(
            f"{'lp.cache_hit_ratio':<26} "
            f"{telemetry.cache_hits / lookups:.3f} "
            f"({telemetry.cache_hits}/{lookups})"
        )

    # Sharded LP-HTA coordination: how many shard solves ran, how many
    # outer subgradient iterations, and the summed duality gap (0 when no
    # shared-capacity coupling binds — the shards are then exact).
    if telemetry.shard_solves or telemetry.coordinator_iterations:
        lines.append("")
        lines.append(f"{'shard.solves':<26} {telemetry.shard_solves}")
        lines.append(
            f"{'shard.outer_iterations':<26} {telemetry.coordinator_iterations}"
        )
        lines.append(
            f"{'shard.duality_gap_j':<26} {telemetry.coordinator_gap_j:.6g}"
        )

    # Execution-layer robustness.  The scalar counters (runtime.retries,
    # runtime.quarantines, journal.replays, lp.fallback.<rung>) surface
    # through the generic counter block above; here we add only the
    # per-quarantine detail so a degraded run names its poison cells.
    if telemetry.quarantines:
        lines.append("")
        for entry in telemetry.quarantines:
            lines.append(
                f"quarantined {entry['label']} after "
                f"{entry['attempts']} attempt(s): {entry['error']}"
            )
    return "\n".join(lines)


def stage_breakdown(telemetry: "Telemetry") -> Dict[str, Dict[str, float]]:
    """Stage statistics as plain data (the ``BENCH_sweep.json`` section).

    Only stages that were actually observed appear; all values derive from
    the fixed-bucket histograms, so the section is comparable PR over PR.
    """
    breakdown: Dict[str, Dict[str, float]] = {}
    for metric in sorted(telemetry.metrics.histograms):
        if not metric.startswith("stage.") or not metric.endswith("_s"):
            continue
        histogram = telemetry.metrics.histograms[metric]
        if histogram.count == 0:
            continue
        breakdown[metric[len("stage."):-len("_s")]] = {
            "count": histogram.count,
            "total_s": round(histogram.sum, 4),
            "p50_ms": round(histogram.quantile(0.50) * 1e3, 3),
            "p95_ms": round(histogram.quantile(0.95) * 1e3, 3),
            "p99_ms": round(histogram.quantile(0.99) * 1e3, 3),
        }
    return breakdown
