"""Observability: span tracing, structured metrics, exporters.

Layers (see ``docs/observability.md``):

- :mod:`repro.obs.metrics` — named counters and fixed-bucket histograms,
  merged losslessly across worker processes;
- :mod:`repro.obs.spans` — completed-span records and their track-aware
  mergeable log;
- :mod:`repro.obs.tracer` — the ``span``/``stage`` context managers and
  ``staged``/``traced`` decorators wired into every pipeline stage;
- :mod:`repro.obs.export` — JSONL log, Chrome ``trace_event`` JSON and
  the ``mecrepro report`` stage table.

:mod:`repro.context` imports the metrics/spans layers while it is itself
still initialising (its default telemetry sink holds one of each), so this
``__init__`` keeps the tracer/export layers lazy: they import
``repro.context`` back and must not load until it is complete.
"""

from repro.obs.metrics import Histogram, Metrics, bounds_for
from repro.obs.spans import SpanLog, SpanRecord

__all__ = [
    "Histogram",
    "Metrics",
    "SpanLog",
    "SpanRecord",
    "bounds_for",
    # lazy (PEP 562): tracer and export layers
    "NOOP_SPAN",
    "record_span",
    "span",
    "stage",
    "staged",
    "traced",
    "CANONICAL_STAGES",
    "canonical_trace",
    "chrome_trace",
    "jsonl_lines",
    "stage_breakdown",
    "stage_report",
    "write_chrome_trace",
    "write_jsonl",
]

_TRACER = ("NOOP_SPAN", "record_span", "span", "stage", "staged", "traced")
_EXPORT = (
    "CANONICAL_STAGES",
    "canonical_trace",
    "chrome_trace",
    "jsonl_lines",
    "stage_breakdown",
    "stage_report",
    "write_chrome_trace",
    "write_jsonl",
)


def __getattr__(name):
    if name in _TRACER:
        from repro.obs import tracer

        return getattr(tracer, name)
    if name in _EXPORT:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
