"""Structured metrics: named counters and fixed-bucket histograms.

The existing :class:`~repro.context.Telemetry` counters answer "how many"
and "how long in total"; they cannot answer "what is the p99".  This module
adds the missing distribution layer while keeping the same aggregation
contract the counters already obey:

- **fixed buckets** — every histogram's bucket boundaries are a pure
  function of its metric name (:func:`bounds_for`), so two histograms with
  the same name — recorded in different worker processes, under fork or
  spawn — are always bucket-compatible and merge by elementwise addition;
- **additive merge** — :meth:`Metrics.__add__` folds counters and bucket
  counts together losslessly, which is exactly what
  :meth:`repro.context.Telemetry.merge` does with its scalar slots;
- **no wall-clock identity** — a histogram stores *counts*, never raw
  samples or timestamps, so merged metrics are bit-identical across start
  methods and process counts for a deterministic workload.

Quantiles (p50/p95/p99 in ``mecrepro report`` and the
``stage_breakdown`` section of ``BENCH_sweep.json``) are estimated by
linear interpolation inside the containing bucket, clamped to the observed
min/max — the usual fixed-bucket estimator, deterministic by construction.

This module intentionally imports nothing from the rest of the package so
:mod:`repro.context` can depend on it without a cycle.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_BOUNDS",
    "ITERATION_BOUNDS",
    "TIME_BOUNDS_S",
    "Histogram",
    "Metrics",
    "bounds_for",
]


def _log_grid(decades: Iterable[int], steps: Tuple[float, ...]) -> Tuple[float, ...]:
    return tuple(step * 10.0 ** d for d in decades for step in steps)


#: Latency buckets: 1/2.5/5 per decade from 10 µs to 10 s, then a minute.
#: Every metric named ``*_s`` uses these, so stage timings from any process
#: merge bucket-for-bucket.
TIME_BOUNDS_S: Tuple[float, ...] = _log_grid(range(-5, 1), (1.0, 2.5, 5.0)) + (
    25.0,
    60.0,
)

#: Iteration-count buckets (IPM/simplex iterations per solve).
ITERATION_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 18.0, 27.0, 40.0, 60.0, 90.0, 140.0,
    200.0, 300.0,
)

#: Fallback buckets for unnamed quantities: one per decade.
DEFAULT_BOUNDS: Tuple[float, ...] = _log_grid(range(0, 7), (1.0,))

#: Metric names with buckets that the suffix rules would get wrong.
#: ``lp.batch_size`` (blocks per mega-solve) shares the iteration grid:
#: both are small counts where decade buckets would flatten the p50/p95.
_NAMED_BOUNDS: Dict[str, Tuple[float, ...]] = {
    "lp.iterations": ITERATION_BOUNDS,
    "lp.batch_size": ITERATION_BOUNDS,
}


def bounds_for(name: str) -> Tuple[float, ...]:
    """The fixed bucket boundaries for a metric name.

    Names ending in ``_s`` are second-valued latencies; everything else
    falls back to decade buckets unless explicitly registered.  Keeping
    this a pure function of the name is what makes histograms from
    independent processes mergeable without negotiation.
    """
    explicit = _NAMED_BOUNDS.get(name)
    if explicit is not None:
        return explicit
    if name.endswith("_s"):
        return TIME_BOUNDS_S
    return DEFAULT_BOUNDS


class Histogram:
    """A fixed-bucket histogram of one named quantity.

    Bucket ``i`` counts observations ``v`` with ``bounds[i-1] < v <=
    bounds[i]``; a final overflow bucket catches everything above the last
    bound.  ``min``/``max``/``sum`` are tracked exactly so totals and
    quantile clamps do not depend on bucket resolution.
    """

    def __init__(self, name: str, bounds: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else bounds_for(name)
        )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Linear interpolation inside the containing bucket, clamped to the
        observed min/max; ``nan`` when the histogram is empty.
        """
        if self.count == 0:
            return float("nan")
        target = q * self.count
        if target <= 0:
            return self.min
        cumulative = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[index] if index < len(self.bounds) else self.max
            )
            if bucket_count and cumulative + bucket_count >= target:
                if upper <= lower:
                    estimate = upper
                else:
                    estimate = lower + (upper - lower) * (
                        (target - cumulative) / bucket_count
                    )
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            if index < len(self.bounds):
                lower = self.bounds[index]
        return self.max

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both sides' counts.

        :raises ValueError: when the bucket boundaries differ (cannot
            happen for histograms created through :class:`Metrics`, whose
            bounds derive from the metric name).
        """
        if self.name != other.name or self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} {other.bounds} into "
                f"{self.name!r} {self.bounds}: buckets differ"
            )
        out = Histogram(self.name, self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot (stable keys; ``None`` min/max when
        empty)."""
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.name == other.name
            and self.bounds == other.bounds
            and self.counts == other.counts
            and self.count == other.count
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.6g})"
        )


class Metrics:
    """A bag of named counters and histograms attached to a telemetry sink.

    Rides the :class:`~repro.context.Telemetry` merge protocol: merging two
    sinks adds this object with ``+``, which folds counters and bucket
    counts together losslessly.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram.

        The histogram is created on first use with the fixed buckets of
        :func:`bounds_for`, so equally named histograms always merge.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self.histograms[name] = histogram
        histogram.observe(value)

    def counter(self, name: str) -> float:
        """The named counter's value (zero when never incremented)."""
        return self.counters.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` when nothing was observed."""
        return self.histograms.get(name)

    def __add__(self, other: "Metrics") -> "Metrics":
        if not isinstance(other, Metrics):
            return NotImplemented
        merged = Metrics()
        merged.counters = dict(self.counters)
        for name, value in other.counters.items():
            merged.counters[name] = merged.counters.get(name, 0.0) + value
        merged.histograms = dict(self.histograms)
        for name, histogram in other.histograms.items():
            mine = merged.histograms.get(name)
            merged.histograms[name] = (
                histogram if mine is None else mine.merged(histogram)
            )
        return merged

    def as_dict(self) -> Dict[str, Any]:
        """Counters and histograms as one JSON-friendly dict (sorted keys)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metrics):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.histograms == other.histograms
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(counters={sorted(self.counters)}, "
            f"histograms={sorted(self.histograms)})"
        )
