"""The span tracer: nested monotonic spans over the solve pipeline.

Usage at an instrumentation site::

    from repro.obs.tracer import span, stage, staged, traced

    with span("solve", backend="structured"):      # span only (trace mode)
        ...

    with stage("replay", tasks=n):                  # span + stage histogram
        ...

    @staged("build")                                # whole function = stage
    def build_p2(...): ...

    @traced("lp.interior_point")                    # whole function = span
    def solve_interior_point(...): ...

Three API layers, by cost:

- :func:`span` — records a :class:`~repro.obs.spans.SpanRecord` into the
  active context's telemetry, **only when the context has ``trace=True``**.
  Disabled, it returns a shared no-op context manager (:data:`NOOP_SPAN`)
  without allocating: one contextvar read and one attribute check.  The
  disabled path is the default everywhere and is guarded by a differential
  test (``tests/test_obs.py``).
- :func:`stage` — a span *plus* an always-on observation into the
  ``stage.<name>_s`` fixed-bucket histogram, the source of
  ``mecrepro report`` and ``BENCH_sweep.json``'s ``stage_breakdown``.
  Stages mark the pipeline's coarse units (one scenario generation, one LP
  solve, one DES replay), so the constant per-call cost — two
  ``perf_counter`` reads and a bucket increment — is noise against the
  work being measured.
- :func:`staged` / :func:`traced` — decorator forms of the two above.

Nesting depth is tracked with a :mod:`contextvars` variable, so spans nest
correctly across threads and ``asyncio`` tasks.  Span *content* (name,
attributes, depth, order) is deterministic for a deterministic workload;
only ``start_s``/``duration_s`` carry wall-clock, and exporters know to
strip them when diffing.
"""

from __future__ import annotations

import contextvars
import functools
import time
from typing import Any, Callable, Optional, TypeVar

# Module-style import: repro.context imports repro.obs.metrics while it is
# itself still executing, which runs this package's __init__; binding the
# module object (instead of its attributes) keeps that order safe.
import repro.context as _context
from repro.obs.spans import SpanRecord

__all__ = [
    "NOOP_SPAN",
    "record_span",
    "span",
    "stage",
    "staged",
    "traced",
]

_DEPTH: "contextvars.ContextVar[int]" = contextvars.ContextVar(
    "repro_span_depth", default=0
)

_F = TypeVar("_F", bound=Callable[..., Any])


class _NoopSpan:
    """The disabled-tracer fast path: a shared, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


#: The singleton returned by :func:`span` when tracing is off.  Identity
#: is asserted in tests: the disabled path must not allocate per call.
NOOP_SPAN = _NoopSpan()


def _sorted_attrs(attrs: dict) -> tuple:
    return tuple(sorted(attrs.items()))


class _Span:
    """A live span; records itself on exit."""

    __slots__ = ("name", "telemetry", "attrs", "start", "depth", "_token")

    def __init__(self, name: str, telemetry: Any, attrs: dict):
        self.name = name
        self.telemetry = telemetry
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self.depth = _DEPTH.get()
        self._token = _DEPTH.set(self.depth + 1)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self.start
        _DEPTH.reset(self._token)
        self.telemetry.spans.append(
            SpanRecord(
                name=self.name,
                start_s=self.start,
                duration_s=duration,
                depth=self.depth,
                track=0,
                attrs=_sorted_attrs(self.attrs),
            )
        )
        return False


def span(name: str, context: Optional[Any] = None, **attrs: Any):
    """A context manager recording one span when tracing is enabled.

    :param name: span name (deterministic — no wall-clock, no ids).
    :param context: explicit :class:`~repro.context.RunContext`; defaults
        to the active one.
    :param attrs: attributes stamped onto the record, sorted by key.  Must
        be deterministic for the trace-diffing guarantees to hold.
    """
    ctx = context if context is not None else _context.current_context()
    if not ctx.trace:
        return NOOP_SPAN
    return _Span(name, ctx.telemetry, attrs)


class _Stage:
    """A pipeline stage: always-on histogram timing plus an optional span."""

    __slots__ = ("name", "metric", "context", "attrs", "start", "depth", "_token")

    def __init__(self, name: str, metric: str, context: Any, attrs: dict):
        self.name = name
        self.metric = metric
        self.context = context
        self.attrs = attrs

    def __enter__(self) -> "_Stage":
        if self.context.trace:
            self.depth = _DEPTH.get()
            self._token = _DEPTH.set(self.depth + 1)
        else:
            self._token = None
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self.start
        telemetry = self.context.telemetry
        telemetry.metrics.observe(self.metric, duration)
        if self._token is not None:
            _DEPTH.reset(self._token)
            telemetry.spans.append(
                SpanRecord(
                    name=self.name,
                    start_s=self.start,
                    duration_s=duration,
                    depth=self.depth,
                    track=0,
                    attrs=_sorted_attrs(self.attrs),
                )
            )
        return False


def stage(name: str, context: Optional[Any] = None, **attrs: Any) -> _Stage:
    """Time one pipeline stage into ``stage.<name>_s`` (+ a span if tracing).

    :param name: stage name — one of the pipeline's coarse units
        (``generate``, ``build``, ``presolve``, ``solve``, ``dta``,
        ``replay``, ``recovery``).
    :param context: explicit run context; defaults to the active one.
    :param attrs: deterministic span attributes (ignored when not tracing).
    """
    ctx = context if context is not None else _context.current_context()
    return _Stage(name, "stage." + name + "_s", ctx, attrs)


def staged(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`stage`: the whole function is one stage."""

    def decorate(func: _F) -> _F:
        metric = "stage." + name + "_s"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            ctx = _context.current_context()
            with _Stage(name, metric, ctx, {}):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def traced(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`span`: the whole function is one span."""

    def decorate(func: _F) -> _F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            ctx = _context.current_context()
            if not ctx.trace:
                return func(*args, **kwargs)
            with _Span(name, ctx.telemetry, {}):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def record_span(
    name: str,
    start_s: float,
    duration_s: float,
    context: Optional[Any] = None,
    **attrs: Any,
) -> None:
    """Record an already-measured interval as a span (if tracing).

    For call sites that cannot wrap their body in a ``with`` block (e.g.
    the online scheduler's epoch loop, which measures an interval across
    ``continue`` paths).  ``start_s`` must come from ``time.perf_counter``.
    """
    ctx = context if context is not None else _context.current_context()
    if not ctx.trace:
        return
    ctx.telemetry.spans.append(
        SpanRecord(
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            depth=_DEPTH.get(),
            track=0,
            attrs=_sorted_attrs(attrs),
        )
    )
