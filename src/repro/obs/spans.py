"""Completed-span records and their mergeable log.

A :class:`SpanRecord` is the *result* of a span — name, monotonic start,
duration, nesting depth, attributes — produced by :mod:`repro.obs.tracer`
when tracing is enabled.  Records accumulate in a :class:`SpanLog` that
rides the :class:`~repro.context.Telemetry` merge protocol: worker
processes return their log next to their counters, and the parent folds
logs together with ``+`` in submission order.

**Tracks.**  Spans from different processes interleave in wall time but
must not be flattened onto one timeline — nesting would become
meaningless.  Every fresh log records on logical track 0; merging a
non-empty log relabels its records onto fresh track ids after the
receiver's.  Because :func:`repro.experiments.parallel.run_cells` merges
cell telemetry in submission order, track assignment — like everything
else in a record except ``start_s``/``duration_s`` — is deterministic
across fork, spawn and repeated runs.  :meth:`SpanLog.content` exposes
exactly that wall-clock-free view, which is what CI diffs.

No imports from the rest of the package, so :mod:`repro.context` can
depend on this module without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, List, Tuple

__all__ = ["SpanLog", "SpanRecord"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    :param name: span name (stage name or a solver-internal label).
    :param start_s: ``time.perf_counter()`` at open — monotonic and only
        meaningful relative to other spans of the same process/track.
    :param duration_s: wall time between open and close.
    :param depth: nesting depth at open (0 = top level of its track).
    :param track: logical timeline; assigned on merge (see module doc).
    :param attrs: sorted ``(key, value)`` attribute pairs.
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    track: int
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def content_key(self) -> Tuple[Any, ...]:
        """The record minus its wall-clock fields (for trace diffing)."""
        return (self.track, self.depth, self.name, self.attrs)


class SpanLog:
    """An append-only list of completed spans with track-aware merging."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self.tracks = 1

    def append(self, record: SpanRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records)

    def __add__(self, other: "SpanLog") -> "SpanLog":
        if not isinstance(other, SpanLog):
            return NotImplemented
        merged = SpanLog()
        merged.records = list(self.records)
        merged.tracks = self.tracks
        if other.records:
            base = merged.tracks
            merged.records.extend(
                replace(record, track=record.track + base)
                for record in other.records
            )
            merged.tracks += other.tracks
        return merged

    def content(self) -> Tuple[Tuple[Any, ...], ...]:
        """Every record's :meth:`~SpanRecord.content_key`, in order.

        Deterministic for a deterministic workload — equal across fork and
        spawn, and equal modulo track ids between sequential and parallel
        execution of the same cells.
        """
        return tuple(record.content_key() for record in self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanLog):
            return NotImplemented
        return self.records == other.records and self.tracks == other.tracks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanLog({len(self.records)} spans, {self.tracks} tracks)"
