"""Remote-failure types for the crash-safe execution runtime.

A worker that dies mid-cell reaches the parent as a bare
``BrokenProcessPool``; a worker that *raises* historically reached it as
the exception repr with the remote stack lost to the pickle boundary.
:class:`RemoteCellError` closes that gap: worker entry points catch any
evaluation failure and re-raise it wrapped with the formatted remote
traceback plus the cell coordinates (cell indices, shard id, seed), all
carried through pickling, so the main-process error message (and the
quarantine record) shows exactly where and why the worker failed.

Configuration mistakes — an unknown algorithm name, a bad evaluator kind —
raise ``ValueError``/``TypeError`` and must stay *fatal*: retrying them is
useless and quarantining them would silently turn a typo into a ``nan``
curve.  :func:`is_config_error` is the supervisor's classifier; it sees
through a :class:`RemoteCellError` to the original exception type.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Optional

__all__ = ["CellFailedError", "RemoteCellError", "is_config_error"]

#: Exception types that indicate a configuration mistake rather than a
#: transient runtime failure.  The supervisor re-raises these immediately
#: instead of retrying or quarantining.
_CONFIG_ERROR_TYPES = (ValueError, TypeError)
_CONFIG_ERROR_NAMES = tuple(t.__name__ for t in _CONFIG_ERROR_TYPES)


class RemoteCellError(RuntimeError):
    """An evaluation failure in a worker, with its remote stack preserved.

    :param label: where the failure happened (cell indices, shard, seed).
    :param original_type: class name of the original exception.
    :param remote_traceback: ``traceback.format_exc()`` from the worker.
    :param original: the original exception instance when it pickles,
        else ``None`` (the type name and traceback always survive).
    """

    def __init__(
        self,
        label: str,
        original_type: str,
        remote_traceback: str,
        original: Optional[BaseException] = None,
    ) -> None:
        super().__init__(
            f"{label} failed with {original_type}; remote traceback:\n"
            f"{remote_traceback}"
        )
        self.label = label
        self.original_type = original_type
        self.remote_traceback = remote_traceback
        self.original = original

    def __reduce__(self):
        return (
            RemoteCellError,
            (self.label, self.original_type, self.remote_traceback, self.original),
        )

    @classmethod
    def wrap(cls, exc: BaseException, label: str) -> "RemoteCellError":
        """Wrap ``exc`` (the currently-handled exception) for the wire."""
        original: Optional[BaseException] = exc
        try:
            pickle.dumps(exc)
        except Exception:
            original = None
        return cls(
            label=label,
            original_type=type(exc).__name__,
            remote_traceback=traceback.format_exc(),
            original=original,
        )


class CellFailedError(RuntimeError):
    """A cell exhausted its attempts and quarantine is disabled."""


def is_config_error(exc: BaseException) -> bool:
    """Whether ``exc`` is a configuration mistake the supervisor must
    re-raise instead of retrying (unknown algorithm/backend/evaluator)."""
    if isinstance(exc, RemoteCellError):
        return exc.original_type in _CONFIG_ERROR_NAMES
    return isinstance(exc, _CONFIG_ERROR_TYPES)


def config_error_of(exc: BaseException) -> BaseException:
    """The exception to re-raise for a config error: the original when a
    :class:`RemoteCellError` still carries it, else ``exc`` itself."""
    if isinstance(exc, RemoteCellError) and exc.original is not None:
        return exc.original
    return exc
