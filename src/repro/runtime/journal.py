"""Append-only checkpoint journal for sweep cells and streamed tiles.

A city-scale sweep is hours of work; a SIGKILL (preemption, OOM, operator)
must not throw it away.  The journal records every completed cell as one
JSONL line keyed by the cell's *content fingerprint* — a SHA-256 over the
workload profile, seed, evaluator identities and the result-determining
fields of the cell's :class:`~repro.context.RunContext` — so a restarted
run with ``--resume`` replays exactly the cells whose inputs are unchanged
and recomputes everything else.  Because every evaluator is a pure
function of those inputs, a replayed result is bit-identical to a
recomputed one, and a resumed sweep's figure output is byte-identical to
an uninterrupted run's (enforced by the crash-resume CI smoke job).

Format (one JSON object per line)::

    {"kind": "header", "version": 1}
    {"kind": "cell", "key": "<sha256 hex>", "data": "<base64 pickle>"}

Crash tolerance: each append is flushed and fsynced, and the loader
ignores a truncated or corrupt final line, so a journal written up to the
moment of a ``kill -9`` loads cleanly.  Only the dispatching process
writes; workers never touch the journal.

``--journal PATH`` without ``--resume`` starts the journal fresh (the
file is truncated on the first open of the process); with ``--resume``
existing entries are loaded and replayed.  Cells that cannot be
fingerprinted — callable evaluators, whose identity the journal cannot
capture — always run live and are never recorded.
"""

from __future__ import annotations

import atexit
import base64
import hashlib
import json
import os
import pickle
from typing import Any, Dict, IO, Optional, Tuple

from repro.context import RunContext

__all__ = ["Journal", "context_fingerprint", "fingerprint", "journal_for"]

_JOURNAL_VERSION = 1

#: RunContext fields that determine results.  Runtime knobs (retry/timeout
#: config, the journal settings themselves), telemetry, tracing and cache
#: capacities are deliberately excluded: they change how a run executes or
#: reports, never what it computes, so a resumed run may replay cells
#: recorded under different values of them.
_RESULT_FIELDS: Tuple[str, ...] = (
    "reference",
    "vectorized_costs",
    "cached_costs",
    "lp_backend",
    "lp_fallback_backends",
    "lp_warm_start",
    "lp_sparse",
    "lp_batch",
    "seed",
    "shards",
)


def context_fingerprint(context: RunContext) -> Tuple[Any, ...]:
    """The result-determining slice of a context, as a hashable tuple."""
    return tuple(
        (name, getattr(context, name)) for name in _RESULT_FIELDS
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 over the canonical repr of ``parts``.

    Every part must have a deterministic ``repr`` (frozen dataclasses of
    primitives, tuples, strings, numbers) — the callers build keys only
    from such values.
    """
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


class Journal:
    """One append-only JSONL checkpoint file.

    :param path: journal location.
    :param resume: load existing entries for replay; when ``False`` the
        file is truncated and started fresh.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        self._entries: Dict[str, bytes] = {}
        if resume and os.path.exists(path):
            self._load(path)
        self._handle: IO[str] = open(path, "a" if resume else "w")
        if not resume or os.path.getsize(path) == 0:
            self._append({"kind": "header", "version": _JOURNAL_VERSION})

    def _load(self, path: str) -> None:
        """Read every parseable entry; tolerate a torn final line."""
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one torn line;
                    # anything before it already hit the disk fsynced.
                    continue
                if entry.get("kind") != "cell":
                    continue
                key = entry.get("key")
                data = entry.get("data")
                if not isinstance(key, str) or not isinstance(data, str):
                    continue
                try:
                    self._entries[key] = base64.b64decode(data, validate=True)
                except (ValueError, TypeError):
                    continue

    def _append(self, entry: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """The recorded value for ``key``, or ``None``."""
        blob = self._entries.get(key)
        if blob is None:
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            # A journal written by an incompatible version: recompute.
            return None

    def record(self, key: str, value: Any) -> None:
        """Durably append one completed cell (flush + fsync)."""
        blob = pickle.dumps(value)
        self._entries[key] = blob
        self._append(
            {
                "kind": "cell",
                "key": key,
                "data": base64.b64encode(blob).decode("ascii"),
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: Open journals keyed by absolute path.  A multi-sweep invocation
#: (``all-figures``, repeated ``run_cells`` calls) shares one handle per
#: path, so a fresh (non-resume) run truncates once — at the first open —
#: and appends from then on.
_OPEN_JOURNALS: Dict[str, Journal] = {}


def journal_for(path: Optional[str], resume: bool = False) -> Optional[Journal]:
    """The process-wide journal for ``path`` (opened on first use).

    :param path: journal file location; ``None`` disables journaling.
    :param resume: honoured on the first open of each path only.
    """
    if path is None:
        return None
    key = os.path.abspath(path)
    journal = _OPEN_JOURNALS.get(key)
    if journal is None:
        journal = Journal(path, resume=resume)
        _OPEN_JOURNALS[key] = journal
    return journal


def _close_journals() -> None:
    while _OPEN_JOURNALS:
        _, journal = _OPEN_JOURNALS.popitem()
        journal.close()


atexit.register(_close_journals)
