"""Supervised execution: timeouts, bounded retries, poison-cell quarantine.

The sweep engine's historical failure story was one ``BrokenProcessPool``
retry around the whole ``pool.map``: a single crashing cell re-ran the
entire batch once and then took the sweep down.  The supervisor replaces
that with per-unit bookkeeping:

- **Timeouts** — each dispatched unit is awaited with a wall-clock budget
  (:attr:`RetryPolicy.timeout_s`); a unit that exceeds it has its pool
  discarded (the only way to reap a hung ``ProcessPoolExecutor`` worker)
  and is retried.
- **Bounded retries with decorrelated-jitter backoff** — a failed unit is
  re-run up to :attr:`RetryPolicy.max_attempts` times, sleeping a random
  interval drawn from ``[base, 3 × previous]`` (capped) between rounds,
  so a transient resource blip does not produce a synchronized thundering
  retry herd.
- **Quarantine** — a unit that exhausts its attempts is recorded (label,
  attempt count, error with the remote traceback) in the run's telemetry
  and *skipped*: its result slot stays ``None``, downstream averaging
  treats it as a missing sample, and the sweep completes.

**Failure attribution.**  When a pool breaks, every unfinished future
raises ``BrokenProcessPool`` — the parent cannot tell which unit killed
the worker.  Rather than charging every in-flight unit (which would let a
single poison cell quarantine innocent neighbours), the supervisor
switches to *careful mode*: completed results are harvested, the
remaining units are re-dispatched one at a time, and only a unit that
fails **alone** is charged an attempt.  Multi-cell units (batched sweep
columns) are split into singletons on the way, isolating the poison cell;
the split is result-preserving because batched and sequential evaluation
are bit-identical by construction.

Configuration errors (``ValueError``/``TypeError`` — unknown algorithm,
bad evaluator kind) are re-raised immediately: retrying a typo is useless
and quarantining it would silently turn it into a ``nan`` curve.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import (
    CancelledError,
    Future,
    TimeoutError as FutureTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.context import RunContext
from repro.obs.tracer import span
from repro.runtime.errors import (
    CellFailedError,
    RemoteCellError,
    config_error_of,
    is_config_error,
)

__all__ = ["PoolHandle", "RetryPolicy", "Supervisor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision tunables, normally derived from the run context.

    :param max_attempts: charged attempts per unit before quarantine
        (``1`` disables retries).
    :param timeout_s: per-unit wall-clock budget for pooled dispatch;
        ``0`` disables timeouts.  In-process execution cannot be
        interrupted, so the budget applies only across a pool.
    :param backoff_base_s: floor of the decorrelated-jitter backoff slept
        between retry rounds.
    :param backoff_cap_s: ceiling of the backoff.
    :param quarantine: record-and-skip exhausted units; ``False`` raises
        :class:`~repro.runtime.errors.CellFailedError` instead.
    :param seed: seed for the backoff jitter (the only randomness here;
        results never depend on it).
    """

    max_attempts: int = 2
    timeout_s: float = 0.0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    quarantine: bool = True
    seed: int = 0

    @classmethod
    def from_context(cls, context: RunContext) -> "RetryPolicy":
        return cls(
            max_attempts=max(1, context.max_attempts),
            timeout_s=context.cell_timeout_s,
            backoff_base_s=context.retry_backoff_s,
            quarantine=context.quarantine,
            seed=context.seed,
        )


class PoolHandle:
    """What the supervisor needs from a pool cache: get one, drop one."""

    def __init__(
        self, acquire: Callable[[], Any], discard: Callable[[], None]
    ) -> None:
        self.acquire = acquire
        self.discard = discard


class _Unit:
    """One dispatchable unit: a tuple of item ids plus its charge sheet."""

    __slots__ = ("ids", "attempts", "last_error")

    def __init__(self, ids: Tuple[int, ...], attempts: int = 0) -> None:
        self.ids = ids
        self.attempts = attempts
        self.last_error = ""


def _describe_error(exc: BaseException) -> str:
    if isinstance(exc, RemoteCellError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


class Supervisor:
    """Run units of work to completion under a :class:`RetryPolicy`.

    Item ids are opaque integers chosen by the caller (cell indices);
    units are tuples of ids (a batched sweep column is one unit until it
    has to split).  Results come back as ``{item_id: result}`` plus the
    list of quarantined item ids; quarantine details (label, attempts,
    traceback) are recorded on the context's telemetry.  ``on_result``
    (if given) fires once per completed item, in the submitting process,
    the moment its unit finishes — the checkpoint journal hangs off it so
    a crash mid-sweep keeps every cell completed so far.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        context: RunContext,
        describe: Optional[Callable[[Tuple[int, ...]], str]] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> None:
        self._policy = policy
        self._context = context
        self._describe = describe or (lambda ids: f"cells {list(ids)}")
        self._on_result = on_result
        self._rng = random.Random(policy.seed ^ 0x5EE)
        self._prev_backoff = policy.backoff_base_s

    def _deliver(
        self, results: Dict[int, Any], ids: Tuple[int, ...], out: Sequence[Any]
    ) -> None:
        """Record a unit's per-item results, notifying ``on_result`` as we
        go — that is the hook checkpointing journals hang off, so it must
        fire the moment an item completes, not when the sweep ends."""
        for item_id, value in zip(ids, out):
            results[item_id] = value
            if self._on_result is not None:
                self._on_result(item_id, value)

    # -- shared bookkeeping -------------------------------------------------

    def _backoff(self) -> None:
        """Decorrelated jitter: sleep U(base, 3 × previous), capped."""
        delay = min(
            self._policy.backoff_cap_s,
            self._rng.uniform(
                self._policy.backoff_base_s, max(self._prev_backoff * 3, self._policy.backoff_base_s)
            ),
        )
        self._prev_backoff = delay
        if delay > 0:
            time.sleep(delay)

    def _charge(
        self,
        unit: _Unit,
        error: str,
        requeue: List[_Unit],
        quarantined: List[int],
        *,
        timeout: bool,
    ) -> None:
        """Charge a unit one attributed attempt; requeue, or quarantine."""
        unit.attempts += 1
        unit.last_error = error
        telemetry = self._context.telemetry
        if unit.attempts >= self._policy.max_attempts:
            if not self._policy.quarantine:
                raise CellFailedError(
                    f"{self._describe(unit.ids)} failed after "
                    f"{unit.attempts} attempts: {error}"
                )
            telemetry.record_quarantine(
                self._describe(unit.ids), unit.attempts, error
            )
            quarantined.extend(unit.ids)
            return
        telemetry.record_retry(timeout=timeout)
        requeue.extend(self._split(unit))

    @staticmethod
    def _split(unit: _Unit) -> List[_Unit]:
        """Singleton units isolating each item (attempts carry over)."""
        if len(unit.ids) <= 1:
            return [unit]
        return [_Unit((i,), unit.attempts) for i in unit.ids]

    # -- in-process execution ----------------------------------------------

    def run_local(
        self,
        groups: Sequence[Tuple[int, ...]],
        evaluate: Callable[[Tuple[int, ...]], List[Any]],
    ) -> Tuple[Dict[int, Any], List[int]]:
        """Evaluate every group in-process, with retries and quarantine.

        :param groups: item-id tuples (batched columns stay whole unless
            they fail and split).
        :param evaluate: maps an id tuple to the per-item results, in id
            order.  Must be pure — retries re-invoke it.
        :returns: ``({item_id: result}, quarantined item ids)``.
        """
        results: Dict[int, Any] = {}
        quarantined: List[int] = []
        pending = [_Unit(tuple(ids)) for ids in groups if ids]
        while pending:
            unit = pending.pop(0)
            try:
                out = evaluate(unit.ids)
            except Exception as exc:
                if is_config_error(exc):
                    raise config_error_of(exc) from exc
                requeue: List[_Unit] = []
                with span("runtime.retry", context=self._context,
                          unit=self._describe(unit.ids)):
                    self._charge(
                        unit, _describe_error(exc), requeue, quarantined,
                        timeout=False,
                    )
                if requeue:
                    self._backoff()
                    pending = requeue + pending
                continue
            self._deliver(results, unit.ids, out)
        return results, quarantined

    # -- pooled execution ---------------------------------------------------

    def run_pooled(
        self,
        groups: Sequence[Tuple[int, ...]],
        worker_fn: Callable[..., Any],
        make_payload: Callable[[Tuple[int, ...]], Any],
        pool: PoolHandle,
        merge_telemetry: Callable[[Any], None],
    ) -> Tuple[Dict[int, Any], List[int]]:
        """Dispatch every group across a worker pool, supervised.

        ``worker_fn(payload)`` must return ``(per_item_results,
        telemetry)`` with one result per id, in id order.  Submission
        order is preserved within a round, and results are keyed by item
        id, so callers reassemble deterministic output regardless of
        scheduling.

        A ``KeyboardInterrupt`` (or any ``BaseException``) cancels the
        outstanding futures and discards the pool before propagating, so
        an interrupted sweep reaps its workers deterministically instead
        of leaving them to the ``atexit`` hook.

        :returns: ``({item_id: result}, quarantined item ids)``.
        """
        results: Dict[int, Any] = {}
        quarantined: List[int] = []
        pending = [_Unit(tuple(ids)) for ids in groups if ids]
        careful = False  # one unit at a time, for exact failure attribution
        while pending:
            if careful:
                batch, pending = [pending[0]], pending[1:]
            else:
                batch, pending = pending, []
            requeue, broke = self._dispatch_round(
                batch, worker_fn, make_payload, pool,
                merge_telemetry, results, quarantined,
                attribute=careful,
            )
            if broke and not careful:
                careful = True
            if requeue:
                self._backoff()
            pending = requeue + pending
        return results, quarantined

    def _dispatch_round(
        self,
        batch: List[_Unit],
        worker_fn: Callable[..., Any],
        make_payload: Callable[[Tuple[int, ...]], Any],
        pool: PoolHandle,
        merge_telemetry: Callable[[Any], None],
        results: Dict[int, Any],
        quarantined: List[int],
        *,
        attribute: bool,
    ) -> Tuple[List[_Unit], bool]:
        """Submit one round; collect, requeue or quarantine each unit.

        When ``attribute`` is ``False`` (the optimistic concurrent round)
        a pool breakage or timeout charges *no one* — the survivors are
        harvested, everything unfinished splits and requeues, and the
        caller switches to careful mode.  When ``True`` (careful mode,
        one unit in flight) any failure is that unit's own and is
        charged.
        """
        executor = pool.acquire()
        futures: List[Tuple[_Unit, Future]] = []
        requeue: List[_Unit] = []
        broke = False
        try:
            for unit in batch:
                futures.append(
                    (unit, executor.submit(worker_fn, make_payload(unit.ids)))
                )
            timeout = self._policy.timeout_s or None
            for unit, future in futures:
                if broke:
                    # The pool is gone: harvest what finished, requeue the
                    # rest without charging anyone (attribution unknown).
                    self._harvest_or_requeue(
                        unit, future, merge_telemetry, results, requeue,
                        quarantined,
                    )
                    continue
                try:
                    out, telemetry = future.result(timeout=timeout)
                except FutureTimeoutError:
                    # Discarding the pool is the only way to reap the
                    # (possibly hung) worker; survivors are harvested in
                    # the `broke` branch above.
                    pool.discard()
                    broke = True
                    if attribute:
                        self._charge(
                            unit,
                            f"timed out after {self._policy.timeout_s:.1f} s",
                            requeue, quarantined, timeout=True,
                        )
                    else:
                        requeue.extend(self._split(unit))
                    continue
                except BrokenProcessPool as exc:
                    pool.discard()
                    broke = True
                    if attribute:
                        self._charge(
                            unit, _describe_error(exc), requeue, quarantined,
                            timeout=False,
                        )
                    else:
                        requeue.extend(self._split(unit))
                    continue
                except Exception as exc:
                    # The worker raised and survived: the pool is healthy
                    # and the failure is exactly this unit's.
                    if is_config_error(exc):
                        raise config_error_of(exc) from exc
                    self._charge(
                        unit, _describe_error(exc), requeue, quarantined,
                        timeout=False,
                    )
                    continue
                merge_telemetry(telemetry)
                self._deliver(results, unit.ids, out)
        except BaseException:
            # KeyboardInterrupt & friends: cancel everything still queued
            # and reap the workers now, not at interpreter exit.
            for _, future in futures:
                future.cancel()
            pool.discard()
            raise
        return requeue, broke

    def _harvest_or_requeue(
        self,
        unit: _Unit,
        future: Future,
        merge_telemetry: Callable[[Any], None],
        results: Dict[int, Any],
        requeue: List[_Unit],
        quarantined: List[int],
    ) -> None:
        """After a pool breakage: keep finished work, requeue the rest."""
        try:
            out, telemetry = future.result(timeout=0)
        except (CancelledError, FutureTimeoutError, BrokenProcessPool):
            # Victims of the breakage, not suspects: requeue unbumped.
            requeue.extend(self._split(unit))
            return
        except Exception as exc:
            if is_config_error(exc):
                raise config_error_of(exc) from exc
            if isinstance(exc, RemoteCellError):
                # An ordinary worker exception that happened to land in a
                # broken round is still attributable to its unit.
                self._charge(
                    unit, _describe_error(exc), requeue, quarantined,
                    timeout=False,
                )
            else:
                requeue.extend(self._split(unit))
            return
        merge_telemetry(telemetry)
        self._deliver(results, unit.ids, out)
