"""Crash-safe execution runtime: journaling, supervision, remote errors.

The sweep and tile engines (`repro.experiments.parallel`) dispatch
through this package so that hours-long city-scale runs survive worker
crashes, hung solves and SIGKILLs:

- :mod:`repro.runtime.journal` — append-only checkpoint journal keyed by
  content fingerprint, powering ``--resume``.
- :mod:`repro.runtime.supervisor` — per-unit timeouts, bounded retries
  with decorrelated-jitter backoff, poison-cell quarantine.
- :mod:`repro.runtime.errors` — picklable remote-traceback wrapper and
  the config-error classification the supervisor refuses to retry.
"""

from repro.runtime.errors import (
    CellFailedError,
    RemoteCellError,
    config_error_of,
    is_config_error,
)
from repro.runtime.journal import (
    Journal,
    context_fingerprint,
    fingerprint,
    journal_for,
)
from repro.runtime.supervisor import PoolHandle, RetryPolicy, Supervisor

__all__ = [
    "CellFailedError",
    "Journal",
    "PoolHandle",
    "RemoteCellError",
    "RetryPolicy",
    "Supervisor",
    "config_error_of",
    "context_fingerprint",
    "fingerprint",
    "is_config_error",
    "journal_for",
]
