"""Data items and the catalog of their sizes.

Section IV treats the shared data :math:`D = \\{d_1, ..., d_M\\}` as a set
of data items (or blocks, determined per [19]).  We model each item as an id
plus a size; set algebra runs on the ids and sizing questions go through the
:class:`DataCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, FrozenSet, Iterable, Mapping

__all__ = ["DataCatalog", "DataItem"]


@dataclass(frozen=True)
class DataItem:
    """One shared data item (block).

    :param item_id: unique non-negative id.
    :param size_bytes: the block's size.
    """

    item_id: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.item_id < 0:
            raise ValueError("item_id must be non-negative")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")


class DataCatalog:
    """Immutable id → size lookup for a set of data items.

    :param items: the items of the universe.
    """

    def __init__(self, items: Iterable[DataItem]) -> None:
        self._sizes: Dict[int, float] = {}
        for item in items:
            if item.item_id in self._sizes:
                raise ValueError(f"duplicate item id {item.item_id}")
            self._sizes[item.item_id] = item.size_bytes

    @classmethod
    def from_sizes(cls, sizes: Mapping[int, float]) -> "DataCatalog":
        """Build from an id → size mapping."""
        return cls(DataItem(item_id, size) for item_id, size in sizes.items())

    @property
    def item_ids(self) -> FrozenSet[int]:
        """All item ids in the catalog."""
        return frozenset(self._sizes)

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._sizes

    def size_of(self, item_id: int) -> float:
        """Size of one item.

        :raises KeyError: for ids not in the catalog.
        """
        return self._sizes[item_id]

    def sizes(self) -> Mapping[int, float]:
        """Read-only id → size view, for hot loops that price many sets."""
        return MappingProxyType(self._sizes)

    def total_bytes(self, item_ids: Iterable[int]) -> float:
        """Summed size of a set of items.

        :raises KeyError: if any id is not in the catalog.
        """
        return sum(self._sizes[item_id] for item_id in item_ids)
