"""Shared-data substrate: data items, per-device ownership, universes."""

from repro.data.items import DataCatalog, DataItem
from repro.data.ownership import OwnershipMap
from repro.data.universe import random_overlap_universe, spatial_grid_universe

__all__ = [
    "DataCatalog",
    "DataItem",
    "OwnershipMap",
    "random_overlap_universe",
    "spatial_grid_universe",
]
