"""Generative models for shared-data universes.

Two ways to produce a (catalog, ownership) pair:

- :func:`random_overlap_universe` — each item is held by a random number of
  devices (≥ 1), matching a target mean replication.  The fastest way to a
  data-shared workload.
- :func:`spatial_grid_universe` — items sit on a grid of monitoring regions
  and a device owns the items within its sensing radius, reproducing the
  paper's motivating scenarios (city-wide traffic monitoring, object
  tracking) where nearby devices observe overlapping regions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.data.items import DataCatalog, DataItem
from repro.data.ownership import OwnershipMap

__all__ = ["random_overlap_universe", "spatial_grid_universe"]


def _item_sizes(
    num_items: int,
    mean_size_bytes: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Item sizes uniform in [0.5, 1.5]·mean (positive, finite)."""
    if mean_size_bytes <= 0:
        raise ValueError("mean_size_bytes must be positive")
    return rng.uniform(0.5 * mean_size_bytes, 1.5 * mean_size_bytes, size=num_items)


def random_overlap_universe(
    num_items: int,
    device_ids: Sequence[int],
    mean_size_bytes: float,
    replication: float = 3.0,
    seed: int = 0,
) -> Tuple[DataCatalog, OwnershipMap]:
    """A universe where each item is replicated on ~``replication`` devices.

    :param num_items: M, the number of data items.
    :param device_ids: ids of the devices that can own data.
    :param mean_size_bytes: mean item size.
    :param replication: target mean number of owners per item (≥ 1; each
        item always has at least one owner so the universe is coverable).
    :param seed: RNG seed.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if not device_ids:
        raise ValueError("need at least one device")
    if replication < 1:
        raise ValueError("replication must be at least 1")
    rng = np.random.default_rng(seed)
    sizes = _item_sizes(num_items, mean_size_bytes, rng)
    catalog = DataCatalog(
        DataItem(item_id, float(size)) for item_id, size in enumerate(sizes)
    )

    holdings: Dict[int, Set[int]] = {device_id: set() for device_id in device_ids}
    ids = np.asarray(device_ids)
    for item_id in range(num_items):
        extra = int(rng.poisson(max(replication - 1.0, 0.0)))
        count = min(len(ids), 1 + extra)
        owners = rng.choice(ids, size=count, replace=False)
        for owner in owners:
            holdings[int(owner)].add(item_id)
    return catalog, OwnershipMap(holdings)


def spatial_grid_universe(
    grid_side: int,
    device_positions: Dict[int, Tuple[float, float]],
    area_side_m: float,
    sensing_radius_m: float,
    mean_size_bytes: float,
    seed: int = 0,
) -> Tuple[DataCatalog, OwnershipMap]:
    """A universe of grid-cell items owned by devices within sensing range.

    The monitored area ``[0, area_side_m]²`` is divided into
    ``grid_side × grid_side`` cells; the item of a cell is owned by every
    device within ``sensing_radius_m`` of the cell centre.  Items nobody can
    sense are dropped from the catalog (no device can ever process them).

    :param grid_side: cells per axis.
    :param device_positions: device id → (x, y), metres.
    :param area_side_m: side length of the monitored square.
    :param sensing_radius_m: a device's sensing radius.
    :param mean_size_bytes: mean item size.
    :param seed: RNG seed for item sizes.
    """
    if grid_side <= 0:
        raise ValueError("grid_side must be positive")
    if area_side_m <= 0 or sensing_radius_m <= 0:
        raise ValueError("area and radius must be positive")
    if not device_positions:
        raise ValueError("need at least one positioned device")
    rng = np.random.default_rng(seed)
    cell = area_side_m / grid_side

    holdings: Dict[int, Set[int]] = {device_id: set() for device_id in device_positions}
    covered: List[int] = []
    item_id = 0
    for row in range(grid_side):
        for col in range(grid_side):
            centre = ((col + 0.5) * cell, (row + 0.5) * cell)
            owners = [
                device_id
                for device_id, (x, y) in device_positions.items()
                if math.hypot(x - centre[0], y - centre[1]) <= sensing_radius_m
            ]
            if owners:
                covered.append(item_id)
                for owner in owners:
                    holdings[owner].add(item_id)
            item_id += 1

    sizes = _item_sizes(len(covered), mean_size_bytes, rng)
    catalog = DataCatalog(
        DataItem(cid, float(size)) for cid, size in zip(covered, sizes)
    )
    return catalog, OwnershipMap(holdings)
