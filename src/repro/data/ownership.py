"""Per-device data ownership: the sets :math:`D_i` of Section IV.

Monitoring regions overlap, so two devices may own the same item
(:math:`D_i \\cap D_j \\ne \\emptyset`); the divisible-task algorithms work
on the restrictions :math:`UD_i = D \\cap D_i` of ownership to the queried
universe D.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

__all__ = ["OwnershipMap"]


class OwnershipMap:
    """Which device owns which data items.

    :param ownership: mapping ``device_id -> iterable of item ids``.
    """

    def __init__(self, ownership: Mapping[int, Iterable[int]]) -> None:
        self._owned: Dict[int, FrozenSet[int]] = {
            device_id: frozenset(items) for device_id, items in ownership.items()
        }

    @property
    def device_ids(self) -> FrozenSet[int]:
        """Devices known to the map (possibly owning nothing)."""
        return frozenset(self._owned)

    def items_of(self, device_id: int) -> FrozenSet[int]:
        """:math:`D_i` — items owned by ``device_id`` (empty if unknown)."""
        return self._owned.get(device_id, frozenset())

    def restricted(self, device_id: int, universe: FrozenSet[int]) -> FrozenSet[int]:
        """:math:`UD_i = D \\cap D_i` for a queried universe ``D``."""
        return self.items_of(device_id) & universe

    def owners_of(self, item_id: int) -> FrozenSet[int]:
        """All devices owning ``item_id``."""
        return frozenset(
            device_id for device_id, items in self._owned.items() if item_id in items
        )

    def all_items(self) -> FrozenSet[int]:
        """Union of all devices' holdings."""
        out: Set[int] = set()
        for items in self._owned.values():
            out |= items
        return frozenset(out)

    def covers(self, universe: FrozenSet[int]) -> bool:
        """Whether the devices jointly own every item of ``universe``."""
        return universe <= self.all_items()

    def uncovered(self, universe: FrozenSet[int]) -> FrozenSet[int]:
        """Items of ``universe`` that no device owns."""
        return universe - self.all_items()

    def replication_of(self, item_id: int) -> int:
        """Number of devices owning ``item_id``."""
        return len(self.owners_of(item_id))

    def __len__(self) -> int:
        return len(self._owned)

    def __repr__(self) -> str:
        total = sum(len(items) for items in self._owned.values())
        return f"OwnershipMap(devices={len(self._owned)}, holdings={total})"
