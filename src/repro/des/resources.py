"""FIFO resources for the contention-aware replay mode.

A :class:`FIFOResource` models a serially-shared facility (a device's radio,
a base station's CPU): requests are served one at a time in arrival order.
In the *dedicated* mode the resource never queues — matching the analytic
model's assumption that every transfer gets the full link.

:class:`FaultyResource` adds failure injection: scheduled outage windows
during which the facility cannot serve.  A request overlapping an outage is
deferred to the window's end (non-preemptive retry semantics — a transfer
interrupted by a backhaul blip restarts after it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "FIFOResource",
    "FaultyResource",
    "normalise_windows",
    "windows_as_arrays",
]


def normalise_windows(
    windows: Sequence[Tuple[float, float]],
) -> Tuple[Tuple[float, float], ...]:
    """Sort outage windows and merge overlapping or adjacent ones.

    Stochastic fault plans routinely sample overlapping windows (two
    Poisson outage arrivals whose repairs overlap), so the canonical form
    accepted everywhere is the sorted union: disjoint windows separated by
    strictly positive gaps.

    :param windows: (start, end) pairs, in any order, possibly overlapping.
    :returns: the merged windows, sorted by start time.
    :raises ValueError: if any window is empty or inverted (start >= end).
    """
    for start, end in windows:
        if start >= end:
            raise ValueError(f"outage window ({start}, {end}) is empty")
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return tuple(merged)


def windows_as_arrays(
    windows: Sequence[Tuple[float, float]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised outage windows as parallel (starts, ends) float arrays.

    The compiled replay engine scans windows inside its numba-compatible
    event loop, which needs them flattened out of tuple-of-tuples form.
    Pass windows already through :func:`normalise_windows` (sorted and
    disjoint) so the forward-scan deferral stays valid.
    """
    if not windows:
        return np.empty(0), np.empty(0)
    arr = np.asarray(windows, dtype=np.float64)
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


@dataclass
class FIFOResource:
    """A serially-shared facility with optional FIFO queueing.

    :param name: label for diagnostics.
    :param shared: if True, requests queue behind each other (contention
        mode); if False, every request starts at its arrival time (the
        dedicated-link assumption of the analytic model).
    """

    name: str
    shared: bool = True
    _next_free: float = 0.0
    _busy_time: float = 0.0
    _requests: int = 0
    _log: List[Tuple[float, float, float]] = field(default_factory=list)

    def request(self, arrival: float, service_time: float) -> Tuple[float, float]:
        """Reserve the resource; returns (start, finish) times.

        :param arrival: when the request arrives.
        :param service_time: how long it occupies the resource.
        :raises ValueError: on negative inputs.
        """
        if arrival < 0 or service_time < 0:
            raise ValueError("arrival and service_time must be non-negative")
        start = max(arrival, self._next_free) if self.shared else arrival
        finish = start + service_time
        if self.shared:
            self._next_free = finish
        self._busy_time += service_time
        self._requests += 1
        self._log.append((arrival, start, finish))
        return start, finish

    @property
    def requests_served(self) -> int:
        """Number of requests that reserved this resource."""
        return self._requests

    @property
    def busy_time(self) -> float:
        """Total service time accumulated."""
        return self._busy_time

    def utilisation(self, horizon: float) -> float:
        """Busy fraction over a horizon (≥ 0; may exceed 1 if dedicated)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self._busy_time / horizon

    def waiting_times(self) -> List[float]:
        """Per-request queueing delays (start − arrival)."""
        return [start - arrival for arrival, start, _ in self._log]


@dataclass
class FaultyResource(FIFOResource):
    """A FIFO resource with injected outage windows.

    :param outages: (start, end) windows when the facility is down, in any
        order; overlapping or adjacent windows are merged on construction
        (stochastic fault plans routinely produce overlaps).  A request
        whose service would overlap a window is pushed to the window's end
        and retried (so a single request may be deferred past several
        consecutive outages).
    """

    outages: Sequence[Tuple[float, float]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.outages = normalise_windows(self.outages)

    def _defer_past_outages(self, start: float, service_time: float) -> float:
        """Earliest start ≥ ``start`` whose service avoids every outage."""
        # Outages are sorted and disjoint (normalised in __post_init__), so
        # one forward scan suffices: deferring past window k can only ever
        # collide with windows > k.
        for outage_start, outage_end in self.outages:
            if start < outage_end and start + service_time > outage_start:
                start = outage_end
        return start

    def request(self, arrival: float, service_time: float) -> Tuple[float, float]:
        """Reserve the facility, deferring past outages; (start, finish)."""
        if arrival < 0 or service_time < 0:
            raise ValueError("arrival and service_time must be non-negative")
        earliest = max(arrival, self._next_free) if self.shared else arrival
        start = self._defer_past_outages(earliest, service_time)
        finish = start + service_time
        if self.shared:
            self._next_free = finish
        self._busy_time += service_time
        self._requests += 1
        self._log.append((arrival, start, finish))
        return start, finish
