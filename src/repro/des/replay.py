"""Event-driven replay of an assignment over the modelled MEC system.

Each assigned task is decomposed into its Section II stages (external-data
uplink, backhaul hop, local-data uplink, compute, result downlink, …) and
executed on the event kernel.  In dedicated mode every stage gets the full
resource — realized latencies must then reproduce the analytic
:math:`t_{ijl}` exactly, which the integration tests assert.  In contention
mode, device radios, device CPUs and station CPUs are FIFO-shared, showing
the queueing the analytic model abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.task import Task
from repro.des.kernel import EventSimulator
from repro.des.resources import FaultyResource, FIFOResource
from repro.obs.tracer import staged
from repro.system.topology import MECSystem

OutageWindows = Sequence[Tuple[float, float]]

__all__ = ["RealizedMetrics", "replay_algorithm", "replay_assignment"]


@dataclass(frozen=True)
class RealizedMetrics:
    """What the replay measured.

    :param latencies_s: realized completion time per task row (None for
        cancelled tasks).
    :param makespan_s: completion time of the last task.
    :param total_energy_j: energy of the replayed schedule (identical to
        the analytic energy — queueing delays tasks, it does not change
        how many bytes move or cycles run).
    :param events_processed: kernel events executed.
    :param mean_queueing_delay_s: average FIFO waiting across resources
        (zero in dedicated mode).
    """

    latencies_s: Tuple[Optional[float], ...]
    makespan_s: float
    total_energy_j: float
    events_processed: int
    mean_queueing_delay_s: float


class _Replay:
    """One replay run: resources, stage wiring, measurement."""

    def __init__(
        self,
        system: MECSystem,
        assignment: Assignment,
        contention: bool,
        backhaul_outages: OutageWindows = (),
        wan_outages: OutageWindows = (),
    ) -> None:
        self.system = system
        self.assignment = assignment
        self.contention = contention
        self.start_times: Dict[int, float] = {}
        self.sim = EventSimulator()
        self.uplink = {
            d: FIFOResource(f"uplink[{d}]", shared=contention) for d in system.devices
        }
        self.downlink = {
            d: FIFOResource(f"downlink[{d}]", shared=contention)
            for d in system.devices
        }
        self.device_cpu = {
            d: FIFOResource(f"cpu[dev {d}]", shared=contention)
            for d in system.devices
        }
        self.station_cpu = {
            s: FIFOResource(f"cpu[bs {s}]", shared=contention)
            for s in system.stations
        }
        # Backhaul, WAN and the cloud are modelled dedicated in both modes
        # (the paper treats them as un-contended infrastructure); outage
        # windows inject infrastructure failures.
        self.backhaul = (
            FaultyResource("backhaul", shared=False, outages=tuple(backhaul_outages))
            if backhaul_outages
            else FIFOResource("backhaul", shared=False)
        )
        self.wan = (
            FaultyResource("wan", shared=False, outages=tuple(wan_outages))
            if wan_outages
            else FIFOResource("wan", shared=False)
        )
        self.cloud_cpu = FIFOResource("cpu[cloud]", shared=False)
        self.finish_times: Dict[int, float] = {}

    # -- stage helpers ---------------------------------------------------

    def _stage(
        self,
        resource: FIFOResource,
        service_time: float,
        then: Callable[[float], None],
    ) -> Callable[[], None]:
        """An event callback that reserves ``resource`` then chains on."""

        def fire() -> None:
            _, finish = resource.request(self.sim.now, service_time)
            self.sim.schedule_at(finish, lambda: then(finish))

        return fire

    def _chain(
        self,
        start: float,
        stages: Sequence[Tuple[FIFOResource, float]],
        done: Callable[[float], None],
    ) -> None:
        """Run stages sequentially from ``start``, then call ``done``."""
        if not stages:
            self.sim.schedule_at(start, lambda: done(start))
            return
        (resource, service), rest = stages[0], stages[1:]
        self.sim.schedule_at(
            start,
            self._stage(resource, service, lambda t: self._chain(t, rest, done)),
        )

    def _join(
        self,
        branches: Sequence[Tuple[float, Sequence[Tuple[FIFOResource, float]]]],
        done: Callable[[float], None],
    ) -> None:
        """Run branches concurrently; call ``done`` at the latest finish."""
        remaining = len(branches)
        latest = 0.0

        def branch_done(finish: float) -> None:
            nonlocal remaining, latest
            remaining -= 1
            latest = max(latest, finish)
            if remaining == 0:
                done(latest)

        if not branches:
            done(0.0)
            return
        for start, stages in branches:
            self._chain(start, stages, branch_done)

    # -- per-task wiring ---------------------------------------------------

    def launch(
        self, row: int, task: Task, decision: Subsystem, start: float = 0.0
    ) -> None:
        """Schedule all stages of one task, starting at ``start``."""
        self.start_times[row] = start
        params = self.system.parameters
        owner = self.system.device(task.owner_device_id)
        station = self.system.station_of(task.owner_device_id)
        alpha, beta = task.local_bytes, task.external_bytes
        total = task.input_bytes
        result = params.result_size.result_bytes(total)

        cross = False
        ext_stages: List[Tuple[FIFOResource, float]] = []
        if task.has_external_data:
            source = self.system.device(task.external_source)
            cross = not self.system.same_cluster(
                task.owner_device_id, task.external_source
            )
            ext_stages.append(
                (self.uplink[source.device_id], source.wireless.upload_time_s(beta))
            )

        def record(finish: float) -> None:
            self.finish_times[row] = finish

        if decision is Subsystem.DEVICE:
            stages = list(ext_stages)
            if task.has_external_data:
                if cross:
                    stages.append(
                        (self.backhaul, self.system.bs_bs_link.transfer_time_s(beta))
                    )
                stages.append(
                    (
                        self.downlink[owner.device_id],
                        owner.wireless.download_time_s(beta),
                    )
                )
            stages.append(
                (
                    self.device_cpu[owner.device_id],
                    params.cycles.cycles_on_device(total) / owner.cpu_frequency_hz,
                )
            )
            self._chain(start, stages, record)

        elif decision is Subsystem.STATION:
            ext_branch = list(ext_stages)
            if task.has_external_data and cross:
                ext_branch.append(
                    (self.backhaul, self.system.bs_bs_link.transfer_time_s(beta))
                )
            local_branch = [
                (self.uplink[owner.device_id], owner.wireless.upload_time_s(alpha))
            ]

            def after_join(joined: float) -> None:
                tail = [
                    (
                        self.station_cpu[station.station_id],
                        params.cycles.cycles_on_station(total)
                        / station.cpu_frequency_hz,
                    ),
                    (
                        self.downlink[owner.device_id],
                        owner.wireless.download_time_s(result),
                    ),
                ]
                self._chain(joined, tail, record)

            self._join([(start, ext_branch), (start, local_branch)], after_join)

        elif decision is Subsystem.CLOUD:
            local_branch = [
                (self.uplink[owner.device_id], owner.wireless.upload_time_s(alpha))
            ]

            def after_join(joined: float) -> None:
                tail = [
                    (
                        self.wan,
                        self.system.bs_cloud_link.transfer_time_s(total + result),
                    ),
                    (
                        self.cloud_cpu,
                        params.cycles.cycles_on_cloud(total)
                        / self.system.cloud.cpu_frequency_hz,
                    ),
                    (
                        self.downlink[owner.device_id],
                        owner.wireless.download_time_s(result),
                    ),
                ]
                self._chain(joined, tail, record)

            self._join([(start, ext_stages), (start, local_branch)], after_join)

        else:  # pragma: no cover - launch() is only called for assigned tasks
            raise ValueError(f"cannot replay decision {decision}")

    def all_resources(self) -> List[FIFOResource]:
        """Every resource of the replay, for waiting-time statistics."""
        return (
            list(self.uplink.values())
            + list(self.downlink.values())
            + list(self.device_cpu.values())
            + list(self.station_cpu.values())
            + [self.backhaul, self.wan, self.cloud_cpu]
        )


@staged("replay")
def replay_assignment(
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    contention: bool = False,
    backhaul_outages: OutageWindows = (),
    wan_outages: OutageWindows = (),
    start_times: Optional[Sequence[float]] = None,
) -> RealizedMetrics:
    """Replay an assignment on the event simulator and measure it.

    :param system: the MEC system.
    :param tasks: the tasks, in the assignment's row order.
    :param assignment: decisions to replay.
    :param contention: FIFO-share device radios/CPUs and station CPUs
        (False reproduces the analytic model's dedicated-resource world).
    :param backhaul_outages: injected BS–BS link outage windows
        (start, end) in seconds — cross-cluster transfers defer past them.
    :param wan_outages: injected BS–cloud link outage windows.
    :param start_times: per-row launch time (seconds, same clock as the
        outage windows); defaults to launching everything at 0.  Latencies
        are always measured from the row's launch, so staggered starts
        still report per-task completion times.
    :returns: realized metrics; in dedicated mode with no outages,
        ``latencies_s`` equals the analytic :math:`t_{ijl}` per task.
    """
    if len(tasks) != assignment.costs.num_tasks:
        raise ValueError("tasks and assignment rows must correspond")
    if start_times is not None and len(start_times) != len(tasks):
        raise ValueError("start_times and tasks must correspond")

    context = current_context()
    if context.des_vectorized and not context.reference:
        from repro.des.engine import replay_with_engine

        latencies_t, makespan, events, mean_wait = replay_with_engine(
            system,
            tasks,
            assignment,
            contention,
            backhaul_outages,
            wan_outages,
            start_times,
        )
        context.telemetry.metrics.incr("des.events", events)
        return RealizedMetrics(
            latencies_s=latencies_t,
            makespan_s=makespan,
            total_energy_j=assignment.total_energy_j(),
            events_processed=events,
            mean_queueing_delay_s=mean_wait,
        )

    replay = _Replay(system, assignment, contention, backhaul_outages, wan_outages)
    for row, task in enumerate(tasks):
        decision = assignment.decisions[row]
        if decision is Subsystem.CANCELLED:
            continue
        start = float(start_times[row]) if start_times is not None else 0.0
        if start < 0:
            raise ValueError("start_times must be non-negative")
        replay.launch(row, task, decision, start=start)
    makespan = replay.sim.run()
    current_context().telemetry.metrics.incr(
        "des.events", replay.sim.events_processed
    )

    latencies: List[Optional[float]] = []
    for row in range(len(tasks)):
        finish = replay.finish_times.get(row)
        if finish is None:
            latencies.append(None)
        else:
            latencies.append(finish - replay.start_times.get(row, 0.0))

    waits: List[float] = []
    for resource in replay.all_resources():
        waits.extend(resource.waiting_times())
    mean_wait = sum(waits) / len(waits) if waits else 0.0

    return RealizedMetrics(
        latencies_s=tuple(latencies),
        makespan_s=makespan,
        total_energy_j=assignment.total_energy_j(),
        events_processed=replay.sim.events_processed,
        mean_queueing_delay_s=mean_wait,
    )


def replay_algorithm(
    system: MECSystem,
    tasks: Sequence[Task],
    algorithm: str,
    contention: bool = False,
    backhaul_outages: OutageWindows = (),
    wan_outages: OutageWindows = (),
    context: Optional[RunContext] = None,
    start_times: Optional[Sequence[float]] = None,
) -> Tuple[Assignment, RealizedMetrics]:
    """Plan with a registered algorithm, then replay its assignment.

    The algorithm is resolved through :mod:`repro.registry` (display name
    or alias, case-insensitive), so the DES shares the exact planner code
    every other entry point uses.

    :param system: the MEC system.
    :param tasks: the tasks to plan and replay.
    :param algorithm: registry name of an assignment-producing algorithm
        (e.g. ``"LP-HTA"``, ``"HGOS"``, ``"cloud"``).
    :param contention: FIFO-share radios/CPUs during the replay.
    :param backhaul_outages: injected BS–BS outage windows.
    :param wan_outages: injected BS–cloud outage windows.
    :param context: run configuration for the planning step; defaults to
        the active context.
    :param start_times: per-row launch times for the replay step.
    :returns: the planned assignment and its realized metrics.
    :raises ValueError: for unknown names or evaluation-only algorithms.
    """
    from repro import registry

    assignment = registry.resolve_assignment(algorithm, system, tasks, context)
    metrics = replay_assignment(
        system,
        tasks,
        assignment,
        contention=contention,
        backhaul_outages=backhaul_outages,
        wan_outages=wan_outages,
        start_times=start_times,
    )
    return assignment, metrics
