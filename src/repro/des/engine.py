"""Array-native DES replay engine (the compiled hot path of ``des/replay``).

The closure-chained :class:`~repro.des.replay._Replay` builds, per task, a
small graph of Python callbacks and pushes them through a heapq-backed
event kernel.  That is the right *reference* semantics, but at sweep scale
the interpreter cost dominates: every stage is two heap operations, two
closure allocations and a bound-method dispatch.  This module compiles an
assignment into a struct-of-arrays *replay program* — parallel NumPy arrays
of stage resource ids, service times, chain successors and join targets —
and executes it with one of three interchangeable backends:

- **closed form** — dedicated mode with no outage windows has no shared
  state at all, so each task's event chain collapses into a per-stage
  recurrence ``(value, now) -> (finish, heap_time)`` that vectorises across
  tasks with masked NumPy slot updates (4 external-chain slots, 1 local
  slot, 3 tail slots).  This is the sweep hot path.
- **index event loop** — contention or outages couple tasks through FIFO
  resources, so events must pop in global ``(time, counter)`` order.  The
  loop replays the kernel exactly: a manual binary heap over preallocated
  event slots (the slot id *is* the scheduling counter), FIFO ``next_free``
  state per resource id, and outage-window deferral scans.
- **numba** — the same event loop ``numba.njit``-compiled when numba is
  importable (``pip install .[perf]``).  Auto-detected at import; setting
  ``REPRO_NO_NUMBA=1`` forces the pure-Python loop even when numba is
  installed.

All three backends reproduce the closure engine *bit for bit* — every
float operation (the ``now + max(t - now, 0.0)`` clamp, the FIFO
``max(arrival, next_free)``, the join ``max(latest, finish)``) is written
in the reference's exact order and associativity, never simplified
algebraically.  ``tests/test_differential_perf.py`` asserts equality of
whole :class:`~repro.des.replay.RealizedMetrics` against the object path.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment, Subsystem
from repro.core.task import Task
from repro.des.kernel import clamp_to_now
from repro.des.resources import normalise_windows, windows_as_arrays
from repro.system.topology import MECSystem

__all__ = ["HAVE_NUMBA", "compile_rows", "replay_with_engine"]

# Event kinds of the index-based loop, mirroring the closure roles one for
# one: a stage's ``fire`` callback, the ``then(finish)`` continuation it
# schedules, the trailing empty-``_chain`` hop that finally calls ``done``
# (every chain ends with one — it is a real kernel event and counts), and
# an empty branch's immediate ``done``.
_FIRE = 0
_COMPLETE = 1
_END = 2
_EMPTY_END = 3

# Chain-end actions.
_END_RECORD = 0
_END_JOIN = 1


class _RowProgram:
    """One launched task row, flattened to ``(resource id, service)`` stages.

    ``chain_a`` is the external-data branch (for joins) or the whole serial
    chain (device execution); ``chain_b`` is the owner's local uplink (only
    for station/cloud joins); ``tail`` runs after the join.
    """

    __slots__ = ("row", "start", "chain_a", "has_join", "chain_b", "tail")

    def __init__(
        self,
        row: int,
        start: float,
        chain_a: List[Tuple[int, float]],
        has_join: bool,
        chain_b: Optional[Tuple[int, float]],
        tail: List[Tuple[int, float]],
    ) -> None:
        self.row = row
        self.start = start
        self.chain_a = chain_a
        self.has_join = has_join
        self.chain_b = chain_b
        self.tail = tail

    def event_count(self) -> int:
        """Kernel events this row generates.

        A ``k``-stage chain is ``2k + 1`` events (fire + continuation per
        stage, plus the trailing empty-``_chain`` done hop); an empty
        branch is one immediate done event.
        """
        if not self.has_join:
            return 2 * len(self.chain_a) + 1
        a = 2 * len(self.chain_a) + 1 if self.chain_a else 1
        return a + 3 + 2 * len(self.tail) + 1


def compile_rows(
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    start_times: Optional[Sequence[float]],
) -> Tuple[List[_RowProgram], int, int, int]:
    """Flatten every launched row into a :class:`_RowProgram`.

    Resource ids follow ``_Replay.all_resources()`` order exactly —
    uplinks, downlinks, device CPUs (device iteration order), station CPUs
    (station iteration order), then backhaul, WAN, cloud CPU — so the
    waiting-time statistics can be summed in the reference's order.

    Validation (row correspondence, negative start times) raises the same
    errors in the same row order as the object path's launch loop.

    :returns: (programs, num resources, backhaul resource id, wan id).
    """
    dev_pos = {d: i for i, d in enumerate(system.devices)}
    st_pos = {s: i for i, s in enumerate(system.stations)}
    nd = len(dev_pos)
    backhaul_id = 3 * nd + len(st_pos)
    wan_id = backhaul_id + 1
    cloud_id = backhaul_id + 2

    params = system.parameters
    cycles = params.cycles
    result_bytes = params.result_size.result_bytes
    bs_bs_time = system.bs_bs_link.transfer_time_s
    bs_cloud_time = system.bs_cloud_link.transfer_time_s
    cloud_freq = system.cloud.cpu_frequency_hz

    # device id -> (uplink fn, download fn, cpu f, uplink res, downlink res,
    #               cpu res, station cpu res, station f, cluster)
    dev_cache: Dict[int, tuple] = {}

    def device_entry(device_id: int) -> tuple:
        entry = dev_cache.get(device_id)
        if entry is None:
            device = system.device(device_id)
            station = system.station_of(device_id)
            pos = dev_pos[device_id]
            entry = (
                device.wireless.upload_time_s,
                device.wireless.download_time_s,
                device.cpu_frequency_hz,
                pos,
                nd + pos,
                2 * nd + pos,
                3 * nd + st_pos[station.station_id],
                station.cpu_frequency_hz,
                system.cluster_of(device_id),
            )
            dev_cache[device_id] = entry
        return entry

    programs: List[_RowProgram] = []
    for row, task in enumerate(tasks):
        decision = assignment.decisions[row]
        if decision is Subsystem.CANCELLED:
            continue
        start = float(start_times[row]) if start_times is not None else 0.0
        if start < 0:
            raise ValueError("start_times must be non-negative")

        (up_t, down_t, dev_freq, up_res, down_res, cpu_res,
         st_cpu_res, st_freq, owner_cluster) = device_entry(task.owner_device_id)
        alpha, beta = task.local_bytes, task.external_bytes
        total = task.input_bytes
        result = result_bytes(total)

        ext_stages: List[Tuple[int, float]] = []
        cross = False
        if task.has_external_data:
            src = device_entry(task.external_source)
            cross = src[8] != owner_cluster
            ext_stages.append((src[3], src[0](beta)))

        if decision is Subsystem.DEVICE:
            chain = list(ext_stages)
            if task.has_external_data:
                if cross:
                    chain.append((backhaul_id, bs_bs_time(beta)))
                chain.append((down_res, down_t(beta)))
            chain.append((cpu_res, cycles.cycles_on_device(total) / dev_freq))
            programs.append(_RowProgram(row, start, chain, False, None, []))

        elif decision is Subsystem.STATION:
            ext_branch = list(ext_stages)
            if task.has_external_data and cross:
                ext_branch.append((backhaul_id, bs_bs_time(beta)))
            tail = [
                (st_cpu_res, cycles.cycles_on_station(total) / st_freq),
                (down_res, down_t(result)),
            ]
            programs.append(
                _RowProgram(row, start, ext_branch, True, (up_res, up_t(alpha)), tail)
            )

        elif decision is Subsystem.CLOUD:
            tail = [
                (wan_id, bs_cloud_time(total + result)),
                (cloud_id, cycles.cycles_on_cloud(total) / cloud_freq),
                (down_res, down_t(result)),
            ]
            programs.append(
                _RowProgram(
                    row, start, list(ext_stages), True, (up_res, up_t(alpha)), tail
                )
            )

        else:  # pragma: no cover - assignments only carry the four decisions
            raise ValueError(f"cannot replay decision {decision}")

    return programs, backhaul_id + 3, backhaul_id, wan_id


# ---------------------------------------------------------------------------
# Closed form: dedicated resources, no outages.


def _closed_form(
    programs: Sequence[_RowProgram],
) -> Tuple[Dict[int, float], float, int]:
    """Per-row finish values, makespan and event count without a heap.

    In dedicated mode with no outage windows every ``request`` returns
    ``(arrival, arrival + service)`` — resources carry no state — so each
    event chain reduces to the recurrence per stage::

        fire   = now + max(value - now, 0.0)     # schedule_at clamp
        finish = fire + service                  # dedicated request
        now'   = fire + max(finish - fire, 0.0)  # the then(finish) event
        value' = finish

    closed by the trailing done hop every chain ends with::

        end = now + max(value - now, 0.0)

    applied over fixed stage slots with ``np.where`` masks (padding with
    no-op stages would perturb the floats — the clamp is not algebraically
    transparent: ``t + (v - t) != v`` in general).  The end transform also
    covers empty branches exactly (``value = start``, ``now = 0``).  Joins
    take the value-max of both branches and the heap-time max of their end
    events for the tail's scheduling ``now``.
    """
    m = len(programs)
    if m == 0:
        return {}, 0.0, 0

    start = np.empty(m)
    count_a = np.zeros(m, dtype=np.int64)
    svc_a = np.zeros((m, 4))
    has_join = np.zeros(m, dtype=bool)
    svc_b = np.zeros(m)
    count_t = np.zeros(m, dtype=np.int64)
    svc_t = np.zeros((m, 3))
    events = 0
    for i, prog in enumerate(programs):
        start[i] = prog.start
        count_a[i] = len(prog.chain_a)
        for slot, (_, service) in enumerate(prog.chain_a):
            svc_a[i, slot] = service
        if prog.has_join:
            has_join[i] = True
            svc_b[i] = prog.chain_b[1]
            count_t[i] = len(prog.tail)
            for slot, (_, service) in enumerate(prog.tail):
                svc_t[i, slot] = service
        events += prog.event_count()

    value = start.copy()
    now = np.zeros(m)
    for slot in range(4):
        active = slot < count_a
        if not active.any():
            break
        fire = now + np.maximum(value - now, 0.0)
        finish = fire + svc_a[:, slot]
        then = fire + np.maximum(finish - fire, 0.0)
        value = np.where(active, finish, value)
        now = np.where(active, then, now)
    # The done hop that closes every chain (and IS the whole event for an
    # empty branch, where value = start and now = 0 still hold).
    end_a = now + np.maximum(value - now, 0.0)
    final_value = value
    final_now = end_a

    if has_join.any():
        fire_b = 0.0 + np.maximum(start - 0.0, 0.0)
        finish_b = fire_b + svc_b
        then_b = fire_b + np.maximum(finish_b - fire_b, 0.0)
        end_b = then_b + np.maximum(finish_b - then_b, 0.0)
        # The join completes at the later-popped branch end event; its
        # value is the branch-finish max, its clock the end-time max.
        value = np.maximum(final_value, finish_b)
        now = np.maximum(end_a, end_b)
        for slot in range(3):
            active = slot < count_t
            if not active.any():
                break
            fire = now + np.maximum(value - now, 0.0)
            finish = fire + svc_t[:, slot]
            then = fire + np.maximum(finish - fire, 0.0)
            value = np.where(active, finish, value)
            now = np.where(active, then, now)
        end_t = now + np.maximum(value - now, 0.0)
        final_value = np.where(has_join, value, final_value)
        final_now = np.where(has_join, end_t, end_a)

    finish_values = final_value.tolist()
    finishes = {prog.row: finish_values[i] for i, prog in enumerate(programs)}
    return finishes, float(final_now.max()), events


# ---------------------------------------------------------------------------
# Exact event loop: contention and/or outage windows.


def _event_loop(
    stage_res,
    stage_service,
    stage_next,
    stage_end_kind,
    stage_end_ref,
    join_tail,
    init_kind,
    init_target,
    init_value,
    init_time,
    res_shared,
    out_lo,
    out_hi,
    out_start,
    out_end,
    n_tasks,
    cap,
):
    """The kernel's event loop over preallocated arrays.

    Event slots double as scheduling counters (slots are allocated in push
    order, exactly like ``EventSimulator``'s ``itertools.count``), so the
    heap orders by ``(time, slot)``.  Every float operation replicates the
    closure engine's arithmetic literally.

    Written in the numba-friendly subset (scalars, ndarray indexing, plain
    loops); the module compiles it with ``numba.njit`` when available.
    """
    ev_time = np.empty(cap)
    ev_kind = np.empty(cap, dtype=np.int64)
    ev_target = np.empty(cap, dtype=np.int64)
    ev_value = np.empty(cap)
    heap = np.empty(cap, dtype=np.int64)
    heap_n = 0
    n_push = 0

    next_free = np.zeros(res_shared.shape[0])
    n_joins = join_tail.shape[0]
    join_remaining = np.full(n_joins, 2, dtype=np.int64)
    join_latest = np.zeros(n_joins)

    task_finish = np.zeros(n_tasks)
    task_done = np.zeros(n_tasks, dtype=np.bool_)
    n_stages = stage_res.shape[0]
    wait_res = np.empty(n_stages, dtype=np.int64)
    wait_val = np.empty(n_stages)
    n_wait = 0

    # Seed the heap with the launch-time events, in launch order.
    for i in range(init_kind.shape[0]):
        slot = n_push
        ev_time[slot] = init_time[i]
        ev_kind[slot] = init_kind[i]
        ev_target[slot] = init_target[i]
        ev_value[slot] = init_value[i]
        n_push += 1
        pos = heap_n
        heap[pos] = slot
        heap_n += 1
        while pos > 0:
            parent = (pos - 1) // 2
            a, b = heap[pos], heap[parent]
            if ev_time[a] < ev_time[b] or (ev_time[a] == ev_time[b] and a < b):
                heap[pos], heap[parent] = b, a
                pos = parent
            else:
                break

    now = 0.0
    n_events = 0
    while heap_n > 0:
        slot = heap[0]
        heap_n -= 1
        heap[0] = heap[heap_n]
        pos = 0
        while True:
            left = 2 * pos + 1
            if left >= heap_n:
                break
            right = left + 1
            best = left
            if right < heap_n:
                a, b = heap[right], heap[left]
                if ev_time[a] < ev_time[b] or (
                    ev_time[a] == ev_time[b] and a < b
                ):
                    best = right
            a, b = heap[best], heap[pos]
            if ev_time[a] < ev_time[b] or (ev_time[a] == ev_time[b] and a < b):
                heap[pos], heap[best] = a, b
                pos = best
            else:
                break

        now = ev_time[slot]
        n_events += 1
        kind = ev_kind[slot]

        push_time = -1.0
        push_kind = -1
        push_target = -1
        push_value = 0.0

        if kind == _FIRE:
            stage = ev_target[slot]
            res = stage_res[stage]
            arrival = now
            if res_shared[res]:
                free = next_free[res]
                begin = free if free > arrival else arrival
            else:
                begin = arrival
            service = stage_service[stage]
            for w in range(out_lo[res], out_hi[res]):
                if begin < out_end[w] and begin + service > out_start[w]:
                    begin = out_end[w]
            finish = begin + service
            if res_shared[res]:
                next_free[res] = finish
            wait_res[n_wait] = res
            wait_val[n_wait] = begin - arrival
            n_wait += 1
            delay = finish - now
            if 0.0 > delay:
                delay = 0.0
            push_time = now + delay
            push_kind = _COMPLETE
            push_target = stage
            push_value = finish
        elif kind == _COMPLETE:
            # then(finish): schedule the next fire, or the done hop that
            # closes the chain — both at now + clamp(finish - now).
            stage = ev_target[slot]
            value = ev_value[slot]
            nxt = stage_next[stage]
            delay = value - now
            if 0.0 > delay:
                delay = 0.0
            push_time = now + delay
            push_value = value
            if nxt >= 0:
                push_kind = _FIRE
                push_target = nxt
            else:
                push_kind = _END
                push_target = stage
        else:
            # _END / _EMPTY_END: done(value) — record a finish or feed the
            # join, whose completion schedules the tail chain.
            value = ev_value[slot]
            join = -1
            if kind == _END:
                stage = ev_target[slot]
                if stage_end_kind[stage] == _END_RECORD:
                    task_finish[stage_end_ref[stage]] = value
                    task_done[stage_end_ref[stage]] = True
                else:
                    join = stage_end_ref[stage]
            else:
                join = ev_target[slot]
            if join >= 0:
                if value > join_latest[join]:
                    join_latest[join] = value
                join_remaining[join] -= 1
                if join_remaining[join] == 0:
                    latest = join_latest[join]
                    delay = latest - now
                    if 0.0 > delay:
                        delay = 0.0
                    push_time = now + delay
                    push_kind = _FIRE
                    push_target = join_tail[join]
                    push_value = latest

        if push_kind >= 0:
            slot = n_push
            ev_time[slot] = push_time
            ev_kind[slot] = push_kind
            ev_target[slot] = push_target
            ev_value[slot] = push_value
            n_push += 1
            pos = heap_n
            heap[pos] = slot
            heap_n += 1
            while pos > 0:
                parent = (pos - 1) // 2
                a, b = heap[pos], heap[parent]
                if ev_time[a] < ev_time[b] or (
                    ev_time[a] == ev_time[b] and a < b
                ):
                    heap[pos], heap[parent] = b, a
                    pos = parent
                else:
                    break

    return task_finish, task_done, wait_res, wait_val, n_wait, now, n_events


def _event_loop_py(
    stage_res,
    stage_service,
    stage_next,
    stage_end_kind,
    stage_end_ref,
    join_tail,
    init_kind,
    init_target,
    init_value,
    init_time,
    res_shared,
    out_lo,
    out_hi,
    out_start,
    out_end,
    n_tasks,
):
    """Interpreter-friendly twin of :func:`_event_loop` (lists + heapq).

    Without numba, indexing ndarrays scalar-by-scalar is slower than the
    closure engine it replaces, so the fallback runs over plain lists with
    the C-implemented ``heapq`` keyed ``(time, counter)`` — the pop order
    is identical to the manual ``(time, slot)`` heap because counters are
    unique and assigned in the same push order.  The float arithmetic is
    the same, statement for statement; the differential tests pin the two
    loops against each other and against the object path.
    """
    heap = []
    counter = 0
    for i in range(len(init_kind)):
        heap.append((init_time[i], counter, init_kind[i], init_target[i], init_value[i]))
        counter += 1
    heapq.heapify(heap)

    next_free = [0.0] * len(res_shared)
    join_remaining = [2] * len(join_tail)
    join_latest = [0.0] * len(join_tail)
    task_finish = [0.0] * n_tasks
    task_done = [False] * n_tasks
    wait_res: List[int] = []
    wait_val: List[float] = []

    now = 0.0
    n_events = 0
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        now, _, kind, target, value = heappop(heap)
        n_events += 1

        if kind == _FIRE:
            res = stage_res[target]
            if res_shared[res]:
                free = next_free[res]
                begin = free if free > now else now
            else:
                begin = now
            service = stage_service[target]
            for w in range(out_lo[res], out_hi[res]):
                if begin < out_end[w] and begin + service > out_start[w]:
                    begin = out_end[w]
            finish = begin + service
            if res_shared[res]:
                next_free[res] = finish
            wait_res.append(res)
            wait_val.append(begin - now)
            delay = finish - now
            if 0.0 > delay:
                delay = 0.0
            heappush(heap, (now + delay, counter, _COMPLETE, target, finish))
            counter += 1
        elif kind == _COMPLETE:
            nxt = stage_next[target]
            delay = value - now
            if 0.0 > delay:
                delay = 0.0
            if nxt >= 0:
                heappush(heap, (now + delay, counter, _FIRE, nxt, value))
            else:
                heappush(heap, (now + delay, counter, _END, target, value))
            counter += 1
        else:
            if kind == _END:
                if stage_end_kind[target] == _END_RECORD:
                    task_finish[stage_end_ref[target]] = value
                    task_done[stage_end_ref[target]] = True
                    continue
                join = stage_end_ref[target]
            else:
                join = target
            if value > join_latest[join]:
                join_latest[join] = value
            join_remaining[join] -= 1
            if join_remaining[join] == 0:
                latest = join_latest[join]
                delay = latest - now
                if 0.0 > delay:
                    delay = 0.0
                heappush(heap, (now + delay, counter, _FIRE, join_tail[join], latest))
                counter += 1

    return task_finish, task_done, wait_res, wait_val, now, n_events


def _detect_numba():
    """njit-compile the event loop if numba is importable (and not vetoed)."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:
        from numba import njit
    except Exception:  # pragma: no cover - exercised by the no-numba CI leg
        return None
    return njit(cache=False)(_event_loop)


_event_loop_jit = _detect_numba()

#: Whether the njit backend is active (surfaced in benches and reports).
HAVE_NUMBA = _event_loop_jit is not None


def _build_event_arrays(
    programs: Sequence[_RowProgram],
    num_resources: int,
    contention: bool,
    backhaul_id: int,
    wan_id: int,
    backhaul_windows: Tuple[Tuple[float, float], ...],
    wan_windows: Tuple[Tuple[float, float], ...],
) -> dict:
    """Struct-of-arrays form of the programs for :func:`_event_loop`."""
    n_stages = sum(
        len(p.chain_a) + (1 + len(p.tail) if p.has_join else 0) for p in programs
    )
    stage_res = np.empty(n_stages, dtype=np.int64)
    stage_service = np.empty(n_stages)
    stage_next = np.full(n_stages, -1, dtype=np.int64)
    stage_end_kind = np.zeros(n_stages, dtype=np.int64)
    stage_end_ref = np.zeros(n_stages, dtype=np.int64)
    n_joins = sum(1 for p in programs if p.has_join)
    join_tail = np.empty(n_joins, dtype=np.int64)

    init_kind: List[int] = []
    init_target: List[int] = []
    init_value: List[float] = []
    init_time: List[float] = []
    cap = 0
    sid = 0
    jid = 0

    def add_chain(stages: Sequence[Tuple[int, float]], end_kind: int, ref: int) -> int:
        nonlocal sid
        first = sid
        for offset, (res, service) in enumerate(stages):
            stage_res[sid] = res
            stage_service[sid] = service
            if offset + 1 < len(stages):
                stage_next[sid] = sid + 1
            else:
                stage_end_kind[sid] = end_kind
                stage_end_ref[sid] = ref
            sid += 1
        return first

    for prog in programs:
        t0 = 0.0 + clamp_to_now(0.0, prog.start)
        cap += prog.event_count()
        if not prog.has_join:
            first = add_chain(prog.chain_a, _END_RECORD, prog.row)
            init_kind.append(_FIRE)
            init_target.append(first)
            init_value.append(0.0)
            init_time.append(t0)
            continue
        join = jid
        jid += 1
        # Branches launch in the reference's order: external first, local
        # second (counters — and thus FIFO ties — depend on it).
        if prog.chain_a:
            first = add_chain(prog.chain_a, _END_JOIN, join)
            init_kind.append(_FIRE)
            init_target.append(first)
            init_value.append(0.0)
            init_time.append(t0)
        else:
            init_kind.append(_EMPTY_END)
            init_target.append(join)
            init_value.append(prog.start)
            init_time.append(t0)
        first_b = add_chain([prog.chain_b], _END_JOIN, join)
        init_kind.append(_FIRE)
        init_target.append(first_b)
        init_value.append(0.0)
        init_time.append(t0)
        join_tail[join] = add_chain(prog.tail, _END_RECORD, prog.row)

    res_shared = np.zeros(num_resources, dtype=np.bool_)
    if contention:
        res_shared[:backhaul_id] = True  # radios and CPUs; infra stays dedicated

    out_lo = np.zeros(num_resources, dtype=np.int64)
    out_hi = np.zeros(num_resources, dtype=np.int64)
    bh_start, bh_end = windows_as_arrays(backhaul_windows)
    wan_start, wan_end = windows_as_arrays(wan_windows)
    out_start = np.concatenate([bh_start, wan_start])
    out_end = np.concatenate([bh_end, wan_end])
    out_lo[backhaul_id], out_hi[backhaul_id] = 0, len(bh_start)
    out_lo[wan_id] = len(bh_start)
    out_hi[wan_id] = len(bh_start) + len(wan_start)

    return {
        "stage_res": stage_res,
        "stage_service": stage_service,
        "stage_next": stage_next,
        "stage_end_kind": stage_end_kind,
        "stage_end_ref": stage_end_ref,
        "join_tail": join_tail,
        "init_kind": np.asarray(init_kind, dtype=np.int64),
        "init_target": np.asarray(init_target, dtype=np.int64),
        "init_value": np.asarray(init_value, dtype=np.float64),
        "init_time": np.asarray(init_time, dtype=np.float64),
        "res_shared": res_shared,
        "out_lo": out_lo,
        "out_hi": out_hi,
        "out_start": out_start,
        "out_end": out_end,
        "cap": cap,
    }


def replay_with_engine(
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    contention: bool,
    backhaul_outages: Sequence[Tuple[float, float]],
    wan_outages: Sequence[Tuple[float, float]],
    start_times: Optional[Sequence[float]],
) -> Tuple[Tuple[Optional[float], ...], float, int, float]:
    """Replay through the compiled engine.

    :returns: ``(latencies, makespan, events_processed, mean_wait)`` with
        the exact values the closure engine produces — the caller wraps
        them in :class:`~repro.des.replay.RealizedMetrics`.
    """
    # Outage windows normalise before the launch loop, matching the
    # FaultyResource construction order of the object path (bad windows
    # raise before any start-time validation does).
    backhaul_windows = normalise_windows(backhaul_outages) if backhaul_outages else ()
    wan_windows = normalise_windows(wan_outages) if wan_outages else ()

    programs, num_resources, backhaul_id, wan_id = compile_rows(
        system, tasks, assignment, start_times
    )
    starts = {
        prog.row: (float(start_times[prog.row]) if start_times is not None else 0.0)
        for prog in programs
    }

    if not contention and not backhaul_windows and not wan_windows:
        finishes, makespan, events = _closed_form(programs)
        mean_wait = 0.0  # dedicated requests start at arrival: every wait is 0.0
    else:
        arrays = _build_event_arrays(
            programs,
            num_resources,
            contention,
            backhaul_id,
            wan_id,
            backhaul_windows,
            wan_windows,
        )
        if _event_loop_jit is not None:
            task_finish, task_done, wait_res, wait_val, n_wait, now, events = (
                _event_loop_jit(
                    arrays["stage_res"],
                    arrays["stage_service"],
                    arrays["stage_next"],
                    arrays["stage_end_kind"],
                    arrays["stage_end_ref"],
                    arrays["join_tail"],
                    arrays["init_kind"],
                    arrays["init_target"],
                    arrays["init_value"],
                    arrays["init_time"],
                    arrays["res_shared"],
                    arrays["out_lo"],
                    arrays["out_hi"],
                    arrays["out_start"],
                    arrays["out_end"],
                    len(tasks),
                    arrays["cap"],
                )
            )
            finish_list = task_finish.tolist()
            done_list = task_done.tolist()
            n_wait = int(n_wait)
            wait_res_list = wait_res[:n_wait].tolist()
            wait_val_list = wait_val[:n_wait].tolist()
        else:
            finish_list, done_list, wait_res_list, wait_val_list, now, events = (
                _event_loop_py(
                    arrays["stage_res"].tolist(),
                    arrays["stage_service"].tolist(),
                    arrays["stage_next"].tolist(),
                    arrays["stage_end_kind"].tolist(),
                    arrays["stage_end_ref"].tolist(),
                    arrays["join_tail"].tolist(),
                    arrays["init_kind"].tolist(),
                    arrays["init_target"].tolist(),
                    arrays["init_value"].tolist(),
                    arrays["init_time"].tolist(),
                    arrays["res_shared"].tolist(),
                    arrays["out_lo"].tolist(),
                    arrays["out_hi"].tolist(),
                    arrays["out_start"].tolist(),
                    arrays["out_end"].tolist(),
                    len(tasks),
                )
            )
        makespan = float(now)
        events = int(events)
        finishes = {
            row: finish_list[row] for row in range(len(tasks)) if done_list[row]
        }
        # The reference sums waits over all_resources() order (resource id
        # ascending), each resource's log in request order — a stable sort
        # by resource id reconstructs exactly that summation order.
        if wait_val_list:
            order = sorted(range(len(wait_res_list)), key=wait_res_list.__getitem__)
            total = 0.0
            for i in order:
                total += wait_val_list[i]
            mean_wait = total / len(wait_val_list)
        else:
            mean_wait = 0.0

    latencies: List[Optional[float]] = []
    for row in range(len(tasks)):
        finish = finishes.get(row)
        if finish is None:
            latencies.append(None)
        else:
            latencies.append(finish - starts.get(row, 0.0))
    return tuple(latencies), makespan, events, mean_wait
