"""A minimal discrete-event simulation kernel.

Callback-style: schedule ``(delay, callback)`` pairs; :meth:`run` pops
events in time order (FIFO among simultaneous events) and invokes them.
Deliberately tiny — deterministic, no processes, no channels — because the
replay layer only needs ordered time advancement.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventSimulator", "clamp_to_now"]


def clamp_to_now(now: float, time: float) -> float:
    """The delay :meth:`EventSimulator.schedule_at` derives from a target.

    Kept as a shared function because the compiled engine in
    :mod:`repro.des.engine` must replicate this arithmetic bit for bit —
    ``now + max(time - now, 0.0)`` is *not* ``max(time, now)`` in floats,
    and simplifying it would break the differential guarantees.
    """
    return max(time - now, 0.0)


class EventSimulator:
    """An event queue with a clock.

    Events scheduled for the same instant fire in scheduling order, which
    keeps replays deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        :raises ValueError: on negative delays (time travels forward only).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute time ≥ now.

        Times a rounding error below ``now`` are clamped to ``now`` — chains
        of float additions legitimately produce finish times a few ulps in
        the past.
        """
        self.schedule(clamp_to_now(self._now, time), callback)

    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until the queue drains (or ``until``).

        :param until: stop the clock at this time, leaving later events
            queued; ``None`` runs to exhaustion.
        :returns: the final simulation time.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self._processed += 1
            callback()
        return self._now

    def step(self) -> bool:
        """Process exactly one event; returns False if none were queued."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        callback()
        return True
