"""Discrete-event validation simulator.

The Section II cost model is analytic; this package replays an assignment
event-by-event over the modelled links and processors, so the analytic
formulas can be *checked* rather than trusted:

- without contention (each transfer gets the dedicated link the analytic
  model assumes), realized latencies must equal the formulas exactly — the
  integration tests assert this;
- with contention (FIFO sharing of device radios and station CPUs), the
  replay shows the queueing the analytic model abstracts away — an
  extension the ablation benches exercise.

Two engines execute the replay: the closure-chained object simulator in
:mod:`repro.des.replay` (the reference) and the compiled struct-of-arrays
engine in :mod:`repro.des.engine` (the default; optionally numba-jitted —
``HAVE_NUMBA`` reports whether the jit backend is active).  They are
differentially tested to produce bit-identical :class:`RealizedMetrics`.
"""

from repro.des.engine import HAVE_NUMBA
from repro.des.kernel import EventSimulator
from repro.des.resources import FIFOResource
from repro.des.replay import RealizedMetrics, replay_assignment

__all__ = [
    "EventSimulator",
    "FIFOResource",
    "HAVE_NUMBA",
    "RealizedMetrics",
    "replay_assignment",
]
