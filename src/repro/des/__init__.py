"""Discrete-event validation simulator.

The Section II cost model is analytic; this package replays an assignment
event-by-event over the modelled links and processors, so the analytic
formulas can be *checked* rather than trusted:

- without contention (each transfer gets the dedicated link the analytic
  model assumes), realized latencies must equal the formulas exactly — the
  integration tests assert this;
- with contention (FIFO sharing of device radios and station CPUs), the
  replay shows the queueing the analytic model abstracts away — an
  extension the ablation benches exercise.
"""

from repro.des.kernel import EventSimulator
from repro.des.resources import FIFOResource
from repro.des.replay import RealizedMetrics, replay_assignment

__all__ = ["EventSimulator", "FIFOResource", "RealizedMetrics", "replay_assignment"]
