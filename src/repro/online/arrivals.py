"""Task arrival processes for the online extension."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.task import Task
from repro.system.topology import MECSystem
from repro.workload.generator import _holistic_task
from repro.workload.profiles import WorkloadProfile

__all__ = ["PoissonArrivals", "TimedTask"]


@dataclass(frozen=True)
class TimedTask:
    """A task plus the wall-clock time it entered the system.

    :param arrival_s: arrival time, seconds from the simulation start.
    :param task: the task itself.
    """

    arrival_s: float
    task: Task


class PoissonArrivals:
    """Homogeneous Poisson task arrivals with profile-distributed tasks.

    Each arrival picks a uniformly random owning device and draws the task's
    sizes/deadline/resources from the workload profile's distributions — the
    same distributions the static experiments use, so online and batch
    results are comparable.

    :param system: the MEC system tasks arrive into.
    :param profile: distribution parameters for the generated tasks.
    :param rate_per_s: expected arrivals per second.
    :param seed: RNG seed.
    """

    def __init__(
        self,
        system: MECSystem,
        profile: WorkloadProfile,
        rate_per_s: float,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.system = system
        self.profile = profile
        self.rate_per_s = rate_per_s
        self._rng = np.random.default_rng(seed)
        self._next_index = 0

    def generate(self, horizon_s: float) -> List[TimedTask]:
        """All arrivals in [0, horizon_s), in time order.

        :param horizon_s: length of the generation window.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        arrivals: List[TimedTask] = []
        time = 0.0
        device_ids = sorted(self.system.devices)
        while True:
            time += float(self._rng.exponential(1.0 / self.rate_per_s))
            if time >= horizon_s:
                break
            owner = int(self._rng.choice(device_ids))
            task = _holistic_task(
                self.system, self.profile, owner, self._next_index, self._rng
            )
            self._next_index += 1
            arrivals.append(TimedTask(arrival_s=time, task=task))
        return arrivals
