"""Epoch-based online scheduling over a mobile MEC system.

Every ``epoch_length_s`` the scheduler: observes the current device→station
association (from the mobility model, or the static one), re-prices the
tasks that arrived during the previous epoch under that association, and
runs the configured policy on the batch.  The quasi-static assumption is
then *audited*: the same decisions are re-priced under the association at
the end of the epoch, and the report records the realized energy and the
extra deadline misses the drift caused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.task import Task
from repro.mobility.handover import attachment_at
from repro.mobility.waypoint import RandomWaypointModel
from repro.online.arrivals import TimedTask
from repro.system.topology import MECSystem

__all__ = [
    "EpochRecord",
    "OnlineOptions",
    "OnlineReport",
    "POLICIES",
    "simulate_online",
]

#: Accepted policy keys — registry lookups: lower-cased display names
#: ("lp-hta", "hgos", "game") or registered aliases ("cloud" → AllToC).
POLICIES = ("lp-hta", "hgos", "game", "cloud")
_POLICIES = POLICIES


@dataclass(frozen=True)
class OnlineOptions:
    """Online-scheduler tunables.

    :param epoch_length_s: planning cadence.
    :param policy: ``"lp-hta"`` (default), ``"hgos"``, ``"game"`` or
        ``"cloud"``.
    :param audit_drift: re-price each epoch's decisions under the
        end-of-epoch association to measure what mobility cost.
    """

    epoch_length_s: float = 60.0
    policy: str = "lp-hta"
    audit_drift: bool = True

    def __post_init__(self) -> None:
        if self.epoch_length_s <= 0:
            raise ValueError("epoch_length_s must be positive")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")


@dataclass(frozen=True)
class EpochRecord:
    """Metrics of one planning epoch.

    :param epoch: epoch index.
    :param start_s: epoch start time.
    :param num_tasks: tasks planned in this epoch.
    :param planned_energy_j: energy under the epoch-start association.
    :param realized_energy_j: energy of the same decisions under the
        end-of-epoch association (equals planned when nothing moved).
    :param planned_unsatisfied: deadline miss/cancel rate at plan time.
    :param realized_unsatisfied: miss/cancel rate after drift.
    :param handovers: devices whose station changed within the epoch.
    """

    epoch: int
    start_s: float
    num_tasks: int
    planned_energy_j: float
    realized_energy_j: float
    planned_unsatisfied: float
    realized_unsatisfied: float
    handovers: int


@dataclass(frozen=True)
class OnlineReport:
    """Whole-run summary of an online simulation.

    :param epochs: per-epoch records.
    :param policy: the policy that produced them.
    """

    epochs: Tuple[EpochRecord, ...]
    policy: str

    @property
    def total_tasks(self) -> int:
        """Tasks planned across the run."""
        return sum(e.num_tasks for e in self.epochs)

    @property
    def total_planned_energy_j(self) -> float:
        """Energy the planner believed it was spending."""
        return sum(e.planned_energy_j for e in self.epochs)

    @property
    def total_realized_energy_j(self) -> float:
        """Energy after auditing association drift."""
        return sum(e.realized_energy_j for e in self.epochs)

    @property
    def drift_energy_gap_j(self) -> float:
        """Extra energy attributable to quasi-static violations."""
        return self.total_realized_energy_j - self.total_planned_energy_j

    @property
    def mean_realized_unsatisfied(self) -> float:
        """Task-weighted realized miss rate."""
        total = self.total_tasks
        if total == 0:
            return 0.0
        return (
            sum(e.realized_unsatisfied * e.num_tasks for e in self.epochs) / total
        )


def _rebuild(system: MECSystem, attachment: Dict[int, int]) -> MECSystem:
    """The same system under a different device→station association."""
    return MECSystem(
        devices=list(system.devices.values()),
        stations=list(system.stations.values()),
        attachment=attachment,
        cloud=system.cloud,
        bs_bs_link=system.bs_bs_link,
        bs_cloud_link=system.bs_cloud_link,
        parameters=system.parameters,
    )


def _run_policy(
    policy: str,
    system: MECSystem,
    tasks: Sequence[Task],
    context: RunContext,
) -> Assignment:
    return registry.resolve_assignment(policy, system, list(tasks), context)


def _reprice(
    system: MECSystem, tasks: Sequence[Task], decisions: Sequence[Subsystem]
) -> Assignment:
    """The same decisions under a re-priced cost table."""
    return Assignment(cluster_costs(system, list(tasks)), decisions)


def simulate_online(
    system: MECSystem,
    arrivals: Sequence[TimedTask],
    options: OnlineOptions = OnlineOptions(),
    mobility: Optional[RandomWaypointModel] = None,
    context: Optional[RunContext] = None,
) -> OnlineReport:
    """Run the epoch scheduler over a stream of arrivals.

    :param system: the MEC system (its attachment is used when no mobility
        model is given; its station positions anchor handover when one is).
    :param arrivals: timed tasks, in any order.
    :param options: scheduler tunables.
    :param mobility: optional mobility model driving the association.
    :param context: run configuration for every epoch's policy run;
        defaults to the active context.
    :returns: per-epoch and aggregate metrics.
    """
    context = context if context is not None else current_context()
    if mobility is not None:
        station_positions = {
            sid: station.position
            for sid, station in system.stations.items()
        }
        if any(p is None for p in station_positions.values()):
            raise ValueError("mobility requires positioned base stations")

    ordered = sorted(arrivals, key=lambda timed: timed.arrival_s)
    if not ordered:
        return OnlineReport(epochs=(), policy=options.policy)
    horizon = ordered[-1].arrival_s
    num_epochs = int(horizon // options.epoch_length_s) + 1

    records: List[EpochRecord] = []
    cursor = 0
    for epoch in range(num_epochs):
        start = epoch * options.epoch_length_s
        end = start + options.epoch_length_s
        batch: List[Task] = []
        while cursor < len(ordered) and ordered[cursor].arrival_s < end:
            batch.append(ordered[cursor].task)
            cursor += 1
        if not batch:
            continue

        if mobility is None:
            plan_system = system
            drift_system = system
            handovers = 0
        else:
            plan_attachment = attachment_at(mobility, station_positions, end)
            drift_attachment = attachment_at(
                mobility, station_positions, end + options.epoch_length_s
            )
            plan_system = _rebuild(system, plan_attachment)
            drift_system = _rebuild(system, drift_attachment)
            handovers = sum(
                1
                for device_id in plan_attachment
                if plan_attachment[device_id] != drift_attachment[device_id]
            )

        assignment = _run_policy(options.policy, plan_system, batch, context)
        planned_energy = assignment.total_energy_j()
        planned_unsat = assignment.unsatisfied_rate()

        if options.audit_drift and mobility is not None:
            realized = _reprice(drift_system, batch, assignment.decisions)
            realized_energy = realized.total_energy_j()
            realized_unsat = realized.unsatisfied_rate()
        else:
            realized_energy = planned_energy
            realized_unsat = planned_unsat

        records.append(
            EpochRecord(
                epoch=epoch,
                start_s=start,
                num_tasks=len(batch),
                planned_energy_j=planned_energy,
                realized_energy_j=realized_energy,
                planned_unsatisfied=planned_unsat,
                realized_unsatisfied=realized_unsat,
                handovers=handovers,
            )
        )

    return OnlineReport(epochs=tuple(records), policy=options.policy)
