"""Epoch-based online scheduling over a mobile MEC system.

Every ``epoch_length_s`` the scheduler: observes the current device→station
association (from the mobility model, or the static one), re-prices the
tasks that arrived during the previous epoch under that association, and
runs the configured policy on the batch.  The quasi-static assumption is
then *audited*: the same decisions are re-priced under the association at
the end of the epoch, and the report records the realized energy and the
extra deadline misses the drift caused.

When a :class:`~repro.faults.FaultPlan` is supplied, each epoch also
consumes its slice of the fault history: devices that departed before the
epoch are marked and their tasks dropped before re-planning, the planned
schedule is replayed under the epoch's outage windows to detect mid-flight
failures (:func:`repro.faults.detect_threats`), and the configured recovery
policy (:data:`repro.faults.RECOVERY_POLICIES`) decides what each failure
costs.  Recovery events land in the :class:`~repro.context.RunContext`
telemetry sink, so ``--stats`` reports retries/degradations/reassignments,
and in the report for the resilience experiment to trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import cluster_costs
from repro.core.task import Task
from repro.faults.model import FaultPlan, shift_windows
from repro.faults.recovery import (
    RECOVERY_POLICIES,
    RecoveryEvent,
    RecoveryOptions,
    apply_recovery,
    detect_threats,
)
from repro.mobility.handover import attachment_at
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs.tracer import record_span, span
from repro.online.arrivals import TimedTask
from repro.system.topology import MECSystem

__all__ = [
    "EpochRecord",
    "OnlineOptions",
    "OnlineReport",
    "POLICIES",
    "simulate_online",
]

#: Accepted policy keys — registry lookups: lower-cased display names
#: ("lp-hta", "hgos", "game") or registered aliases ("cloud" → AllToC).
POLICIES = ("lp-hta", "hgos", "game", "cloud")
_POLICIES = POLICIES


@dataclass(frozen=True)
class OnlineOptions:
    """Online-scheduler tunables.

    :param epoch_length_s: planning cadence.
    :param policy: ``"lp-hta"`` (default), ``"hgos"``, ``"game"`` or
        ``"cloud"``.
    :param audit_drift: re-price each epoch's decisions under the
        end-of-epoch association to measure what mobility cost.
    :param recovery: fault-recovery policy applied when a fault plan is
        supplied — one of :data:`repro.faults.RECOVERY_POLICIES`
        (``"none"``, ``"retry"``, ``"degrade"``, ``"reassign"``).
    :param recovery_options: retry/backoff tunables for the recovery step.
    """

    epoch_length_s: float = 60.0
    policy: str = "lp-hta"
    audit_drift: bool = True
    recovery: str = "none"
    recovery_options: RecoveryOptions = field(default_factory=RecoveryOptions)

    def __post_init__(self) -> None:
        if self.epoch_length_s <= 0:
            raise ValueError("epoch_length_s must be positive")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(f"recovery must be one of {RECOVERY_POLICIES}")


@dataclass(frozen=True)
class EpochRecord:
    """Metrics of one planning epoch.

    :param epoch: epoch index.
    :param start_s: epoch start time.
    :param num_tasks: tasks that *arrived* in this epoch — including tasks
        dropped before planning because their owner had departed.
    :param planned_energy_j: energy under the epoch-start association
        (planned tasks only).
    :param realized_energy_j: energy of the same decisions after auditing
        association drift *and* fault recovery — includes energy wasted on
        failed work, late cloud re-executions and recovery overheads.
    :param planned_unsatisfied: deadline miss/cancel rate at plan time
        (over the planned tasks).
    :param realized_unsatisfied: miss/cancel/drop rate after drift and
        faults, over *every* arrival of the epoch.
    :param handovers: devices whose station changed within the epoch.
    :param dropped: tasks lost to device departures or data loss.
    :param recovered: threatened tasks the recovery policy saved.
    :param retries: retry recoveries attempted.
    :param degradations: degrade-to-cloud recoveries attempted.
    :param reassignments: LP reassignment recoveries attempted.
    :param fault_extra_energy_j: realized minus planned energy that is
        attributable to faults (waste, redo, recovery overhead).
    """

    epoch: int
    start_s: float
    num_tasks: int
    planned_energy_j: float
    realized_energy_j: float
    planned_unsatisfied: float
    realized_unsatisfied: float
    handovers: int
    dropped: int = 0
    recovered: int = 0
    retries: int = 0
    degradations: int = 0
    reassignments: int = 0
    fault_extra_energy_j: float = 0.0


@dataclass(frozen=True)
class OnlineReport:
    """Whole-run summary of an online simulation.

    :param epochs: per-epoch records.
    :param policy: the policy that produced them.
    :param recovery: the fault-recovery policy in force (``"none"`` when
        no fault plan was supplied).
    :param events: every fault-recovery event, in (epoch, row) order.
    """

    epochs: Tuple[EpochRecord, ...]
    policy: str
    recovery: str = "none"
    events: Tuple[RecoveryEvent, ...] = ()

    @property
    def total_tasks(self) -> int:
        """Tasks that arrived across the run (planned or dropped)."""
        return sum(e.num_tasks for e in self.epochs)

    @property
    def total_planned_energy_j(self) -> float:
        """Energy the planner believed it was spending."""
        return sum(e.planned_energy_j for e in self.epochs)

    @property
    def total_realized_energy_j(self) -> float:
        """Energy after auditing association drift and fault recovery."""
        return sum(e.realized_energy_j for e in self.epochs)

    @property
    def drift_energy_gap_j(self) -> float:
        """Extra energy attributable to quasi-static violations and faults.

        Includes the energy of failed work: wasted attempts, late cloud
        re-executions and recovery overheads all land in the realized
        total, so dropped or degraded tasks no longer undercount the gap.
        """
        return self.total_realized_energy_j - self.total_planned_energy_j

    @property
    def mean_realized_unsatisfied(self) -> float:
        """Arrival-weighted realized miss rate.

        Weighted by every task that *arrived* — tasks dropped mid-epoch
        (departed owners, lost data) count as unsatisfied work instead of
        silently vanishing from the denominator.
        """
        total = self.total_tasks
        if total == 0:
            return 0.0
        return (
            sum(e.realized_unsatisfied * e.num_tasks for e in self.epochs) / total
        )

    @property
    def total_dropped(self) -> int:
        """Tasks lost to departures/data loss across the run."""
        return sum(e.dropped for e in self.epochs)

    @property
    def total_recovered(self) -> int:
        """Threatened tasks the recovery policy saved across the run."""
        return sum(e.recovered for e in self.epochs)

    def event_trace(self) -> Tuple[tuple, ...]:
        """The canonical recovery-event trace (bit-identity comparisons)."""
        return tuple(event.as_tuple() for event in self.events)


def _rebuild(system: MECSystem, attachment: Dict[int, int]) -> MECSystem:
    """The same system under a different device→station association."""
    return MECSystem(
        devices=list(system.devices.values()),
        stations=list(system.stations.values()),
        attachment=attachment,
        cloud=system.cloud,
        bs_bs_link=system.bs_bs_link,
        bs_cloud_link=system.bs_cloud_link,
        parameters=system.parameters,
    )


def _run_policy(
    policy: str,
    system: MECSystem,
    tasks: Sequence[Task],
    context: RunContext,
) -> Assignment:
    return registry.resolve_assignment(policy, system, list(tasks), context)


def _reprice(
    system: MECSystem, tasks: Sequence[Task], decisions: Sequence[Subsystem]
) -> Assignment:
    """The same decisions under a re-priced cost table."""
    return Assignment(cluster_costs(system, list(tasks)), decisions)


def simulate_online(
    system: MECSystem,
    arrivals: Sequence[TimedTask],
    options: OnlineOptions = OnlineOptions(),
    mobility: Optional[RandomWaypointModel] = None,
    context: Optional[RunContext] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> OnlineReport:
    """Run the epoch scheduler over a stream of arrivals.

    :param system: the MEC system (its attachment is used when no mobility
        model is given; its station positions anchor handover when one is).
    :param arrivals: timed tasks, in any order.
    :param options: scheduler tunables.
    :param mobility: optional mobility model driving the association.
    :param context: run configuration for every epoch's policy run;
        defaults to the active context.
    :param fault_plan: optional fault history to inject — device
        departures are marked before re-planning, link outages are
        replayed against each epoch's schedule, and ``options.recovery``
        decides what the resulting failures cost.
    :returns: per-epoch and aggregate metrics, plus the recovery events.
    """
    context = context if context is not None else current_context()
    if mobility is not None:
        station_positions = {
            sid: station.position
            for sid, station in system.stations.items()
        }
        if any(p is None for p in station_positions.values()):
            raise ValueError("mobility requires positioned base stations")

    ordered = sorted(arrivals, key=lambda timed: timed.arrival_s)
    if not ordered:
        return OnlineReport(
            epochs=(), policy=options.policy, recovery=options.recovery
        )
    horizon = ordered[-1].arrival_s
    num_epochs = int(horizon // options.epoch_length_s) + 1

    records: List[EpochRecord] = []
    all_events: List[RecoveryEvent] = []
    cursor = 0
    for epoch in range(num_epochs):
        start = epoch * options.epoch_length_s
        end = start + options.epoch_length_s
        timed_batch: List[TimedTask] = []
        while cursor < len(ordered) and ordered[cursor].arrival_s < end:
            timed_batch.append(ordered[cursor])
            cursor += 1
        if not timed_batch:
            continue
        epoch_work_start = time.perf_counter()
        full_batch: List[Task] = [timed.task for timed in timed_batch]

        # Mark departed devices before re-planning: their tasks never make
        # it into the planner's batch.  Surviving rows keep their arrival
        # offset within the epoch — the replay launches them there, so
        # mid-epoch outage windows hit the tasks actually in flight.
        epoch_events: List[RecoveryEvent] = []
        batch: List[Task] = []
        offsets: List[float] = []
        if fault_plan is not None:
            gone_at_plan = fault_plan.departed_devices(start)
            for timed in timed_batch:
                if timed.task.owner_device_id in gone_at_plan:
                    epoch_events.append(
                        RecoveryEvent(
                            epoch=epoch,
                            task_id=timed.task.task_id,
                            row=-1,
                            kind="departure",
                            action="drop",
                            recovered=False,
                            extra_energy_j=0.0,
                        )
                    )
                else:
                    batch.append(timed.task)
                    offsets.append(max(0.0, timed.arrival_s - start))
        else:
            batch = full_batch
            offsets = [max(0.0, t.arrival_s - start) for t in timed_batch]

        if mobility is None:
            plan_system = system
            drift_system = system
            handovers = 0
        else:
            plan_attachment = attachment_at(mobility, station_positions, end)
            drift_attachment = attachment_at(
                mobility, station_positions, end + options.epoch_length_s
            )
            plan_system = _rebuild(system, plan_attachment)
            drift_system = _rebuild(system, drift_attachment)
            handovers = sum(
                1
                for device_id in plan_attachment
                if plan_attachment[device_id] != drift_attachment[device_id]
            )

        if batch:
            plan_start = time.perf_counter()
            with span("online.plan", context=context, epoch=epoch, tasks=len(batch)):
                assignment = _run_policy(
                    options.policy, plan_system, batch, context
                )
            context.telemetry.metrics.observe(
                "online.decision_latency_s", time.perf_counter() - plan_start
            )
            planned_energy = assignment.total_energy_j()
            planned_unsat = assignment.unsatisfied_rate()

            if options.audit_drift and mobility is not None:
                realized = _reprice(drift_system, batch, assignment.decisions)
            else:
                realized = assignment
            realized_energy = realized.total_energy_j()
        else:
            assignment = None
            realized = None
            planned_energy = 0.0
            planned_unsat = 0.0
            realized_energy = 0.0

        dropped = len(epoch_events)
        recovered = 0
        counts: Dict[str, int] = {}
        fault_extra = 0.0
        if fault_plan is not None and assignment is not None:
            backhaul = shift_windows(fault_plan.backhaul_outages, start, end)
            wan = shift_windows(fault_plan.wan_outages, start, end)
            departed = fault_plan.departed_devices(end)
            crashed = fault_plan.crashed_stations(end)
            threats = detect_threats(
                plan_system,
                batch,
                assignment,
                backhaul_outages=backhaul,
                wan_outages=wan,
                departed=departed,
                crashed=crashed,
                start_times=offsets,
            )
            outcome = apply_recovery(
                options.recovery,
                epoch,
                plan_system,
                batch,
                assignment,
                threats,
                options=options.recovery_options,
                context=context,
                backhaul_outages=backhaul,
                wan_outages=wan,
                departed=departed,
                crashed=crashed,
                start_times=offsets,
            )
            epoch_events.extend(outcome.events)
            fault_extra = outcome.extra_energy_j
            realized_energy += fault_extra
            recovered = len(outcome.recovered_rows)
            counts = outcome.counts
            dropped += len(threats.dropped_rows) + len(threats.data_loss_rows)
            unsat_rows = outcome.unsatisfied_rows
        else:
            unsat_rows = frozenset()

        # Realized satisfaction per arrival: drift-audited deadline check,
        # overridden by any fault the recovery policy could not absorb;
        # pre-planning drops count against the epoch too.
        if realized is not None:
            base_unsat = sum(
                1
                for row in range(len(batch))
                if not realized.meets_deadline(row) or row in unsat_rows
            )
        else:
            base_unsat = 0
        pre_dropped = len(full_batch) - len(batch)
        realized_unsat = (base_unsat + pre_dropped) / len(full_batch)

        for event in epoch_events:
            context.telemetry.record_recovery(event.action, event.recovered)
        all_events.extend(epoch_events)

        records.append(
            EpochRecord(
                epoch=epoch,
                start_s=start,
                num_tasks=len(full_batch),
                planned_energy_j=planned_energy,
                realized_energy_j=realized_energy,
                planned_unsatisfied=planned_unsat,
                realized_unsatisfied=realized_unsat,
                handovers=handovers,
                dropped=dropped,
                recovered=recovered,
                retries=counts.get("retry", 0),
                degradations=counts.get("degrade", 0),
                reassignments=counts.get("reassign", 0),
                fault_extra_energy_j=fault_extra,
            )
        )
        # The loop's ``continue`` paths make a ``with`` block awkward here;
        # record the already-measured interval instead.
        record_span(
            "online.epoch",
            epoch_work_start,
            time.perf_counter() - epoch_work_start,
            context=context,
            epoch=epoch,
            tasks=len(full_batch),
        )

    return OnlineReport(
        epochs=tuple(records),
        policy=options.policy,
        recovery=options.recovery,
        events=tuple(all_events),
    )
