"""Online extension: task arrivals over time, epoch-based re-planning.

The paper plans one static batch under a quasi-static association.  This
package extends the system the way a deployment would run it: tasks arrive
as a Poisson process, devices move (:mod:`repro.mobility`), and the planner
re-runs LP-HTA (or a baseline) at the start of every epoch on the tasks
that arrived since the last one, using the association observed at the
epoch boundary.  The report measures both plan-time metrics and what the
quasi-static assumption cost: tasks priced under the epoch-start
association but *realized* under the association at their completion.
"""

from repro.online.arrivals import PoissonArrivals, TimedTask
from repro.online.scheduler import (
    POLICIES,
    EpochRecord,
    OnlineOptions,
    OnlineReport,
    simulate_online,
)

__all__ = [
    "EpochRecord",
    "OnlineOptions",
    "OnlineReport",
    "POLICIES",
    "PoissonArrivals",
    "TimedTask",
    "simulate_online",
]
