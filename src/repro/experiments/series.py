"""Figure data containers: the series the paper plots, as printable tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple, Union

__all__ = ["SeriesData"]

XValue = Union[int, float, str]


@dataclass(frozen=True)
class SeriesData:
    """The data behind one paper figure: y-series over a shared x-axis.

    :param figure_id: e.g. ``"fig2a"``.
    :param title: what the figure shows.
    :param x_label: x-axis meaning (e.g. "number of tasks").
    :param y_label: y-axis meaning (e.g. "total energy (J)").
    :param x_values: the sweep points.
    :param series: method name → y value per sweep point.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: Tuple[XValue, ...]
    series: Mapping[str, Tuple[float, ...]]

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points for "
                    f"{len(self.x_values)} x-values"
                )

    def values_of(self, name: str) -> Tuple[float, ...]:
        """One named series."""
        return tuple(self.series[name])

    def format_table(self) -> str:
        """A plain-text table (what the CLI and benches print)."""
        names = list(self.series)
        width = max(12, *(len(n) + 2 for n in names))
        header = f"{self.figure_id}: {self.title}\n"
        header += f"  y = {self.y_label}\n"
        lines = [header.rstrip()]
        cells = [f"{self.x_label:>20}"] + [f"{n:>{width}}" for n in names]
        lines.append(" ".join(cells))
        for idx, x in enumerate(self.x_values):
            row = [f"{str(x):>20}"]
            for name in names:
                row.append(f"{self.series[name][idx]:>{width}.4g}")
            lines.append(" ".join(row))
        return "\n".join(lines)

    def winner_per_x(self) -> Tuple[str, ...]:
        """Lowest-valued series name at each sweep point."""
        out = []
        for idx in range(len(self.x_values)):
            out.append(min(self.series, key=lambda n: self.series[n][idx]))
        return tuple(out)

    def render_ascii(self, width: int = 64, height: int = 16) -> str:
        """A terminal scatter chart of all series (one marker per series).

        :param width: plot-area columns (x positions are spread evenly).
        :param height: plot-area rows.
        """
        if width < 8 or height < 4:
            raise ValueError("chart needs at least 8x4 cells")
        markers = "ox+*#@%&"
        names = list(self.series)
        values = [v for series in self.series.values() for v in series]
        lo, hi = min(values), max(values)
        if hi == lo:
            hi = lo + 1.0

        grid = [[" "] * width for _ in range(height)]
        num_x = len(self.x_values)
        for series_index, name in enumerate(names):
            marker = markers[series_index % len(markers)]
            for idx, value in enumerate(self.series[name]):
                col = (
                    int(round(idx * (width - 1) / (num_x - 1))) if num_x > 1 else 0
                )
                row = int(round((value - lo) / (hi - lo) * (height - 1)))
                grid[height - 1 - row][col] = marker

        label_width = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"))
        lines = [f"{self.figure_id}: {self.title}  [{self.y_label}]"]
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = f"{hi:.3g}".rjust(label_width)
            elif row_index == height - 1:
                label = f"{lo:.3g}".rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        axis = " " * label_width + " +" + "-" * width
        lines.append(axis)
        x_left, x_right = str(self.x_values[0]), str(self.x_values[-1])
        gap = max(width - len(x_left) - len(x_right), 1)
        lines.append(
            " " * (label_width + 2) + x_left + " " * gap + x_right
        )
        legend = "   ".join(
            f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
        )
        lines.append(f"{' ' * (label_width + 2)}{self.x_label}   |   {legend}")
        return "\n".join(lines)
