"""Empirical approximation-ratio study for LP-HTA.

Theorem 2 bounds LP-HTA's ratio by :math:`3 + Δ/E^{(OPT)}_{LP}`; this study
measures the *actual* ratio against exact optima (branch and bound) over
many small instances — the experiment the paper's analysis implies but its
evaluation does not run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.assignment import Subsystem
from repro.core.costs import cluster_costs
from repro.core.exact import branch_and_bound_hta
from repro.core.hta import LPHTAOptions, lp_hta
from repro.experiments.stats import Summary, summarize
from repro.workload.generator import generate_scenario
from repro.workload.profiles import PAPER_DEFAULTS, WorkloadProfile

__all__ = ["RatioStudy", "run_ratio_study"]

#: Small-instance profile: one cluster so branch and bound sees it whole.
_STUDY_PROFILE = PAPER_DEFAULTS.with_updates(
    num_tasks=12,
    num_devices=4,
    num_stations=1,
    device_max_resource=4.0,
    station_max_resource=10.0,
)


@dataclass(frozen=True)
class RatioStudy:
    """Outcome of an empirical ratio study.

    :param ratios: per-instance LP-HTA energy / exact optimum energy
        (instances where LP-HTA cancelled tasks or no feasible full
        assignment existed are excluded — the energies are not comparable).
    :param bound_violations: instances whose measured ratio exceeded the
        instance's own Theorem 2 bound (must be zero).
    :param skipped: instances excluded from the comparison.
    :param summary: statistics of the ratios.
    """

    ratios: Tuple[float, ...]
    bound_violations: int
    skipped: int
    summary: Summary


def run_ratio_study(
    seeds: Sequence[int] = tuple(range(20)),
    profile: WorkloadProfile = _STUDY_PROFILE,
    options: LPHTAOptions = LPHTAOptions(),
) -> RatioStudy:
    """Measure LP-HTA's empirical ratio on brute-forceable instances.

    :param seeds: one instance per seed.
    :param profile: instance shape (keep it single-cluster and small).
    :param options: LP-HTA tunables.
    :raises ValueError: if every instance had to be skipped.
    """
    ratios: List[float] = []
    violations = 0
    skipped = 0
    for seed in seeds:
        scenario = generate_scenario(profile, seed=seed)
        costs = cluster_costs(scenario.system, list(scenario.tasks))
        caps = {
            d: scenario.system.device(d).max_resource
            for d in scenario.system.devices
        }
        station_cap = scenario.system.station(0).max_resource
        optimal = branch_and_bound_hta(costs, caps, station_cap)
        if optimal is None:
            skipped += 1
            continue
        report = lp_hta(scenario.system, list(scenario.tasks), options)
        if report.assignment.subsystem_counts()[Subsystem.CANCELLED]:
            skipped += 1
            continue
        ratio = report.assignment.total_energy_j() / optimal.total_energy_j()
        ratios.append(ratio)
        if ratio > report.ratio_bound_theorem2 + 1e-9:
            violations += 1
    if not ratios:
        raise ValueError("every instance was skipped; enlarge the seed set")
    return RatioStudy(
        ratios=tuple(ratios),
        bound_violations=violations,
        skipped=skipped,
        summary=summarize(ratios),
    )
