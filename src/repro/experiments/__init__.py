"""Experiment harness: one reproducer per figure/table of Section V."""

from repro.experiments.runner import (
    AlgorithmResult,
    evaluate_dta,
    evaluate_holistic,
    HOLISTIC_ALGORITHMS,
)
from repro.experiments.series import SeriesData
from repro.experiments.figures import (
    ALL_FIGURES,
    fig2a,
    fig2b,
    fig3,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    run_figure,
)
from repro.experiments.breakdown import EnergyBreakdown, energy_breakdown
from repro.experiments.grid import GridCell, pivot, run_grid
from repro.experiments.parallel import (
    EvaluatorSpec,
    SweepCell,
    as_spec,
    dta_spec,
    holistic_spec,
    run_cells,
)
from repro.experiments.ratio_study import RatioStudy, run_ratio_study
from repro.experiments.resilience import (
    ResilienceEvaluator,
    ResilienceResult,
    ResilienceStudy,
    resilience_sweep,
)
from repro.experiments.stats import Summary, bootstrap_ci, mean_ci, summarize
from repro.experiments.tables import table1_rows, table1_text

__all__ = [
    "EnergyBreakdown",
    "EvaluatorSpec",
    "GridCell",
    "SweepCell",
    "as_spec",
    "dta_spec",
    "holistic_spec",
    "run_cells",
    "energy_breakdown",
    "pivot",
    "run_grid",
    "RatioStudy",
    "ResilienceEvaluator",
    "ResilienceResult",
    "ResilienceStudy",
    "resilience_sweep",
    "Summary",
    "bootstrap_ci",
    "mean_ci",
    "run_ratio_study",
    "summarize",
    "ALL_FIGURES",
    "AlgorithmResult",
    "HOLISTIC_ALGORITHMS",
    "SeriesData",
    "evaluate_dta",
    "evaluate_holistic",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "run_figure",
    "table1_rows",
    "table1_text",
]
