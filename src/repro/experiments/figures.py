"""Reproducers for every figure of Section V.

Each ``figNx()`` function regenerates the series of the corresponding paper
figure: same sweeps, same competitors, same metric.  Results are averaged
over ``seeds`` scenario seeds.  Absolute joules/seconds depend on constants
the paper does not publish (see DESIGN.md); the *shapes* — who wins, by
roughly what factor, where the curves move — are the reproduction target
and are asserted by the benchmark suite.

Divisible-task figures scale the shared-data universe with the task count
(``num_data_items ≈ 2 × tasks``) so that "more tasks" also means "more
shared data", matching the paper's narrative that DTA's savings grow with
the workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.parallel import (
    EvaluatorSpec,
    SweepCell,
    dta_spec,
    holistic_spec,
    run_cells,
)
from repro.experiments.runner import AlgorithmResult
from repro.registry import (
    ALL_OFFLOAD,
    ALL_TO_CLOUD,
    HGOS_NAME,
    LP_HTA,
)
from repro.experiments.series import SeriesData
from repro.units import KB
from repro.workload.generator import Scenario
from repro.workload.profiles import PAPER_DEFAULTS, WorkloadProfile

__all__ = [
    "ALL_FIGURES",
    "DEFAULT_SEEDS",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "run_figure",
]

#: Seeds averaged by default; pass fewer for a quick look.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: Sweep of "number of tasks" used by Figs 2a/3/4a/5a (paper: 100 → 450).
TASK_SWEEP: Tuple[int, ...] = (100, 150, 200, 250, 300, 350, 400, 450)

#: Sweep of "maximum input size" (kB) used by Figs 2b/4b (paper: 1000 → 5000).
INPUT_SWEEP_KB: Tuple[int, ...] = (1000, 2000, 3000, 4000, 5000)

#: Replication used by the divisible-task figures (higher overlap makes the
#: involved-devices contrast of Fig 6b visible, as in dense deployments).
_DTA_REPLICATION = 6.0

Evaluator = Callable[[Scenario], AlgorithmResult]

# Picklable evaluator descriptions (see repro.experiments.parallel): the
# figure sweeps fan out over worker processes, so the evaluators must be
# data, not closures.
_holistic = holistic_spec
_dta = dta_spec


def _divisible(profile: WorkloadProfile) -> WorkloadProfile:
    """Mark a profile divisible and scale its data universe with tasks.

    Divisible tasks are mostly external data (the owner holds only its own
    slice of the shared universe), so the holistic deadline range would make
    LP-HTA cancel half the workload and deflate its energy — an
    apples-to-oranges energy comparison.  The Fig 5/6 experiments therefore
    use analytics-style deadlines loose enough that every method serves the
    full workload, which is the regime the paper's energy plots describe.
    """
    return profile.with_updates(
        divisible=True,
        num_data_items=max(200, 2 * profile.num_tasks),
        item_replication=_DTA_REPLICATION,
        deadline_range_s=(2.0, 10.0),
    )


def _sweep(
    figure_id: str,
    title: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[Union[int, float, str]],
    profiles: Sequence[WorkloadProfile],
    evaluators: Sequence[EvaluatorSpec],
    metric: str,
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Run every evaluator over every sweep point, averaging over seeds."""
    specs = tuple(evaluators)
    work = [
        SweepCell(
            index=index,
            profile=profile,
            seed=seed,
            evaluators=specs,
        )
        for index, (profile, seed) in enumerate(
            (profile, seed) for profile in profiles for seed in seeds
        )
    ]
    per_cell = run_cells(work, jobs=jobs, start_method=start_method)

    series: Dict[str, List[float]] = {spec.name: [] for spec in specs}
    n_seeds = len(seeds)
    for point_idx in range(len(profiles)):
        rows = per_cell[point_idx * n_seeds : (point_idx + 1) * n_seeds]
        for spec_idx, spec in enumerate(specs):
            # Quarantined cells come back as None; average over the seeds
            # that survived, NaN when every seed at this point was lost.
            values = [
                getattr(row[spec_idx], metric) for row in rows if row is not None
            ]
            series[spec.name].append(
                float(np.mean(values)) if values else float("nan")
            )
    return SeriesData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label=y_label,
        x_values=tuple(x_values),
        series={name: tuple(values) for name, values in series.items()},
    )


def fig2a(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 2(a): energy vs number of tasks (LP-HTA, HGOS, AllToC, AllOffload)."""
    profiles = [
        PAPER_DEFAULTS.with_updates(num_tasks=n, max_input_bytes=3000 * KB)
        for n in TASK_SWEEP
    ]
    return _sweep(
        "fig2a", "Energy cost vs number of tasks",
        "number of tasks", "total energy (J)",
        TASK_SWEEP, profiles,
        [_holistic(n) for n in (LP_HTA, HGOS_NAME, ALL_TO_CLOUD, ALL_OFFLOAD)],
        "total_energy_j", seeds, jobs=jobs, start_method=start_method,
    )


def fig2b(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 2(b): energy vs maximum input size, 100 tasks."""
    profiles = [
        PAPER_DEFAULTS.with_updates(num_tasks=100, max_input_bytes=kb * KB)
        for kb in INPUT_SWEEP_KB
    ]
    return _sweep(
        "fig2b", "Energy cost vs maximum input size",
        "max input size (kB)", "total energy (J)",
        INPUT_SWEEP_KB, profiles,
        [_holistic(n) for n in (LP_HTA, HGOS_NAME, ALL_TO_CLOUD, ALL_OFFLOAD)],
        "total_energy_j", seeds, jobs=jobs, start_method=start_method,
    )


def fig3(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 3: unsatisfied-task rate vs number of tasks (no AllToC)."""
    profiles = [
        PAPER_DEFAULTS.with_updates(num_tasks=n, max_input_bytes=3000 * KB)
        for n in TASK_SWEEP
    ]
    return _sweep(
        "fig3", "Unsatisfied task rate vs number of tasks",
        "number of tasks", "unsatisfied task rate",
        TASK_SWEEP, profiles,
        [_holistic(n) for n in (LP_HTA, HGOS_NAME, ALL_OFFLOAD)],
        "unsatisfied_rate", seeds, jobs=jobs, start_method=start_method,
    )


def fig4a(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 4(a): average latency vs number of tasks."""
    profiles = [
        PAPER_DEFAULTS.with_updates(num_tasks=n, max_input_bytes=3000 * KB)
        for n in TASK_SWEEP
    ]
    return _sweep(
        "fig4a", "Average latency vs number of tasks",
        "number of tasks", "average latency (s)",
        TASK_SWEEP, profiles,
        [_holistic(n) for n in (LP_HTA, HGOS_NAME, ALL_TO_CLOUD, ALL_OFFLOAD)],
        "mean_latency_s", seeds, jobs=jobs, start_method=start_method,
    )


def fig4b(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 4(b): average latency vs maximum input size, 100 tasks."""
    profiles = [
        PAPER_DEFAULTS.with_updates(num_tasks=100, max_input_bytes=kb * KB)
        for kb in INPUT_SWEEP_KB
    ]
    return _sweep(
        "fig4b", "Average latency vs maximum input size",
        "max input size (kB)", "average latency (s)",
        INPUT_SWEEP_KB, profiles,
        [_holistic(n) for n in (LP_HTA, HGOS_NAME, ALL_TO_CLOUD, ALL_OFFLOAD)],
        "mean_latency_s", seeds, jobs=jobs, start_method=start_method,
    )


def fig5a(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 5(a): energy vs number of tasks (LP-HTA, DTA-Workload, DTA-Number)."""
    profiles = [
        _divisible(
            PAPER_DEFAULTS.with_updates(
                num_tasks=n, max_input_bytes=3000 * KB, result_ratio=0.2
            )
        )
        for n in TASK_SWEEP
    ]
    return _sweep(
        "fig5a", "Energy cost vs number of tasks (divisible tasks)",
        "number of tasks", "total energy (J)",
        TASK_SWEEP, profiles,
        [_holistic(LP_HTA), _dta("workload"), _dta("number")],
        "total_energy_j", seeds, jobs=jobs, start_method=start_method,
    )


def fig5b(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 5(b): energy vs result size (0.4X … 0.05X, constant), 100 tasks."""
    labels: Tuple[str, ...] = ("0.4X", "0.2X", "0.1X", "0.05X", "const")
    base = PAPER_DEFAULTS.with_updates(num_tasks=100, max_input_bytes=3000 * KB)
    profiles = [
        _divisible(base.with_updates(result_ratio=0.4)),
        _divisible(base.with_updates(result_ratio=0.2)),
        _divisible(base.with_updates(result_ratio=0.1)),
        _divisible(base.with_updates(result_ratio=0.05)),
        _divisible(base.with_updates(result_constant_bytes=10 * KB)),
    ]
    return _sweep(
        "fig5b", "Energy cost vs result size (divisible tasks)",
        "result size", "total energy (J)",
        labels, profiles,
        [_holistic(LP_HTA), _dta("workload"), _dta("number")],
        "total_energy_j", seeds, jobs=jobs, start_method=start_method,
    )


def fig6a(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 6(a): processing time, DTA-Workload vs DTA-Number, 200 tasks."""
    sweep_kb = (1200, 1400, 1600, 1800, 2000)
    profiles = [
        _divisible(
            PAPER_DEFAULTS.with_updates(num_tasks=200, max_input_bytes=kb * KB)
        )
        for kb in sweep_kb
    ]
    return _sweep(
        "fig6a", "Processing time vs maximum input size (divisible tasks)",
        "max input size (kB)", "processing time (s)",
        sweep_kb, profiles,
        [_dta("workload"), _dta("number")],
        "processing_time_s", seeds, jobs=jobs, start_method=start_method,
    )


def fig6b(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Fig 6(b): involved devices, DTA-Workload vs DTA-Number, 2000 kB."""
    sweep_tasks = (100, 300, 500, 700, 900)
    profiles = [
        _divisible(
            PAPER_DEFAULTS.with_updates(num_tasks=n, max_input_bytes=2000 * KB)
        )
        for n in sweep_tasks
    ]
    return _sweep(
        "fig6b", "Involved mobile devices vs number of tasks (divisible tasks)",
        "number of tasks", "involved mobile devices",
        sweep_tasks, profiles,
        [_dta("workload"), _dta("number")],
        "involved_devices", seeds, jobs=jobs, start_method=start_method,
    )


#: Every reproducible figure, keyed by id.
ALL_FIGURES: Mapping[str, Callable[..., SeriesData]] = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3": fig3,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
}


def run_figure(
    figure_id: str,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> SeriesData:
    """Regenerate one figure's data by id.

    :param figure_id: a key of :data:`ALL_FIGURES`.
    :param seeds: scenario seeds to average over.
    :param jobs: worker processes for the sweep (``1`` = in-process).
    :param start_method: multiprocessing start method for ``jobs > 1``
        (see :func:`repro.experiments.parallel.run_cells`).
    """
    try:
        producer = ALL_FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; choose from {sorted(ALL_FIGURES)}"
        ) from None
    return producer(seeds=seeds, jobs=jobs, start_method=start_method)
