"""Generic parameter-grid sweeps over workload profiles.

The figure reproducers hard-code the paper's sweeps; this module is the
general tool behind the sensitivity benches: take a base profile, vary any
subset of its fields over a grid, run any set of evaluators on every cell
(averaged over seeds), and pivot the results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.context import RunContext, current_context
from repro.experiments.parallel import SweepCell, as_spec, run_cells
from repro.experiments.runner import AlgorithmResult
from repro.workload.generator import Scenario
from repro.workload.profiles import WorkloadProfile

__all__ = ["GridCell", "run_grid", "pivot"]

Evaluator = Callable[[Scenario], AlgorithmResult]


@dataclass(frozen=True)
class GridCell:
    """One (parameter point × evaluator) measurement.

    :param point: the varied fields and their values at this cell.
    :param evaluator: evaluator name.
    :param metrics: metric name → seed-averaged value.
    """

    point: Mapping[str, Any]
    evaluator: str
    metrics: Mapping[str, float]

    def metric(self, name: str) -> float:
        """One metric's value.

        :raises KeyError: for unknown metric names.
        """
        return self.metrics[name]


_METRIC_FIELDS = (
    "total_energy_j",
    "mean_latency_s",
    "unsatisfied_rate",
    "processing_time_s",
    "involved_devices",
)


def run_grid(
    base: WorkloadProfile,
    axes: Mapping[str, Sequence[Any]],
    evaluators: Mapping[str, Evaluator],
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = 1,
    context: Optional[RunContext] = None,
    shards: int = 0,
) -> List[GridCell]:
    """Evaluate every grid point with every evaluator.

    :param base: the profile to vary.
    :param axes: field name → values; the grid is the cross product.
    :param evaluators: evaluator name → callable on a scenario.
    :param seeds: seeds averaged per cell.
    :param jobs: worker processes for the (point × seed) fan-out; ``1``
        runs in-process, ``None``/``0`` use every CPU.  Results are
        bit-identical to the sequential path for the same seeds.
    :param context: run configuration stamped onto every cell; ``None``
        lets :func:`~repro.experiments.parallel.run_cells` stamp the
        caller's active context instead.
    :param shards: when ``> 0``, LP-HTA cells route through the sharded
        solver (:func:`repro.core.sharded.lp_hta_sharded`) with this many
        station shards; stamped onto the context as
        :attr:`~repro.context.RunContext.shards`.  Results stay
        bit-identical to the monolithic path for any shard count.
    :raises ValueError: for empty axes, evaluators or unknown fields.
    """
    if not axes:
        raise ValueError("need at least one axis")
    if not evaluators:
        raise ValueError("need at least one evaluator")
    for field in axes:
        if field not in WorkloadProfile.__dataclass_fields__:
            raise ValueError(f"unknown profile field {field!r}")
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    if shards > 0:
        context = (context if context is not None else current_context()).replace(
            shards=shards
        )

    specs = tuple(
        as_spec(name, evaluator) for name, evaluator in evaluators.items()
    )
    names = list(axes)
    points: List[Dict[str, Any]] = []
    work: List[SweepCell] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        point = dict(zip(names, combo))
        profile = base.with_updates(**point)
        points.append(point)
        for seed in seeds:
            work.append(
                SweepCell(
                    index=len(work), profile=profile, seed=seed,
                    evaluators=specs, context=context,
                )
            )
    per_cell = run_cells(work, jobs=jobs)

    cells: List[GridCell] = []
    n_seeds = len(seeds)
    for point_idx, point in enumerate(points):
        rows = per_cell[point_idx * n_seeds : (point_idx + 1) * n_seeds]
        for spec_idx, spec in enumerate(specs):
            # Quarantined cells come back as None; average over the seeds
            # that survived, NaN when every seed at this point was lost.
            results = [row[spec_idx] for row in rows if row is not None]
            metrics = {
                field: (
                    float(np.mean([getattr(r, field) for r in results]))
                    if results
                    else float("nan")
                )
                for field in _METRIC_FIELDS
            }
            cells.append(
                GridCell(point=point, evaluator=spec.name, metrics=metrics)
            )
    return cells


def pivot(
    cells: Sequence[GridCell],
    axis: str,
    metric: str,
    evaluator: str,
) -> List[Tuple[Any, float]]:
    """Extract one evaluator's metric along one axis (other axes averaged).

    :param cells: grid output.
    :param axis: the field to read off.
    :param metric: the metric to extract.
    :param evaluator: which evaluator's cells to use.
    :returns: sorted (axis value, mean metric) pairs.
    :raises ValueError: when nothing matches.
    """
    buckets: Dict[Any, List[float]] = {}
    for cell in cells:
        if cell.evaluator != evaluator or axis not in cell.point:
            continue
        buckets.setdefault(cell.point[axis], []).append(cell.metric(metric))
    if not buckets:
        raise ValueError(
            f"no cells match evaluator={evaluator!r} with axis {axis!r}"
        )
    return [
        (value, float(np.mean(buckets[value]))) for value in sorted(buckets)
    ]
