"""Table I of the paper: parameters of the simulated wireless networks."""

from __future__ import annotations

from typing import List, Tuple

from repro.system.radio import TABLE_I_PROFILES
from repro.units import MBPS

__all__ = ["table1_rows", "table1_text"]


def table1_rows() -> List[Tuple[str, float, float, float, float]]:
    """Rows of Table I: (network, download Mbps, upload Mbps, P^T W, P^R W)."""
    return [
        (
            profile.name,
            profile.download_rate_bps / MBPS,
            profile.upload_rate_bps / MBPS,
            profile.tx_power_w,
            profile.rx_power_w,
        )
        for profile in TABLE_I_PROFILES
    ]


def table1_text() -> str:
    """Table I rendered as plain text (what the paper prints)."""
    lines = [
        "TABLE I: parameters of wireless networks",
        f"{'NetWork':>8} {'Download speed':>16} {'Upload speed':>14} "
        f"{'P^T':>8} {'P^R':>7}",
    ]
    for name, down, up, tx, rx in table1_rows():
        lines.append(
            f"{name:>8} {down:>11.2f} Mbps {up:>9.2f} Mbps {tx:>6.2f} W {rx:>5.2f} W"
        )
    return "\n".join(lines)
