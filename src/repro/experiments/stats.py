"""Statistics helpers for multi-seed experiment aggregation.

The figure reproducers average over seeds; these helpers quantify the
spread: summary statistics, normal-theory confidence intervals for the
mean, and a seed-free bootstrap for quantities with no distributional
story (rates, maxima).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["Summary", "bootstrap_ci", "mean_ci", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one sample.

    :param n: sample size.
    :param mean: sample mean.
    :param std: sample standard deviation (ddof=1; 0 for n=1).
    :param minimum: smallest value.
    :param maximum: largest value.
    :param ci_low: lower edge of the 95% CI for the mean.
    :param ci_high: upper edge of the 95% CI for the mean.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def format(self, unit: str = "") -> str:
        """Human-readable ``mean ± half-width`` rendering."""
        suffix = f" {unit}" if unit else ""
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g}{suffix} (n={self.n})"


def mean_ci(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean.

    A single observation has no spread estimate: the interval collapses to
    the point.

    :param values: the sample.
    :param confidence: coverage level in (0, 1).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean = float(np.mean(data))
    if data.size == 1:
        return (mean, mean)
    sem = float(np.std(data, ddof=1)) / math.sqrt(data.size)
    if sem == 0.0:
        return (mean, mean)
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return (mean - t * sem, mean + t * sem)


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Full summary of a sample.

    :param values: the sample.
    :param confidence: CI coverage level.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    low, high = mean_ci(data, confidence)
    return Summary(
        n=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        ci_low=low,
        ci_high=high,
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic.

    :param values: the sample.
    :param statistic: function of a 1-D array (default: the mean).
    :param confidence: coverage level in (0, 1).
    :param resamples: bootstrap resamples.
    :param seed: RNG seed (results are reproducible).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if resamples <= 0:
        raise ValueError("resamples must be positive")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    for index in range(resamples):
        sample = rng.choice(data, size=data.size, replace=True)
        estimates[index] = float(statistic(sample))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )
