"""Scenario evaluation: run each algorithm and collect the paper's metrics.

A thin compatibility layer over :mod:`repro.registry` — the registry is
the single source of algorithm names and dispatch; this module keeps the
original figure-harness entry points (:data:`HOLISTIC_ALGORITHMS`,
:func:`evaluate_holistic`, :func:`evaluate_dta`) and the
:class:`~repro.registry.AlgorithmResult` import path working.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Mapping, Optional

from repro import registry
from repro.context import RunContext
from repro.registry import AlgorithmResult
from repro.workload.generator import Scenario

__all__ = [
    "AlgorithmResult",
    "HOLISTIC_ALGORITHMS",
    "evaluate_dta",
    "evaluate_holistic",
]


def _runner(name: str) -> Callable[[Scenario], AlgorithmResult]:
    def run(scenario: "Scenario") -> AlgorithmResult:
        return registry.run(name, scenario)

    return run


#: The Section V-B competitors, keyed by their figure-legend names.
HOLISTIC_ALGORITHMS: Mapping[str, Callable[["Scenario"], AlgorithmResult]] = (
    MappingProxyType(
        {
            name: _runner(name)
            for name in registry.names(holistic=True, in_figures=True)
        }
    )
)


def evaluate_holistic(
    scenario: "Scenario",
    algorithm: str,
    context: Optional[RunContext] = None,
) -> AlgorithmResult:
    """Run one holistic algorithm by its figure-legend name.

    :param scenario: the generated scenario.
    :param algorithm: a key of :data:`HOLISTIC_ALGORITHMS`.
    :param context: run configuration; defaults to the active context.
    """
    if registry.get(algorithm).name not in HOLISTIC_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(HOLISTIC_ALGORITHMS)}"
        )
    return registry.run(algorithm, scenario, context)


def evaluate_dta(
    scenario: "Scenario",
    objective: str,
    context: Optional[RunContext] = None,
) -> AlgorithmResult:
    """Run DTA-Workload or DTA-Number on a divisible scenario.

    :param scenario: a scenario generated with ``divisible=True``.
    :param objective: ``"workload"`` or ``"number"`` (the registry aliases
        of the two DTA entries).
    :param context: run configuration; defaults to the active context.
    """
    if objective not in registry.DTA_OBJECTIVES.values():
        raise ValueError(
            f"unknown DTA objective {objective!r}; "
            f"choose from {sorted(registry.DTA_OBJECTIVES.values())}"
        )
    return registry.run(objective, scenario, context)
