"""Scenario evaluation: run each algorithm and collect the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from repro.core.baselines import all_offload, all_to_cloud, hgos
from repro.core.hta import LPHTAOptions, lp_hta
from repro.dta.accounting import run_dta
from repro.workload.generator import Scenario

__all__ = [
    "AlgorithmResult",
    "HOLISTIC_ALGORITHMS",
    "evaluate_dta",
    "evaluate_holistic",
]


@dataclass(frozen=True)
class AlgorithmResult:
    """The metrics Section V plots, for one algorithm on one scenario.

    :param name: algorithm name as used in the figures.
    :param total_energy_j: total system energy (Figs 2, 5).
    :param mean_latency_s: average task latency (Fig 4).
    :param unsatisfied_rate: deadline-miss/cancel fraction (Fig 3).
    :param processing_time_s: parallel makespan (Fig 6a; holistic
        algorithms report their max task latency).
    :param involved_devices: devices executing tasks (Fig 6b).
    """

    name: str
    total_energy_j: float
    mean_latency_s: float
    unsatisfied_rate: float
    processing_time_s: float
    involved_devices: int


def _from_assignment(name: str, assignment) -> AlgorithmResult:
    stats = assignment.stats()
    return AlgorithmResult(
        name=name,
        total_energy_j=stats.total_energy_j,
        mean_latency_s=stats.mean_latency_s,
        unsatisfied_rate=stats.unsatisfied_rate,
        processing_time_s=stats.max_latency_s,
        involved_devices=assignment.involved_devices(),
    )


def _run_lp_hta(scenario: Scenario) -> AlgorithmResult:
    report = lp_hta(scenario.system, list(scenario.tasks), LPHTAOptions())
    return _from_assignment("LP-HTA", report.assignment)


def _run_hgos(scenario: Scenario) -> AlgorithmResult:
    return _from_assignment("HGOS", hgos(scenario.system, list(scenario.tasks)))


def _run_all_to_cloud(scenario: Scenario) -> AlgorithmResult:
    return _from_assignment("AllToC", all_to_cloud(scenario.system, list(scenario.tasks)))


def _run_all_offload(scenario: Scenario) -> AlgorithmResult:
    return _from_assignment(
        "AllOffload", all_offload(scenario.system, list(scenario.tasks))
    )


#: The Section V-B competitors, keyed by their figure-legend names.
HOLISTIC_ALGORITHMS: Mapping[str, Callable[[Scenario], AlgorithmResult]] = {
    "LP-HTA": _run_lp_hta,
    "HGOS": _run_hgos,
    "AllToC": _run_all_to_cloud,
    "AllOffload": _run_all_offload,
}


def evaluate_holistic(scenario: Scenario, algorithm: str) -> AlgorithmResult:
    """Run one holistic algorithm by its figure-legend name.

    :param scenario: the generated scenario.
    :param algorithm: a key of :data:`HOLISTIC_ALGORITHMS`.
    """
    try:
        runner = HOLISTIC_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(HOLISTIC_ALGORITHMS)}"
        ) from None
    return runner(scenario)


def evaluate_dta(scenario: Scenario, objective: str) -> AlgorithmResult:
    """Run DTA-Workload or DTA-Number on a divisible scenario.

    :param scenario: a scenario generated with ``divisible=True``.
    :param objective: ``"workload"`` or ``"number"``.
    """
    if scenario.catalog is None or scenario.ownership is None:
        raise ValueError("DTA needs a divisible scenario (catalog + ownership)")
    outcome = run_dta(
        scenario.system,
        list(scenario.tasks),
        scenario.ownership,
        scenario.catalog,
        objective=objective,  # type: ignore[arg-type]
    )
    stats = outcome.assignment.stats()
    name = "DTA-Workload" if objective == "workload" else "DTA-Number"
    return AlgorithmResult(
        name=name,
        total_energy_j=outcome.total_energy_j,
        mean_latency_s=stats.mean_latency_s,
        unsatisfied_rate=stats.unsatisfied_rate,
        processing_time_s=outcome.processing_time_s,
        involved_devices=outcome.involved_devices,
    )
