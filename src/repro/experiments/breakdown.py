"""Energy breakdowns: where an assignment's joules actually go.

The figures plot totals; this module splits an assignment's energy along
the two axes that explain *why* one scheme beats another: by component
(computation vs the transmission legs) and by subsystem.  Used by the CLI
demo and the analysis examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import task_costs
from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = ["EnergyBreakdown", "energy_breakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """An assignment's energy, decomposed.

    :param computation_j: device CPU energy (stations/cloud compute is free
        in the paper's model).
    :param transmission_j: all radio/backhaul/WAN energy.
    :param by_subsystem_j: energy grouped by executing subsystem.
    :param total_j: the assignment total (= computation + transmission).
    """

    computation_j: float
    transmission_j: float
    by_subsystem_j: Dict[Subsystem, float]
    total_j: float

    @property
    def transmission_share(self) -> float:
        """Fraction of energy spent moving bytes (0 when total is 0)."""
        if self.total_j <= 0:
            return 0.0
        return self.transmission_j / self.total_j

    def format_table(self) -> str:
        """A small printable report."""
        lines = [
            f"total energy          {self.total_j:12.2f} J",
            f"  computation         {self.computation_j:12.2f} J",
            f"  transmission        {self.transmission_j:12.2f} J"
            f"  ({self.transmission_share:.0%})",
        ]
        for subsystem in (Subsystem.DEVICE, Subsystem.STATION, Subsystem.CLOUD):
            lines.append(
                f"  on {subsystem.name.lower():14s} "
                f"{self.by_subsystem_j.get(subsystem, 0.0):12.2f} J"
            )
        return "\n".join(lines)


def energy_breakdown(
    system: MECSystem, tasks: Sequence[Task], assignment: Assignment
) -> EnergyBreakdown:
    """Decompose an assignment's energy by component and subsystem.

    :param system: the MEC system that priced the assignment.
    :param tasks: tasks in the assignment's row order.
    :param assignment: the schedule to decompose.
    :raises ValueError: on a row-count mismatch.
    """
    if len(tasks) != assignment.costs.num_tasks:
        raise ValueError("tasks and assignment rows must correspond")
    computation = 0.0
    transmission = 0.0
    by_subsystem: Dict[Subsystem, float] = {
        Subsystem.DEVICE: 0.0, Subsystem.STATION: 0.0, Subsystem.CLOUD: 0.0,
    }
    for row, task in enumerate(tasks):
        decision = assignment.decisions[row]
        if decision is Subsystem.CANCELLED:
            continue
        costs = task_costs(system, task)
        column = decision.column
        computation += costs.computation_energy_j[column]
        transmission += costs.transmission_energy_j[column]
        by_subsystem[decision] += (
            costs.computation_energy_j[column] + costs.transmission_energy_j[column]
        )
    return EnergyBreakdown(
        computation_j=computation,
        transmission_j=transmission,
        by_subsystem_j=by_subsystem,
        total_j=computation + transmission,
    )
