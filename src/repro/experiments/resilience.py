"""The resilience experiment: recovery policies vs failure intensity.

For each failure intensity λ the experiment builds a seeded
:class:`~repro.faults.FaultPlan` (thinned from a common candidate stream,
so the fault sets *nest* as λ grows — see :mod:`repro.faults.model`),
spreads the scenario's tasks over the fault horizon at deterministic
arrival offsets, and runs the online scheduler once per recovery policy
on the identical plan.  The sweep reports total realized energy and the
deadline-miss rate per policy against the fail-stop (``"none"``)
baseline, and exposes the canonical recovery-event traces the CI job
diffs for fork/spawn bit-identity.

Cells run through :func:`repro.experiments.parallel.run_cells`, so the
sweep parallelises like every other experiment: the evaluator below is a
picklable module-level dataclass, each cell regenerates its scenario from
``(profile, seed)`` inside the worker, and the fault plan is derived from
the cell context's seed — fork- and spawn-started workers therefore see
bit-identical inputs and return bit-identical traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.context import RunContext, current_context
from repro.experiments.parallel import EvaluatorSpec, SweepCell, run_cells
from repro.experiments.series import SeriesData
from repro.faults.model import FaultConfig, generate_fault_plan
from repro.faults.recovery import RECOVERY_POLICIES
from repro.online.arrivals import TimedTask
from repro.online.scheduler import OnlineOptions, simulate_online
from repro.workload.generator import Scenario
from repro.workload.profiles import PAPER_DEFAULTS, WorkloadProfile

__all__ = [
    "DEFAULT_INTENSITIES",
    "RESILIENCE_PROFILE",
    "ResilienceEvaluator",
    "ResilienceResult",
    "ResilienceStudy",
    "resilience_sweep",
    "spread_arrivals",
]

#: Failure intensities (outage arrivals per second) the study sweeps.
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)

#: A deliberately small instance: the sweep replays every epoch at least
#: twice per policy (healthy + faulty), so the paper-sized 200-task
#: profile would dominate runtime without changing the comparison.
RESILIENCE_PROFILE: WorkloadProfile = PAPER_DEFAULTS.with_updates(
    num_stations=3, num_devices=12, num_tasks=40, num_data_items=60
)


def spread_arrivals(
    scenario: Scenario, horizon_s: float
) -> Tuple[TimedTask, ...]:
    """The scenario's tasks at deterministic offsets over the horizon.

    Task *k* of *n* arrives at ``k * horizon / n`` — evenly spread so
    every epoch has in-flight work for outage windows to hit, and a pure
    function of the scenario, so fork/spawn workers agree bit-for-bit.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    n = len(scenario.tasks)
    return tuple(
        TimedTask(arrival_s=index * horizon_s / n, task=task)
        for index, task in enumerate(scenario.tasks)
    )


@dataclass(frozen=True)
class ResilienceResult:
    """One (intensity, policy, seed) run of the online scheduler.

    :param policy: the recovery policy in force.
    :param intensity_per_s: the fault plan's outage arrival rate λ.
    :param seed: scenario/fault seed of the cell.
    :param planned_energy_j: what the planner believed it was spending.
    :param realized_energy_j: planned energy plus every fault extra
        (waste, redo, recovery overhead).
    :param miss_rate: arrival-weighted realized unsatisfied fraction.
    :param faults: recovery events emitted (one per affected task).
    :param recovered: threatened tasks the policy saved.
    :param dropped: tasks lost to departures/data loss.
    :param retries: retry recoveries attempted.
    :param degradations: degrade-to-cloud recoveries attempted.
    :param reassignments: LP reassignment recoveries attempted.
    :param trace: the canonical recovery-event trace
        (:meth:`~repro.online.scheduler.OnlineReport.event_trace`).
    """

    policy: str
    intensity_per_s: float
    seed: int
    planned_energy_j: float
    realized_energy_j: float
    miss_rate: float
    faults: int
    recovered: int
    dropped: int
    retries: int
    degradations: int
    reassignments: int
    trace: Tuple[tuple, ...]

    def trace_json(self) -> str:
        """The trace as canonical JSON (what the CI job diffs)."""
        return json.dumps(
            {
                "policy": self.policy,
                "intensity_per_s": self.intensity_per_s,
                "seed": self.seed,
                "events": [list(event) for event in self.trace],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def trace_digest(self) -> str:
        """SHA-256 of the canonical trace JSON."""
        return hashlib.sha256(self.trace_json().encode()).hexdigest()


@dataclass(frozen=True)
class ResilienceEvaluator:
    """Picklable evaluator: one recovery policy under one fault config.

    Instances are module-level dataclasses with only frozen, picklable
    state, so cells carrying them cross process boundaries under both
    fork and spawn.  The fault plan is regenerated inside the worker from
    the scenario and the ambient context's seed — never shipped.

    :param recovery: recovery policy key (:data:`RECOVERY_POLICIES`).
    :param fault_config: the fault process, already scaled to the cell's
        intensity via :meth:`~repro.faults.FaultConfig.with_intensity`.
    :param policy: planning policy for every epoch (default LP-HTA).
    :param epoch_length_s: online scheduler cadence.
    """

    recovery: str
    fault_config: FaultConfig
    policy: str = "lp-hta"
    epoch_length_s: float = 60.0

    def __post_init__(self) -> None:
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, "
                f"got {self.recovery!r}"
            )

    def __call__(self, scenario: Scenario) -> ResilienceResult:
        context = current_context()
        plan = generate_fault_plan(
            scenario.system, self.fault_config, seed=context.seed
        )
        arrivals = spread_arrivals(scenario, self.fault_config.horizon_s)
        report = simulate_online(
            scenario.system,
            arrivals,
            OnlineOptions(
                epoch_length_s=self.epoch_length_s,
                policy=self.policy,
                recovery=self.recovery,
            ),
            context=context,
            fault_plan=plan,
        )
        return ResilienceResult(
            policy=self.recovery,
            intensity_per_s=self.fault_config.intensity_per_s,
            seed=context.seed,
            planned_energy_j=report.total_planned_energy_j,
            realized_energy_j=report.total_realized_energy_j,
            miss_rate=report.mean_realized_unsatisfied,
            faults=len(report.events),
            recovered=report.total_recovered,
            dropped=report.total_dropped,
            retries=sum(e.retries for e in report.epochs),
            degradations=sum(e.degradations for e in report.epochs),
            reassignments=sum(e.reassignments for e in report.epochs),
            trace=report.event_trace(),
        )


@dataclass(frozen=True)
class ResilienceStudy:
    """Results of one resilience sweep, indexed three ways.

    :param intensities: swept λ values, ascending.
    :param policies: recovery policies compared.
    :param seeds: scenario/fault seeds averaged over.
    :param results: ``(intensity, policy, seed)`` → cell result.
    """

    intensities: Tuple[float, ...]
    policies: Tuple[str, ...]
    seeds: Tuple[int, ...]
    results: Mapping[Tuple[float, str, int], ResilienceResult] = field(
        default_factory=dict
    )

    def _mean(self, policy: str, metric: str) -> Tuple[float, ...]:
        out: List[float] = []
        for intensity in self.intensities:
            values = [
                getattr(self.results[(intensity, policy, seed)], metric)
                for seed in self.seeds
                if (intensity, policy, seed) in self.results
            ]
            # Quarantined cells leave no entry; NaN when every seed is gone.
            out.append(sum(values) / len(values) if values else float("nan"))
        return tuple(out)

    def energy_series(self) -> SeriesData:
        """Seed-averaged realized energy per policy over λ."""
        return SeriesData(
            figure_id="resilience-energy",
            title="Realized energy vs failure intensity",
            x_label="failure intensity (1/s)",
            y_label="total realized energy (J)",
            x_values=self.intensities,
            series={
                policy: self._mean(policy, "realized_energy_j")
                for policy in self.policies
            },
        )

    def miss_series(self) -> SeriesData:
        """Seed-averaged deadline-miss rate per policy over λ."""
        return SeriesData(
            figure_id="resilience-miss",
            title="Deadline-miss rate vs failure intensity",
            x_label="failure intensity (1/s)",
            y_label="realized miss rate",
            x_values=self.intensities,
            series={
                policy: self._mean(policy, "miss_rate")
                for policy in self.policies
            },
        )

    def trace_json(self) -> str:
        """Every cell's canonical trace as one sorted JSON document."""
        entries: Dict[str, str] = {}
        for (intensity, policy, seed), result in sorted(self.results.items()):
            key = f"lambda={intensity:g}/policy={policy}/seed={seed}"
            entries[key] = result.trace_json()
        return json.dumps(entries, sort_keys=True, indent=1)


def resilience_sweep(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    policies: Sequence[str] = RECOVERY_POLICIES,
    seeds: Sequence[int] = (0,),
    profile: WorkloadProfile = RESILIENCE_PROFILE,
    fault_config: Optional[FaultConfig] = None,
    policy: str = "lp-hta",
    epoch_length_s: float = 60.0,
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
    context: Optional[RunContext] = None,
) -> ResilienceStudy:
    """Sweep failure intensity × recovery policy × seed.

    One :class:`~repro.experiments.parallel.SweepCell` per (intensity,
    seed) — all policies of a cell share the regenerated scenario and the
    identical fault plan, which is what makes the per-intensity policy
    comparison paired rather than noisy.

    :param intensities: outage arrival rates λ to sweep (must each be
        admissible under the fault config's ``max_intensity_per_s``).
    :param policies: recovery policies to compare.
    :param seeds: scenario/fault seeds to average over.
    :param profile: workload profile each cell regenerates.
    :param fault_config: base fault process; default
        :class:`~repro.faults.FaultConfig` with ``max_intensity_per_s``
        raised to cover the largest requested λ.
    :param policy: planning policy for every epoch.
    :param epoch_length_s: online scheduler cadence.
    :param jobs: worker processes (1 = in-process).
    :param start_method: multiprocessing start method for ``jobs > 1``.
    :param context: base run configuration; each cell runs under
        ``context.replace(seed=seed)``.
    """
    intensities = tuple(intensities)
    policies = tuple(policies)
    seeds = tuple(seeds)
    if not intensities or not policies or not seeds:
        raise ValueError("intensities, policies and seeds must be non-empty")
    for name in policies:
        if name not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {name!r}; "
                f"choose from {RECOVERY_POLICIES}"
            )
    base = context if context is not None else current_context()
    if fault_config is None:
        # Gentle departure/crash ratios keep link outages the dominant
        # fault mode — the regime where the recovery policies differ;
        # heavy departures just shrink the workload for every policy
        # alike (dropped tasks cost nothing and count as misses).
        fault_config = FaultConfig(
            mean_outage_s=6.0, departure_ratio=0.004, crash_ratio=0.002
        )
    if max(intensities) > fault_config.max_intensity_per_s:
        fault_config = fault_config.with_max_intensity(max(intensities))

    cells: List[SweepCell] = []
    keys: List[Tuple[float, int]] = []
    for intensity in intensities:
        scaled = fault_config.with_intensity(intensity)
        evaluators = tuple(
            EvaluatorSpec(
                name=recovery,
                kind="callable",
                target=ResilienceEvaluator(
                    recovery=recovery,
                    fault_config=scaled,
                    policy=policy,
                    epoch_length_s=epoch_length_s,
                ),
            )
            for recovery in policies
        )
        for seed in seeds:
            cells.append(
                SweepCell(
                    index=len(cells),
                    profile=profile,
                    seed=seed,
                    evaluators=evaluators,
                    context=base.replace(seed=seed),
                )
            )
            keys.append((intensity, seed))

    outcomes = run_cells(cells, jobs=jobs, start_method=start_method)
    results: Dict[Tuple[float, str, int], ResilienceResult] = {}
    for (intensity, seed), cell_results in zip(keys, outcomes):
        if cell_results is None:  # quarantined cell: drop its point
            continue
        for recovery, result in zip(policies, cell_results):
            results[(intensity, recovery, seed)] = result
    return ResilienceStudy(
        intensities=intensities,
        policies=policies,
        seeds=seeds,
        results=results,
    )
