"""Process-parallel execution of sweep cells.

The figure reproducers and :func:`repro.experiments.grid.run_grid` both
reduce to the same shape of work: a list of (profile × seed) cells, each
evaluated by a fixed set of algorithms.  This module fans those cells out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Three properties make the parallel path safe to substitute for the
sequential one:

- **Picklable work descriptors.**  A :class:`SweepCell` carries only the
  (frozen) workload profile, the seed, :class:`EvaluatorSpec` values and
  an explicit :class:`~repro.context.RunContext` — never a live scenario
  or a closure — so cells cross process boundaries cheaply.  Each worker
  obtains its scenario from ``(profile, seed)`` *under the cell's
  context*, which is why spawn-started workers behave identically to
  fork-started ones: the run configuration travels inside the pickle
  instead of relying on inherited process globals.  A per-process memo
  keyed by ``(profile, seed, context)`` lets cells that share a scenario
  reuse it (and its cost tables) instead of regenerating; reference-mode
  cells always regenerate so baselines stay honest.
- **Deterministic per-cell seeding.**  Scenario generation is a pure
  function of ``(profile, seed)``, and every evaluator is deterministic,
  so a cell's results do not depend on which process runs it or in what
  order.  Results are therefore bit-identical to the sequential path.
- **Order-preserving collection.**  ``Executor.map`` yields results in
  submission order, so downstream seed-averaging sees the exact same
  float sequence either way.

``jobs=1`` runs the cells in-process with no executor, no pickling
requirement and no subprocess overhead; it is the default everywhere.

When LP batching is on (:attr:`~repro.context.RunContext.lp_batch`, the
default), cells sharing a profile, evaluator set and context — the seeds
of one sweep column — are grouped and dispatched as one unit: each
evaluator then pools the whole column's Step-1 LP work into a single
block-diagonal mega-solve (:func:`repro.core.hta.lp_hta_batch`).  Column
composition is a pure function of the cell list — never of ``jobs`` or
pool scheduling — so results, spans and telemetry stay identical
in-process, under fork and under spawn.

Worker telemetry (solve counts, wall time, cache and scenario-memo hits)
is returned next to each cell's results and merged into the submitting
context's sink, so ``--stats`` summaries cover parallel runs too.

Pools persist between :func:`run_cells` calls (keyed by worker count and
start method, torn down at interpreter exit): repeated sweeps skip pool
start-up and keep each worker's scenario memo warm.  Long-lived callers
(the CLI) wrap their dispatch in :func:`pool_scope`, which reaps the
cached pools deterministically on the way out — including the
``KeyboardInterrupt`` path — instead of leaning on the :mod:`atexit`
hook alone.

Dispatch itself runs under the crash-safe runtime (:mod:`repro.runtime`):
every unit of work is supervised (per-cell timeouts, bounded retries
with backoff, poison-cell quarantine — a cell that keeps failing is
recorded and skipped, its result slot left ``None``), worker failures
travel back as :class:`~repro.runtime.errors.RemoteCellError` with the
remote traceback attached, and when the active context carries a
``journal_path`` every completed cell is checkpointed so ``--resume``
replays finished work instead of recomputing it.
"""

from __future__ import annotations

import atexit
import os
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace as dataclass_replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import multiprocessing

from repro import registry
from repro.context import RunContext, Telemetry, current_context, use_context
from repro.experiments.runner import (
    HOLISTIC_ALGORITHMS,
    AlgorithmResult,
    evaluate_dta,
    evaluate_holistic,
)
from repro.runtime import (
    PoolHandle,
    RemoteCellError,
    RetryPolicy,
    Supervisor,
    context_fingerprint,
    fingerprint,
    journal_for,
)
from repro.system.sharding import ShardSpec
from repro.workload.generator import Scenario, generate_scenario
from repro.workload.profiles import WorkloadProfile
from repro.workload.streaming import generate_tile

__all__ = [
    "EvaluatorSpec",
    "SweepCell",
    "TileCell",
    "TileResult",
    "as_spec",
    "dta_spec",
    "holistic_spec",
    "pool_scope",
    "resolve_jobs",
    "run_cells",
    "run_tiles",
    "shutdown_pools",
]


@dataclass(frozen=True)
class EvaluatorSpec:
    """A picklable description of one evaluator.

    :param name: display name used as the series/evaluator key.
    :param kind: ``"holistic"`` (``target`` is an algorithm name),
        ``"dta"`` (``target`` is a DTA objective) or ``"callable"``
        (``target`` is any ``Scenario -> AlgorithmResult`` callable; it
        must itself pickle for ``jobs > 1``).
    :param target: the dispatch payload for ``kind``.
    :param context: explicit run configuration for this evaluator; when
        ``None`` (the default) the ambient context applies — in workers
        that is the enclosing :class:`SweepCell`'s context.
    """

    name: str
    kind: str
    target: Any
    context: Optional[RunContext] = None

    def __call__(self, scenario: Scenario) -> AlgorithmResult:
        context = self.context if self.context is not None else current_context()
        if self.kind == "holistic":
            return evaluate_holistic(scenario, self.target, context)
        if self.kind == "dta":
            return evaluate_dta(scenario, self.target, context)
        if self.kind == "callable":
            with use_context(context):
                return self.target(scenario)
        raise ValueError(f"unknown evaluator kind {self.kind!r}")

    def run_batch(self, scenarios: Sequence[Scenario]) -> List[AlgorithmResult]:
        """Evaluate many scenarios at once, pooling LP work where possible.

        Registry algorithms with a batch form (LP-HTA, both DTA entries)
        clear all scenarios' Step-1 relaxations in one block-diagonal
        mega-solve (:func:`repro.registry.run_batch`); everything else —
        and every run with batching disabled — degenerates to the
        per-scenario loop.  Results are identical to
        ``[self(s) for s in scenarios]`` either way.
        """
        context = self.context if self.context is not None else current_context()
        if self.kind == "holistic":
            # Same membership check evaluate_holistic applies per call.
            if registry.get(self.target).name not in HOLISTIC_ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {self.target!r}; "
                    f"choose from {sorted(HOLISTIC_ALGORITHMS)}"
                )
            return registry.run_batch(self.target, scenarios, context)
        if self.kind == "dta":
            if self.target not in registry.DTA_OBJECTIVES.values():
                raise ValueError(
                    f"unknown DTA objective {self.target!r}; "
                    f"choose from {sorted(registry.DTA_OBJECTIVES.values())}"
                )
            return registry.run_batch(self.target, scenarios, context)
        return [self(scenario) for scenario in scenarios]


def holistic_spec(
    name: str, context: Optional[RunContext] = None
) -> EvaluatorSpec:
    """Spec for a holistic algorithm by registry name (e.g. ``"LP-HTA"``)."""
    return EvaluatorSpec(name=name, kind="holistic", target=name, context=context)


def dta_spec(objective: str, context: Optional[RunContext] = None) -> EvaluatorSpec:
    """Spec for a DTA run by objective (``"workload"`` or ``"number"``)."""
    name = registry.get(objective).name
    return EvaluatorSpec(name=name, kind="dta", target=objective, context=context)


def as_spec(name: str, evaluator: Callable[[Scenario], AlgorithmResult]) -> EvaluatorSpec:
    """Wrap an arbitrary evaluator callable, passing specs through as-is."""
    if isinstance(evaluator, EvaluatorSpec):
        return evaluator
    return EvaluatorSpec(name=name, kind="callable", target=evaluator)


@dataclass(frozen=True)
class SweepCell:
    """One unit of parallel work: a scenario plus its evaluators.

    :param index: position in the submitted cell list (results come back
        in this order regardless of scheduling).
    :param profile: workload profile to generate the scenario from.
    :param seed: scenario seed.
    :param evaluators: evaluators to run, in order.
    :param context: run configuration the cell executes under.  ``None``
        means "whatever is active where the cell runs"; :func:`run_cells`
        stamps its caller's context onto unbound cells before dispatch so
        worker processes — fork *or* spawn — see the submitter's exact
        configuration.
    """

    index: int
    profile: WorkloadProfile
    seed: int
    evaluators: Tuple[EvaluatorSpec, ...]
    context: Optional[RunContext] = None


#: Per-process scenario memo: cells sharing (profile, seed, context) reuse
#: one generated scenario (and, through it, its memoised cost tables).
#: Scenario generation is a pure function of the key, so reuse is exact.
#: Bounded LRU so long sweeps over many profiles don't accumulate scenarios.
_SCENARIO_MEMO: "OrderedDict[Tuple[WorkloadProfile, int, RunContext], Scenario]" = (
    OrderedDict()
)
_SCENARIO_MEMO_CAPACITY = 64


def _scenario_for(
    profile: WorkloadProfile, seed: int, context: RunContext
) -> Scenario:
    """The cell's scenario, served from the per-process memo when possible.

    Reference mode always regenerates: the seed-era pipeline had no memo,
    and benchmark baselines must not borrow speed from one.  Traced runs
    also bypass it — which cells hit the memo depends on pool scheduling,
    and trace content must be deterministic across start methods.  Every
    lookup is counted in the context's telemetry (``--stats`` reports the
    rate).
    """
    if context.reference or context.trace:
        return generate_scenario(profile, seed=seed)
    key = (profile, seed, context)
    scenario = _SCENARIO_MEMO.get(key)
    context.telemetry.record_scenario_memo(scenario is not None)
    if scenario is not None:
        _SCENARIO_MEMO.move_to_end(key)
        return scenario
    scenario = generate_scenario(profile, seed=seed)
    _SCENARIO_MEMO[key] = scenario
    while len(_SCENARIO_MEMO) > _SCENARIO_MEMO_CAPACITY:
        _SCENARIO_MEMO.popitem(last=False)
    return scenario


def _evaluate_cell(cell: SweepCell) -> Tuple[AlgorithmResult, ...]:
    """Worker entry point: obtain the scenario, run every evaluator.

    The cell's context (when bound) is activated around both scenario
    generation and evaluation, so reference/optimised routing and LP
    settings are taken from the cell, never from process globals.
    """
    context = cell.context if cell.context is not None else current_context()
    with use_context(context):
        scenario = _scenario_for(cell.profile, cell.seed, context)
        return tuple(spec(scenario) for spec in cell.evaluators)


def _evaluate_cell_with_telemetry(
    cell: SweepCell,
) -> Tuple[Tuple[AlgorithmResult, ...], Telemetry]:
    """Pool entry point: cell results plus the telemetry they generated.

    Unpickled contexts start with zeroed telemetry (see
    :meth:`~repro.context.RunContext.__getstate__`), so the returned sink
    holds exactly this cell's deltas for the parent to merge.
    """
    results = _evaluate_cell(cell)
    context = cell.context if cell.context is not None else current_context()
    return results, context.telemetry


def _group_columns(cells: Sequence[SweepCell]) -> List[List[int]]:
    """Deterministic sweep columns: cell indices grouped for batching.

    Cells sharing (profile, evaluators, context) — the seeds of one sweep
    column — form one group, in first-appearance order; cells whose
    context rules batching out (``lp_batch`` off, reference mode) stay
    singleton groups, preserving per-cell pool granularity.  Composition
    is a pure function of the cell list — never of ``jobs``, the start
    method or pool scheduling — so the batched mega-solves (and therefore
    telemetry, spans and results) are identical in-process, under fork and
    under spawn.

    The context is compared by *identity*, not equality: a column's work
    runs under (and reports into) one context, which is only correct when
    its cells genuinely share the object — as cells stamped by
    :func:`run_cells` do.  Equal-but-distinct contexts keep their own
    telemetry sinks and stay unbatched.
    """
    groups: "OrderedDict[Any, List[int]]" = OrderedDict()
    for index, cell in enumerate(cells):
        context = cell.context
        if context is not None and context.lp_batch and not context.reference:
            key: Any = ("column", cell.profile, cell.evaluators, id(context))
        else:
            key = ("cell", index)
        try:
            groups.setdefault(key, []).append(index)
        except TypeError:  # unhashable evaluator target: no batching
            groups[("cell", index)] = [index]
    return list(groups.values())


def _evaluate_column(cells: Sequence[SweepCell]) -> List[Tuple[AlgorithmResult, ...]]:
    """Evaluate one sweep column, batching each evaluator across its cells.

    Every cell's scenario is obtained first (same memo and counting as the
    per-cell path), then each evaluator runs once over the whole column —
    which is where LP-HTA and DTA pool their Step-1 relaxations into one
    mega-solve.  Returns per-cell result tuples in cell order, identical
    to ``[_evaluate_cell(c) for c in cells]``.
    """
    if len(cells) == 1:
        return [_evaluate_cell(cells[0])]
    context = cells[0].context if cells[0].context is not None else current_context()
    with use_context(context):
        scenarios = [
            _scenario_for(cell.profile, cell.seed, context) for cell in cells
        ]
        per_cell: List[List[AlgorithmResult]] = [[] for _ in cells]
        for spec in cells[0].evaluators:
            for index, result in enumerate(spec.run_batch(scenarios)):
                per_cell[index].append(result)
        return [tuple(results) for results in per_cell]


def _column_label(cells: Sequence[SweepCell]) -> str:
    """Where a column lives, for remote-error messages and quarantine."""
    if len(cells) == 1:
        cell = cells[0]
        return f"cell {cell.index} (seed {cell.seed})"
    indices = [cell.index for cell in cells]
    seeds = sorted({cell.seed for cell in cells})
    return f"cells {indices} (seeds {seeds})"


def _evaluate_column_with_telemetry(
    cells: Sequence[SweepCell],
) -> Tuple[List[Tuple[AlgorithmResult, ...]], Telemetry]:
    """Pool entry point for a whole column (cells share one context pickle).

    Evaluation failures are re-raised as
    :class:`~repro.runtime.errors.RemoteCellError` so the formatted remote
    stack and the cell coordinates survive the pickle boundary back to the
    supervisor.
    """
    try:
        results = _evaluate_column(cells)
    except RemoteCellError:
        raise
    except Exception as exc:
        raise RemoteCellError.wrap(exc, _column_label(cells)) from None
    context = cells[0].context if cells[0].context is not None else current_context()
    return results, context.telemetry


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/``0`` mean all CPUs.

    :raises ValueError: for negative values.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _bind_context(cell: SweepCell, context: RunContext) -> SweepCell:
    """Stamp ``context`` onto a cell that does not carry one already."""
    if cell.context is not None:
        return cell
    return dataclass_replace(cell, context=context)


#: Live pools keyed by (worker count, start method), reused across
#: :func:`run_cells` calls.  Repeated sweeps (figure batches, benchmark
#: repeats) would otherwise pay pool start-up per call and lose every
#: worker's scenario memo each time.
_POOLS: Dict[Tuple[int, str], ProcessPoolExecutor] = {}


def _shutdown_pools() -> None:
    """Tear down every cached pool (registered via :mod:`atexit`)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


def shutdown_pools() -> None:
    """Tear down every cached worker pool now.

    Safe to call at any time; the next :func:`run_cells` simply starts
    fresh pools.  Normally invoked through :func:`pool_scope`.
    """
    _shutdown_pools()


@contextmanager
def pool_scope() -> Iterator[None]:
    """Scope the cached worker pools to a ``with`` block.

    Pools still persist *between* sweeps inside the block (warm workers,
    warm scenario memos); on exit — normal return, exception or
    ``KeyboardInterrupt`` — every cached pool is shut down with its
    futures cancelled, so workers are reaped deterministically instead of
    at interpreter exit.  The CLI wraps each command dispatch in this.
    """
    try:
        yield
    finally:
        _shutdown_pools()


def _pool_for(workers: int, mp_context: "multiprocessing.context.BaseContext") -> ProcessPoolExecutor:
    """A cached executor for (workers, start method), created on demand."""
    key = (workers, mp_context.get_start_method())
    pool = _POOLS.get(key)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)
        _POOLS[key] = pool
    return pool


def _discard_pool(workers: int, mp_context: "multiprocessing.context.BaseContext") -> None:
    """Drop (and shut down) a cached pool after a failure."""
    key = (workers, mp_context.get_start_method())
    pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _cell_key(cell: SweepCell) -> Optional[str]:
    """The cell's journal key, or ``None`` when it cannot be fingerprinted.

    Callable evaluators have no stable identity the journal could trust
    across runs, so cells carrying one always run live.  Everything else
    in the key — profile, seed, evaluator descriptors, the
    result-determining context fields — is a frozen value with a
    deterministic ``repr``.
    """
    if any(spec.kind == "callable" for spec in cell.evaluators):
        return None
    specs = tuple(
        (
            spec.name,
            spec.kind,
            spec.target,
            None if spec.context is None else context_fingerprint(spec.context),
        )
        for spec in cell.evaluators
    )
    return fingerprint(
        "sweep-cell",
        cell.profile,
        cell.seed,
        specs,
        context_fingerprint(cell.context),
    )


def _mp_context(
    start_method: Optional[str],
) -> "multiprocessing.context.BaseContext":
    """The multiprocessing context for a requested start method.

    ``None`` prefers ``fork`` (cheap start-up, no re-import of
    numpy/scipy) and falls back to the platform default where fork is
    unavailable.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> List[Optional[Tuple[AlgorithmResult, ...]]]:
    """Evaluate every cell, in-process or across a worker pool, supervised.

    Execution runs under the crash-safe runtime: failed cells are retried
    per the active context's :class:`~repro.runtime.supervisor.RetryPolicy`
    and quarantined (result slot ``None``) when they keep failing; when
    the context names a ``journal_path`` every completed cell is
    checkpointed, and with ``resume`` set journalled cells are replayed
    instead of recomputed — bit-identically, because every cell is a pure
    function of its fingerprinted inputs.

    :param cells: the work descriptors.
    :param jobs: worker processes; ``1`` (default) runs in-process,
        ``None`` or ``0`` use every CPU.
    :param start_method: multiprocessing start method for ``jobs > 1``
        (``"fork"``, ``"spawn"``, ...).  ``None`` prefers ``fork`` where
        available (cheap start-up, no re-import of numpy/scipy) and falls
        back to the platform default.  Results are identical either way
        because cells carry their :class:`~repro.context.RunContext`
        explicitly.
    :returns: per-cell evaluator results, in ``cells`` order; ``None``
        marks a quarantined cell.
    :raises ValueError: when ``jobs > 1`` and a cell does not pickle
        (e.g. a lambda evaluator was wrapped via :func:`as_spec`).
    """
    jobs = resolve_jobs(jobs)
    ambient = current_context()
    bound = [_bind_context(cell, ambient) for cell in cells]
    # Column composition is fixed here, before any dispatch decision, so
    # batched mega-solves are identical in-process and across any pool.
    columns = _group_columns(bound)

    results: List[Optional[Tuple[AlgorithmResult, ...]]] = [None] * len(bound)
    journal = journal_for(ambient.journal_path, ambient.resume)
    keys: List[Optional[str]] = (
        [_cell_key(cell) for cell in bound]
        if journal is not None
        else [None] * len(bound)
    )
    replayed: set = set()
    if journal is not None and ambient.resume:
        for index, key in enumerate(keys):
            if key is None:
                continue
            value = journal.get(key)
            if value is not None:
                results[index] = value
                replayed.add(index)
        if replayed:
            ambient.telemetry.record_journal_replay(len(replayed))

    groups = [
        tuple(i for i in column if i not in replayed) for column in columns
    ]
    groups = [group for group in groups if group]
    if not groups:
        return results

    def describe(ids: Tuple[int, ...]) -> str:
        return _column_label([bound[i] for i in ids])

    def checkpoint(index: int, value: Tuple[AlgorithmResult, ...]) -> None:
        # Fires per completed cell so a crash mid-sweep keeps everything
        # finished so far, not just what a completed run would have saved.
        if journal is not None and keys[index] is not None:
            journal.record(keys[index], value)

    supervisor = Supervisor(
        RetryPolicy.from_context(ambient), ambient, describe=describe,
        on_result=checkpoint,
    )

    def finish(
        result_map: Dict[int, Tuple[AlgorithmResult, ...]],
    ) -> List[Optional[Tuple[AlgorithmResult, ...]]]:
        for index, value in result_map.items():
            results[index] = value
        return results

    def run_local() -> List[Optional[Tuple[AlgorithmResult, ...]]]:
        result_map, _ = supervisor.run_local(
            groups, lambda ids: _evaluate_column([bound[i] for i in ids])
        )
        return finish(result_map)

    remaining = sum(len(group) for group in groups)
    if jobs == 1 or remaining <= 1:
        return run_local()

    # Validated for every jobs > 1 request — even ones that end up running
    # in-process below — so picklability problems surface on every machine,
    # not just multi-core ones.
    try:
        pickle.dumps(tuple(bound))
    except Exception as exc:  # pickle raises a zoo of types
        raise ValueError(
            "cells are not picklable, so they cannot be shipped to worker "
            "processes; use holistic_spec()/dta_spec() or a module-level "
            f"callable instead of a closure (jobs={jobs}): {exc}"
        ) from exc

    # Never run more workers than work items, and never oversubscribe the
    # machine: extra processes on a smaller box only add scheduler churn.
    # A one-worker pool would serialise anyway, so skip the pool entirely.
    workers = min(jobs, len(groups), os.cpu_count() or jobs)
    if workers <= 1:
        return run_local()

    mp_context = _mp_context(start_method)

    # The pool is cached and reused by later run_cells calls: repeated
    # sweeps skip process start-up, and each worker keeps its scenario
    # memo warm across calls.  Crash/timeout handling — pool discarding,
    # retries, quarantine — lives in the supervisor.
    # Each column ships as one pickle, so its cells' shared context stays
    # one object in the worker and the column's telemetry lands in one
    # sink.  Singleton columns reproduce the historical per-cell dispatch.
    pool = PoolHandle(
        acquire=lambda: _pool_for(workers, mp_context),
        discard=lambda: _discard_pool(workers, mp_context),
    )
    result_map, _ = supervisor.run_pooled(
        groups,
        _evaluate_column_with_telemetry,
        lambda ids: tuple(bound[i] for i in ids),
        pool,
        # Fold each worker's solve/cache counters back into the caller's
        # sink, so --stats covers parallel runs.
        ambient.telemetry.merge,
    )
    return finish(result_map)


@dataclass(frozen=True)
class TileCell:
    """One shard's unit of streamed work: generate a tile, solve it.

    The city-scale counterpart of :class:`SweepCell` — the dispatch unit
    is a *shard*, not a (profile × seed) cell.  A cell carries only the
    (frozen) global profile, the shard spec, the shard id, the stream seed
    and an explicit context, so it pickles cheaply and the worker rebuilds
    its tile from scratch: no global scenario, no global cost tensor, no
    inherited process state.  Fork- and spawn-started workers therefore
    produce bit-identical results.

    :param profile: the global workload profile being streamed.
    :param spec: contiguous station partition covering the profile.
    :param shard_id: which shard this cell generates and solves.
    :param seed: the global stream seed.
    :param context: run configuration; ``None`` means "stamped by
        :func:`run_tiles` from its caller's ambient context".
    """

    profile: WorkloadProfile
    spec: ShardSpec
    shard_id: int
    seed: int
    context: Optional[RunContext] = None


@dataclass(frozen=True)
class TileResult:
    """Picklable summary of one solved tile.

    Carries aggregates only — never the tile's system, tasks or cost
    table — so results from 10⁵-device streams stay a few hundred bytes
    per shard.

    :param shard_id: which shard produced this result.
    :param num_devices: devices in the tile.
    :param num_stations: stations in the tile.
    :param num_tasks: tasks in the tile.
    :param cancelled: tasks LP-HTA cancelled in the tile.
    :param total_energy_j: final assignment energy over the tile.
    :param lp_objective_j: the tile's Step-1 relaxation optimum.
    """

    shard_id: int
    num_devices: int
    num_stations: int
    num_tasks: int
    cancelled: int
    total_energy_j: float
    lp_objective_j: float


def _evaluate_tile(cell: TileCell) -> TileResult:
    """Worker entry point: generate the cell's tile and LP-HTA it.

    Tile generation is a pure function of (profile, spec, shard_id, seed)
    and LP-HTA is deterministic, so the result does not depend on which
    process runs the cell or in what order.
    """
    from repro.core.assignment import Subsystem
    from repro.core.hta import lp_hta

    context = cell.context if cell.context is not None else current_context()
    with use_context(context):
        tile = generate_tile(cell.profile, cell.spec, cell.shard_id, cell.seed)
        if tile.num_tasks == 0:
            return TileResult(
                shard_id=cell.shard_id,
                num_devices=tile.num_devices,
                num_stations=tile.system.num_stations,
                num_tasks=0,
                cancelled=0,
                total_energy_j=0.0,
                lp_objective_j=0.0,
            )
        report = lp_hta(tile.system, list(tile.tasks), context=context)
        context.telemetry.shard_solves += 1
        counts = report.assignment.subsystem_counts()
        return TileResult(
            shard_id=cell.shard_id,
            num_devices=tile.num_devices,
            num_stations=tile.system.num_stations,
            num_tasks=tile.num_tasks,
            cancelled=counts.get(Subsystem.CANCELLED, 0),
            total_energy_j=report.assignment.total_energy_j(),
            lp_objective_j=report.lp_objective_j,
        )


def _tile_label(cells: Sequence[TileCell]) -> str:
    """Where a tile unit lives, for remote errors and quarantine records."""
    if len(cells) == 1:
        cell = cells[0]
        return f"tile shard {cell.shard_id} (seed {cell.seed})"
    shards = [cell.shard_id for cell in cells]
    return f"tile shards {shards} (seed {cells[0].seed})"


def _evaluate_tiles_with_telemetry(
    cells: Sequence[TileCell],
) -> Tuple[List[TileResult], Telemetry]:
    """Pool entry point: per-cell tile results plus their telemetry.

    Takes a unit of (usually one) tile cells so the supervised dispatch
    has one uniform worker contract; failures come back as
    :class:`~repro.runtime.errors.RemoteCellError` with the shard id and
    remote stack attached.
    """
    try:
        results = [_evaluate_tile(cell) for cell in cells]
    except RemoteCellError:
        raise
    except Exception as exc:
        raise RemoteCellError.wrap(exc, _tile_label(cells)) from None
    context = cells[0].context if cells[0].context is not None else current_context()
    return results, context.telemetry


def _tile_key(cell: TileCell) -> str:
    """The tile cell's journal key (tiles always fingerprint)."""
    return fingerprint(
        "tile-cell",
        cell.profile,
        cell.spec,
        cell.shard_id,
        cell.seed,
        context_fingerprint(cell.context),
    )


def _bind_tile_context(cell: TileCell, context: RunContext) -> TileCell:
    """Stamp ``context`` onto a tile cell that does not carry one already."""
    if cell.context is not None:
        return cell
    return dataclass_replace(cell, context=context)


def run_tiles(
    cells: Sequence[TileCell],
    jobs: Optional[int] = 1,
    start_method: Optional[str] = None,
) -> List[Optional[TileResult]]:
    """Generate-and-solve every tile, in-process or across a worker pool.

    The streamed analogue of :func:`run_cells`, with shards as the
    dispatch unit: each worker holds at most one tile's system and cost
    rows at a time, so peak memory is bounded by the largest *shard*, not
    the city.  Same pool cache, supervised retry/quarantine, journalled
    checkpoints, order preservation and telemetry merge-back as the cell
    path.

    :param cells: one descriptor per shard to stream.
    :param jobs: worker processes; ``1`` (default) runs in-process,
        ``None`` or ``0`` use every CPU.
    :param start_method: multiprocessing start method for ``jobs > 1``;
        ``None`` prefers ``fork``.  Results are bit-identical either way
        because cells carry their context and tiles are pure functions of
        their cell.
    :returns: per-cell tile results, in ``cells`` order; ``None`` marks a
        quarantined tile.
    """
    jobs = resolve_jobs(jobs)
    ambient = current_context()
    bound = [_bind_tile_context(cell, ambient) for cell in cells]

    results: List[Optional[TileResult]] = [None] * len(bound)
    journal = journal_for(ambient.journal_path, ambient.resume)
    keys: List[Optional[str]] = (
        [_tile_key(cell) for cell in bound]
        if journal is not None
        else [None] * len(bound)
    )
    replayed: set = set()
    if journal is not None and ambient.resume:
        for index, key in enumerate(keys):
            value = journal.get(key) if key is not None else None
            if value is not None:
                results[index] = value
                replayed.add(index)
        if replayed:
            ambient.telemetry.record_journal_replay(len(replayed))

    # Tiles are already the dispatch granularity: one singleton unit each.
    groups = [(i,) for i in range(len(bound)) if i not in replayed]
    if not groups:
        return results

    def describe(ids: Tuple[int, ...]) -> str:
        return _tile_label([bound[i] for i in ids])

    def checkpoint(index: int, value: TileResult) -> None:
        # Per-tile checkpoint, same rationale as run_cells: a crash keeps
        # every tile completed so far.
        if journal is not None and keys[index] is not None:
            journal.record(keys[index], value)

    supervisor = Supervisor(
        RetryPolicy.from_context(ambient), ambient, describe=describe,
        on_result=checkpoint,
    )

    def finish(result_map: Dict[int, TileResult]) -> List[Optional[TileResult]]:
        for index, value in result_map.items():
            results[index] = value
        return results

    def run_local() -> List[Optional[TileResult]]:
        result_map, _ = supervisor.run_local(
            groups, lambda ids: [_evaluate_tile(bound[i]) for i in ids]
        )
        return finish(result_map)

    # In-process: telemetry accrues directly in each cell's context (for
    # stamped cells, the ambient one), exactly like run_cells.
    if jobs == 1 or len(groups) <= 1:
        return run_local()

    try:
        pickle.dumps(tuple(bound))
    except Exception as exc:  # pickle raises a zoo of types
        raise ValueError(
            f"tile cells are not picklable (jobs={jobs}): {exc}"
        ) from exc

    workers = min(jobs, len(groups), os.cpu_count() or jobs)
    if workers <= 1:
        return run_local()

    mp_context = _mp_context(start_method)
    pool = PoolHandle(
        acquire=lambda: _pool_for(workers, mp_context),
        discard=lambda: _discard_pool(workers, mp_context),
    )
    result_map, _ = supervisor.run_pooled(
        groups,
        _evaluate_tiles_with_telemetry,
        lambda ids: tuple(bound[i] for i in ids),
        pool,
        ambient.telemetry.merge,
    )
    return finish(result_map)
