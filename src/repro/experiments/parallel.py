"""Process-parallel execution of sweep cells.

The figure reproducers and :func:`repro.experiments.grid.run_grid` both
reduce to the same shape of work: a list of (profile × seed) cells, each
evaluated by a fixed set of algorithms.  This module fans those cells out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Three properties make the parallel path safe to substitute for the
sequential one:

- **Picklable work descriptors.**  A :class:`SweepCell` carries only the
  (frozen) workload profile, the seed and :class:`EvaluatorSpec` values —
  never a live scenario or a closure — so cells cross process boundaries
  cheaply.  Each worker regenerates its scenario from ``(profile, seed)``.
- **Deterministic per-cell seeding.**  Scenario generation is a pure
  function of ``(profile, seed)``, and every evaluator is deterministic,
  so a cell's results do not depend on which process runs it or in what
  order.  Results are therefore bit-identical to the sequential path.
- **Order-preserving collection.**  ``Executor.map`` yields results in
  submission order, so downstream seed-averaging sees the exact same
  float sequence either way.

``jobs=1`` runs the cells in-process with no executor, no pickling
requirement and no subprocess overhead; it is the default everywhere.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.experiments.runner import (
    AlgorithmResult,
    evaluate_dta,
    evaluate_holistic,
)
from repro.workload.generator import Scenario, generate_scenario
from repro.workload.profiles import WorkloadProfile

__all__ = [
    "EvaluatorSpec",
    "SweepCell",
    "as_spec",
    "dta_spec",
    "holistic_spec",
    "resolve_jobs",
    "run_cells",
]


@dataclass(frozen=True)
class EvaluatorSpec:
    """A picklable description of one evaluator.

    :param name: display name used as the series/evaluator key.
    :param kind: ``"holistic"`` (``target`` is an algorithm name),
        ``"dta"`` (``target`` is a DTA objective) or ``"callable"``
        (``target`` is any ``Scenario -> AlgorithmResult`` callable; it
        must itself pickle for ``jobs > 1``).
    :param target: the dispatch payload for ``kind``.
    """

    name: str
    kind: str
    target: Any

    def __call__(self, scenario: Scenario) -> AlgorithmResult:
        if self.kind == "holistic":
            return evaluate_holistic(scenario, self.target)
        if self.kind == "dta":
            return evaluate_dta(scenario, self.target)
        if self.kind == "callable":
            return self.target(scenario)
        raise ValueError(f"unknown evaluator kind {self.kind!r}")


def holistic_spec(name: str) -> EvaluatorSpec:
    """Spec for a holistic algorithm by registry name (e.g. ``"LP-HTA"``)."""
    return EvaluatorSpec(name=name, kind="holistic", target=name)


def dta_spec(objective: str) -> EvaluatorSpec:
    """Spec for a DTA run by objective (``"workload"`` or ``"number"``)."""
    name = "DTA-Workload" if objective == "workload" else "DTA-Number"
    return EvaluatorSpec(name=name, kind="dta", target=objective)


def as_spec(name: str, evaluator: Callable[[Scenario], AlgorithmResult]) -> EvaluatorSpec:
    """Wrap an arbitrary evaluator callable, passing specs through as-is."""
    if isinstance(evaluator, EvaluatorSpec):
        return evaluator
    return EvaluatorSpec(name=name, kind="callable", target=evaluator)


@dataclass(frozen=True)
class SweepCell:
    """One unit of parallel work: a scenario plus its evaluators.

    :param index: position in the submitted cell list (results come back
        in this order regardless of scheduling).
    :param profile: workload profile to generate the scenario from.
    :param seed: scenario seed.
    :param evaluators: evaluators to run, in order.
    """

    index: int
    profile: WorkloadProfile
    seed: int
    evaluators: Tuple[EvaluatorSpec, ...]


def _evaluate_cell(cell: SweepCell) -> Tuple[AlgorithmResult, ...]:
    """Worker entry point: regenerate the scenario, run every evaluator."""
    scenario = generate_scenario(cell.profile, seed=cell.seed)
    return tuple(spec(scenario) for spec in cell.evaluators)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/``0`` mean all CPUs.

    :raises ValueError: for negative values.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = 1,
) -> List[Tuple[AlgorithmResult, ...]]:
    """Evaluate every cell, in-process or across a worker pool.

    :param cells: the work descriptors.
    :param jobs: worker processes; ``1`` (default) runs in-process,
        ``None`` or ``0`` use every CPU.
    :returns: per-cell evaluator results, in ``cells`` order.
    :raises ValueError: when ``jobs > 1`` and a cell does not pickle
        (e.g. a lambda evaluator was wrapped via :func:`as_spec`).
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(cells) <= 1:
        return [_evaluate_cell(cell) for cell in cells]

    # Validated for every jobs > 1 request — even ones that end up running
    # in-process below — so picklability problems surface on every machine,
    # not just multi-core ones.
    try:
        pickle.dumps(tuple(cells))
    except Exception as exc:  # pickle raises a zoo of types
        raise ValueError(
            "cells are not picklable, so they cannot be shipped to worker "
            "processes; use holistic_spec()/dta_spec() or a module-level "
            f"callable instead of a closure (jobs={jobs}): {exc}"
        ) from exc

    # Never run more workers than cells, and never oversubscribe the
    # machine: extra processes on a smaller box only add scheduler churn.
    # A one-worker pool would serialise anyway, so skip the pool entirely.
    workers = min(jobs, len(cells), os.cpu_count() or jobs)
    if workers <= 1:
        return [_evaluate_cell(cell) for cell in cells]

    # fork keeps worker start-up cheap (no re-import of numpy/scipy); fall
    # back to the platform default where fork is unavailable.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()

    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        # Executor.map preserves submission order.
        return list(pool.map(_evaluate_cell, cells))
