"""Explicit run configuration: :class:`RunContext` and its activation stack.

Before this module existed, selecting code paths meant mutating process
globals (``repro.perf._REFERENCE``, the module-wide cost-table flags in
:mod:`repro.core.costs`).  That worked for in-process runs and fork-started
workers, which inherit the parent's memory, but it silently *dropped* the
flags under a spawn start method, and it gave every entry point its own
ad-hoc wiring.  A :class:`RunContext` replaces all of that with one
immutable value:

- **perf mode** — ``reference=True`` routes the generator, assignment
  metrics, HGOS, the structured LP solver and (with the cost flags below)
  the cost tables through their seed-era implementations, for differential
  tests and honest benchmark baselines;
- **cost-table flags** — ``vectorized_costs`` / ``cached_costs``, the knobs
  previously owned by :func:`repro.core.costs.costs_config`;
- **LP settings** — default backend, fallback chain, warm-start toggle and
  the capacity of the per-context LP solve cache;
- **seeds** — the RNG seed handed to randomized algorithm variants.

The active context is tracked with :mod:`contextvars`, so activation nests
and is safe under threads.  ``perf_config`` and ``costs_config`` remain as
thin shims that activate a modified copy of the current context, keeping
every pre-existing call site working.

Each context also carries a mutable :class:`Telemetry` sink (excluded from
equality/hash/pickling): every LP solve records wall time, iteration count,
cache hit/miss and warm-start reuse there, so the CLI, the figure sweeps,
the DES replay and the online scheduler all report the same counters.
Worker processes start from zeroed counters (pickling a context resets its
telemetry) and :func:`repro.experiments.parallel.run_cells` merges their
counts back into the submitting context.
"""

from __future__ import annotations

import contextvars
import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.caching.lp_cache import LPSolveCache

__all__ = [
    "RunContext",
    "Telemetry",
    "current_context",
    "use_context",
]


class Telemetry:
    """Aggregated per-solve counters attached to a :class:`RunContext`.

    One record per LP solve; the counters are additive so worker snapshots
    merge losslessly into the parent's sink.  Two structured slots ride
    the same reset/merge/pickle protocol: ``metrics``
    (:class:`repro.obs.metrics.Metrics` — named counters plus fixed-bucket
    histograms, merged bucket-wise) and ``spans``
    (:class:`repro.obs.spans.SpanLog` — completed tracer spans, merged by
    track-aware concatenation).
    """

    __slots__ = (
        "solves",
        "solve_wall_s",
        "lp_iterations",
        "batch_solves",
        "batched_blocks",
        "cache_hits",
        "cache_misses",
        "batch_cache_hits",
        "batch_cache_misses",
        "warm_start_reuses",
        "scenario_memo_hits",
        "scenario_memo_misses",
        "shard_solves",
        "coordinator_iterations",
        "coordinator_gap_j",
        "faults_detected",
        "retries",
        "degradations",
        "reassignments",
        "tasks_dropped",
        "tasks_recovered",
        "cell_retries",
        "cell_timeouts",
        "cells_quarantined",
        "lp_fallbacks",
        "journal_replays",
        "quarantines",
        "metrics",
        "spans",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter and empty the metrics/span sinks."""
        # Local import: repro.obs.metrics/spans are import-light leaves,
        # but this module's default context is built at import time, so a
        # top-level import would cycle through repro.obs back into here.
        from repro.obs.metrics import Metrics
        from repro.obs.spans import SpanLog

        self.metrics = Metrics()
        self.spans = SpanLog()
        self.solves = 0
        self.solve_wall_s = 0.0
        self.lp_iterations = 0
        self.batch_solves = 0
        self.batched_blocks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batch_cache_hits = 0
        self.batch_cache_misses = 0
        self.warm_start_reuses = 0
        self.scenario_memo_hits = 0
        self.scenario_memo_misses = 0
        self.shard_solves = 0
        self.coordinator_iterations = 0
        self.coordinator_gap_j = 0.0
        self.faults_detected = 0
        self.retries = 0
        self.degradations = 0
        self.reassignments = 0
        self.tasks_dropped = 0
        self.tasks_recovered = 0
        self.cell_retries = 0
        self.cell_timeouts = 0
        self.cells_quarantined = 0
        self.lp_fallbacks = 0
        self.journal_replays = 0
        self.quarantines = []

    def record_solve(
        self,
        *,
        wall_time_s: float,
        iterations: int,
        cache_hit: bool = False,
        warm_start: bool = False,
    ) -> None:
        """Record one LP solve (or solve-cache hit).

        :param wall_time_s: wall-clock time of the solve (lookup time for
            cache hits).
        :param iterations: solver iterations (zero for cache hits).
        :param cache_hit: the result came out of an LP solve cache.
        :param warm_start: a previous iterate/basis seeded the solver.
        """
        self.solves += 1
        self.solve_wall_s += wall_time_s
        self.lp_iterations += iterations
        if warm_start:
            self.warm_start_reuses += 1
        # The distribution view of the same event: the `solve` stage
        # histogram covers every solve (cache hits are real pipeline
        # latency), the iteration histogram only actual solver runs.
        self.metrics.observe("stage.solve_s", wall_time_s)
        if not cache_hit:
            self.metrics.observe("lp.iterations", float(iterations))

    def record_batch(
        self,
        *,
        blocks: int,
        wall_time_s: float,
        iterations: "Sequence[int]",
        assembly_s: Optional[float] = None,
    ) -> None:
        """Record one batched mega-solve clearing ``blocks`` LP blocks.

        Each block counts as one solve (so ``solves`` stays comparable
        between the batched and sequential paths) and contributes its own
        iteration count to the ``lp.iterations`` histogram; the batch as a
        whole feeds the ``lp.batch_size`` histogram and, through
        :func:`repro.obs.tracer.stage`, the ``batch_assembly``/``solve``
        stage timings.

        :param blocks: number of LP blocks cleared by this call.
        :param wall_time_s: wall-clock time of the joint solve.
        :param iterations: per-block solver iteration counts.
        :param assembly_s: optional block-stacking time, observed into the
            ``stage.batch_assembly_s`` histogram (callers that time the
            assembly with :func:`~repro.obs.tracer.stage` pass ``None``).
        """
        self.batch_solves += 1
        self.batched_blocks += blocks
        self.solves += blocks
        self.solve_wall_s += wall_time_s
        self.lp_iterations += sum(iterations)
        self.metrics.observe("lp.batch_size", float(blocks))
        self.metrics.observe("stage.solve_s", wall_time_s)
        for count in iterations:
            self.metrics.observe("lp.iterations", float(count))
        if assembly_s is not None:
            self.metrics.observe("stage.batch_assembly_s", assembly_s)

    def record_cache(self, hit: bool) -> None:
        """Count one LP solve-cache lookup."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_batch_cache(self, hit: bool) -> None:
        """Count one whole-batch LP solve-cache lookup."""
        if hit:
            self.batch_cache_hits += 1
        else:
            self.batch_cache_misses += 1

    def record_scenario_memo(self, hit: bool) -> None:
        """Count one per-worker scenario-memo lookup (see
        :mod:`repro.experiments.parallel`)."""
        if hit:
            self.scenario_memo_hits += 1
        else:
            self.scenario_memo_misses += 1

    def record_recovery(self, action: str, recovered: bool) -> None:
        """Record one fault-recovery event (see :mod:`repro.faults`).

        :param action: the recovery action taken — ``"drop"``, ``"none"``,
            ``"retry"``, ``"degrade"`` or ``"reassign"``.
        :param recovered: whether the task still met its deadline.
        """
        self.faults_detected += 1
        if action == "retry":
            self.retries += 1
        elif action == "degrade":
            self.degradations += 1
        elif action == "reassign":
            self.reassignments += 1
        elif action == "drop":
            self.tasks_dropped += 1
        if recovered:
            self.tasks_recovered += 1

    def record_retry(self, *, timeout: bool = False) -> None:
        """Count one supervised cell retry (see :mod:`repro.runtime`).

        :param timeout: the retry was triggered by a per-cell wall-clock
            timeout rather than a crash or exception.
        """
        self.cell_retries += 1
        self.metrics.incr("runtime.retries")
        if timeout:
            self.cell_timeouts += 1
            self.metrics.incr("runtime.timeouts")

    def record_quarantine(self, label: str, attempts: int, error: str) -> None:
        """Record one poison cell skipped after exhausting its attempts.

        :param label: where the cell lives (indices, shard, seed).
        :param attempts: how many attempts it was charged.
        :param error: the final failure, remote traceback included.
        """
        self.cells_quarantined += 1
        self.metrics.incr("runtime.quarantines")
        self.quarantines.append(
            {"label": label, "attempts": attempts, "error": error}
        )

    def record_fallback(self, rung: str) -> None:
        """Count one solver fallback-ladder descent onto ``rung``."""
        self.lp_fallbacks += 1
        self.metrics.incr(f"lp.fallback.{rung}")

    def record_journal_replay(self, count: int = 1) -> None:
        """Count cells replayed from the checkpoint journal (``--resume``)."""
        self.journal_replays += count
        self.metrics.incr("journal.replays", float(count))

    def merge(self, other: "Telemetry") -> None:
        """Fold another sink into this one (worker hand-back).

        Scalar counters add; the metrics bag and the span log define
        ``+`` themselves (bucket-wise addition, track-aware
        concatenation), so the same loop covers all three.
        """
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain dict (stable keys, for reports/tests)."""
        return {
            "solves": self.solves,
            "solve_wall_s": self.solve_wall_s,
            "lp_iterations": self.lp_iterations,
            "batch_solves": self.batch_solves,
            "batched_blocks": self.batched_blocks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batch_cache_hits": self.batch_cache_hits,
            "batch_cache_misses": self.batch_cache_misses,
            "warm_start_reuses": self.warm_start_reuses,
            "scenario_memo_hits": self.scenario_memo_hits,
            "scenario_memo_misses": self.scenario_memo_misses,
            "shard_solves": self.shard_solves,
            "coordinator_iterations": self.coordinator_iterations,
            "coordinator_gap_j": self.coordinator_gap_j,
            "faults_detected": self.faults_detected,
            "retries": self.retries,
            "degradations": self.degradations,
            "reassignments": self.reassignments,
            "tasks_dropped": self.tasks_dropped,
            "tasks_recovered": self.tasks_recovered,
            "cell_retries": self.cell_retries,
            "cell_timeouts": self.cell_timeouts,
            "cells_quarantined": self.cells_quarantined,
            "lp_fallbacks": self.lp_fallbacks,
            "journal_replays": self.journal_replays,
        }

    def summary(self) -> str:
        """A compact human-readable report (the CLI's ``--stats`` output).

        A run that never touched an LP (pure-greedy algorithms, coverage
        sweeps) renders one clean line instead of a block of zeros and
        ratio lines whose denominators would all be zero.
        """
        lookups = self.cache_hits + self.cache_misses
        if self.solves == 0:
            lines = ["no LP solves recorded"]
        else:
            lines = [
                f"LP solves          {self.solves}",
                f"solve wall time    {self.solve_wall_s:.3f} s",
                f"LP iterations      {self.lp_iterations}",
                f"warm-start reuses  {self.warm_start_reuses}",
            ]
        if self.batch_solves:
            lines.append(
                f"batched solves     {self.batched_blocks} blocks in "
                f"{self.batch_solves} mega-solves"
            )
        batch_lookups = self.batch_cache_hits + self.batch_cache_misses
        if batch_lookups:
            lines.append(
                f"batch cache        {self.batch_cache_hits}/{batch_lookups} hits "
                f"({self.batch_cache_hits / batch_lookups:.0%})"
            )
        if lookups:
            lines.append(
                f"solve cache        {self.cache_hits}/{lookups} hits "
                f"({self.cache_hits / lookups:.0%})"
            )
        elif self.solves:
            lines.append("solve cache        not used")
        memo_lookups = self.scenario_memo_hits + self.scenario_memo_misses
        if memo_lookups:
            lines.append(
                f"scenario memo      {self.scenario_memo_hits}/{memo_lookups} hits "
                f"({self.scenario_memo_hits / memo_lookups:.0%})"
            )
        elif self.solves:
            lines.append("scenario memo      not used")
        if self.shard_solves:
            lines.append(f"shard solves       {self.shard_solves}")
        if self.coordinator_iterations or self.shard_solves:
            lines.append(
                f"coordinator        {self.coordinator_iterations} outer "
                f"iterations, duality gap {self.coordinator_gap_j:.6g} J"
            )
        if self.faults_detected:
            lines.append(f"faults detected    {self.faults_detected}")
            lines.append(
                "recovery           "
                f"{self.retries} retries, {self.degradations} degradations, "
                f"{self.reassignments} reassignments, "
                f"{self.tasks_dropped} drops"
            )
            lines.append(f"tasks recovered    {self.tasks_recovered}")
        if self.cell_retries or self.cells_quarantined:
            lines.append(
                f"cell retries       {self.cell_retries} "
                f"({self.cell_timeouts} from timeouts)"
            )
        if self.cells_quarantined:
            lines.append(f"cells quarantined  {self.cells_quarantined}")
            for entry in self.quarantines:
                first = str(entry["error"]).splitlines()[0]
                lines.append(
                    f"  {entry['label']}: {first} "
                    f"({entry['attempts']} attempts)"
                )
        if self.lp_fallbacks:
            rungs = ", ".join(
                f"{name.split('lp.fallback.', 1)[1]} x{int(count)}"
                for name, count in sorted(self.metrics.counters.items())
                if name.startswith("lp.fallback.")
            )
            lines.append(f"LP fallbacks       {self.lp_fallbacks} ({rungs})")
        if self.journal_replays:
            lines.append(f"journal replays    {self.journal_replays}")
        return "\n".join(lines)

    def __getstate__(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Telemetry({inner})"


@dataclass(frozen=True)
class RunContext:
    """Immutable description of *how* to run an algorithm.

    :param reference: select the seed-reference implementations (original
        generator/metric/HGOS/structured-solver paths).  Results are
        bit-identical either way; only speed differs.
    :param vectorized_costs: batched NumPy cost tables (the optimised
        default) vs the scalar per-task reference pipeline.
    :param cached_costs: memoise cost tables per (system, tasks).
    :param lp_backend: default Step-1 backend for LP-HTA.
    :param lp_fallback_backends: tried in order when the primary backend
        fails numerically.
    :param lp_warm_start: allow solvers to be seeded from a previous
        result's iterate/basis.
    :param lp_cache_capacity: capacity of the per-context LP solve cache;
        ``0`` disables the cache.  The default keeps a bounded cache on:
        sweeps and repeated figure cells rebuild bit-identical relaxations
        constantly, and a hit returns the exact stored result.  Reference
        mode never consults the cache regardless of capacity.
    :param lp_sparse: assemble the generic P2 relaxation (and its standard
        form) as CSR sparse matrices and solve the interior-point normal
        equations with a sparse factorisation.  ``False`` selects the dense
        reference assembly/solve; reference mode is always dense.
    :param lp_batch: clear independent LP-HTA Step-1 instances (the
        per-cluster relaxations, and — through the sweep engine — whole
        sweep columns) as one block-diagonal mega-solve with per-block
        convergence masking, instead of a Python loop of solves.  ``False``
        selects the sequential per-cluster path, which is retained as the
        differential-testing reference; reference mode never batches.
    :param des_vectorized: replay assignments through the compiled
        struct-of-arrays event engine (:mod:`repro.des.engine` — closed
        form in dedicated mode, index event loop under contention/outages,
        ``numba.njit`` when installed).  ``False`` selects the
        closure-chained object replay, which is retained as the reference;
        reference mode always uses the object path.  Bit-identical
        ``RealizedMetrics`` either way.
    :param vectorized_generator: draw scenarios through the array-native
        generator (:mod:`repro.workload.array_gen` — batched RNG decode,
        deferred dataclass materialisation, fused cost-table hints).
        ``False`` selects the object-at-a-time generator; reference mode
        and divisible-task profiles always use the object path.
        Bit-identical ``Scenario`` data either way.
    :param seed: RNG seed handed to randomized algorithm variants.
    :param shards: route LP-HTA through the sharded solver
        (:func:`repro.core.sharded.lp_hta_sharded`) with this many
        balanced station shards.  ``0`` (the default) keeps the monolithic
        path.  With the paper's uncapped cloud the sharded output is
        bit-identical for any shard count, so this is purely an execution
        strategy; reference mode ignores it (the seed-era path is the
        differential baseline).
    :param trace: record nested spans (:mod:`repro.obs.tracer`) into the
        telemetry sink.  Off by default: the disabled path is a shared
        no-op context manager with near-zero overhead.  Cells pickle their
        context, so enabling tracing on a sweep traces its worker
        processes too, and the workers' span logs merge back like every
        other counter.
    :param max_attempts: supervised attempts per sweep cell before it is
        quarantined (``1`` disables retries; see :mod:`repro.runtime`).
    :param cell_timeout_s: per-cell wall-clock budget for pooled sweeps;
        ``0`` disables timeouts.
    :param retry_backoff_s: base of the decorrelated-jitter backoff slept
        between supervised retry rounds.
    :param quarantine: skip-and-record cells that exhaust their attempts;
        ``False`` makes an exhausted cell fatal
        (:class:`~repro.runtime.errors.CellFailedError`).
    :param journal_path: checkpoint every completed sweep cell/tile to
        this append-only journal; ``None`` disables journaling.
    :param resume: replay journal entries recorded by an earlier
        (interrupted) run instead of recomputing them.  Requires
        ``journal_path``.

    The six runtime knobs above change how a sweep *executes* — never
    what it computes — so they are excluded from the journal's content
    fingerprint (:data:`repro.runtime.journal._RESULT_FIELDS`).
    """

    reference: bool = False
    vectorized_costs: bool = True
    cached_costs: bool = True
    lp_backend: str = "structured"
    lp_fallback_backends: Tuple[str, ...] = ("interior-point", "simplex", "scipy")
    lp_warm_start: bool = True
    lp_cache_capacity: int = 256
    lp_sparse: bool = True
    lp_batch: bool = True
    des_vectorized: bool = True
    vectorized_generator: bool = True
    seed: int = 0
    shards: int = 0
    trace: bool = False
    max_attempts: int = 2
    cell_timeout_s: float = 0.0
    retry_backoff_s: float = 0.05
    quarantine: bool = True
    journal_path: Optional[str] = None
    resume: bool = False
    telemetry: Telemetry = field(
        default_factory=Telemetry, compare=False, repr=False
    )

    def replace(self, **changes: Any) -> "RunContext":
        """A copy with ``changes`` applied.

        The telemetry sink is shared with the original unless explicitly
        replaced, so derived contexts keep reporting into the same counters.
        """
        return dataclasses.replace(self, **changes)

    @property
    def lp_cache(self) -> Optional["LPSolveCache"]:
        """The per-context LP solve cache (``None`` when capacity is 0).

        Created lazily and memoised on the instance, so every solve under
        this context shares one cache; a copy made via :meth:`replace`
        builds its own.
        """
        if self.lp_cache_capacity <= 0:
            return None
        cache = self.__dict__.get("_lp_cache")
        if cache is None:
            from repro.caching.lp_cache import LPSolveCache

            cache = LPSolveCache(self.lp_cache_capacity, telemetry=self.telemetry)
            # Frozen dataclass: memoise via __dict__ to bypass __setattr__.
            self.__dict__["_lp_cache"] = cache
        return cache

    def __getstate__(self) -> Dict[str, Any]:
        # Contexts cross process boundaries inside sweep cells.  The worker
        # must start from zeroed counters (its deltas are merged back by the
        # parent) and must not drag a solve cache across the wire.
        state = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
        state["telemetry"] = Telemetry()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


#: Fallback context when nothing was activated: the optimised defaults.
_DEFAULT = RunContext()

_ACTIVE: "contextvars.ContextVar[RunContext]" = contextvars.ContextVar(
    "repro_run_context"
)


def current_context() -> RunContext:
    """The innermost active :class:`RunContext` (defaults when none is)."""
    return _ACTIVE.get(_DEFAULT)


@contextmanager
def use_context(context: RunContext) -> Iterator[RunContext]:
    """Activate ``context`` for the duration of the ``with`` block.

    Activations nest; leaving the block restores the previous context.

    :param context: the context to activate.
    """
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)
