"""Mobility substrate: waypoint motion, handover, quasi-static analysis.

Section II assumes a *quasi-static* scenario — every device keeps its base
station for the whole planning period.  This package makes that assumption
testable: devices move (random waypoint), attachment follows the nearest
station, and the online scheduler (:mod:`repro.online`) re-plans per epoch
while measuring how often the assumption is violated mid-epoch and what the
violations cost.
"""

from repro.mobility.waypoint import RandomWaypointModel
from repro.mobility.handover import (
    HandoverAnalysis,
    attachment_at,
    analyse_handovers,
)

__all__ = [
    "HandoverAnalysis",
    "RandomWaypointModel",
    "analyse_handovers",
    "attachment_at",
]
