"""Random-waypoint mobility model.

Each device repeatedly picks a uniform destination in the area and walks to
it in a straight line at a uniformly drawn speed, with an optional pause on
arrival — the standard random-waypoint model of the MANET literature.
Trajectories are generated lazily per device and are fully deterministic
given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["RandomWaypointModel"]


@dataclass(frozen=True)
class _Leg:
    """One straight-line segment of a trajectory (including pause time)."""

    start_time: float
    start: Tuple[float, float]
    end: Tuple[float, float]
    speed: float
    pause: float

    @property
    def travel_time(self) -> float:
        distance = math.hypot(self.end[0] - self.start[0], self.end[1] - self.start[1])
        return distance / self.speed if self.speed > 0 else 0.0

    @property
    def end_time(self) -> float:
        return self.start_time + self.travel_time + self.pause

    def position_at(self, time: float) -> Tuple[float, float]:
        elapsed = min(max(time - self.start_time, 0.0), self.travel_time)
        if self.travel_time == 0:
            return self.end
        fraction = elapsed / self.travel_time
        return (
            self.start[0] + fraction * (self.end[0] - self.start[0]),
            self.start[1] + fraction * (self.end[1] - self.start[1]),
        )


class RandomWaypointModel:
    """Deterministic random-waypoint trajectories for a set of devices.

    :param device_ids: devices to move.
    :param area_side_m: side of the square area.
    :param speed_range_mps: (min, max) walking speed, metres/second.
    :param pause_range_s: (min, max) pause at each waypoint.
    :param seed: RNG seed; trajectories are reproducible.
    :param initial_positions: optional starting point per device (defaults
        to uniform in the area).
    """

    def __init__(
        self,
        device_ids: Sequence[int],
        area_side_m: float,
        speed_range_mps: Tuple[float, float] = (0.5, 3.0),
        pause_range_s: Tuple[float, float] = (0.0, 30.0),
        seed: int = 0,
        initial_positions: Dict[int, Tuple[float, float]] = None,
    ) -> None:
        if area_side_m <= 0:
            raise ValueError("area_side_m must be positive")
        lo, hi = speed_range_mps
        if not 0 < lo <= hi:
            raise ValueError("speed_range_mps must be positive and ordered")
        lo, hi = pause_range_s
        if not 0 <= lo <= hi:
            raise ValueError("pause_range_s must be non-negative and ordered")
        if not device_ids:
            raise ValueError("need at least one device")

        self.area_side_m = area_side_m
        self.speed_range_mps = speed_range_mps
        self.pause_range_s = pause_range_s
        self._legs: Dict[int, List[_Leg]] = {}
        self._rngs: Dict[int, np.random.Generator] = {}
        for device_id in device_ids:
            rng = np.random.default_rng((seed, device_id))
            self._rngs[device_id] = rng
            if initial_positions and device_id in initial_positions:
                start = initial_positions[device_id]
            else:
                start = (
                    float(rng.uniform(0, area_side_m)),
                    float(rng.uniform(0, area_side_m)),
                )
            self._legs[device_id] = [self._new_leg(device_id, 0.0, start)]

    @property
    def device_ids(self) -> Tuple[int, ...]:
        """Devices with trajectories (sorted)."""
        return tuple(sorted(self._legs))

    def _new_leg(self, device_id: int, start_time: float, start) -> _Leg:
        rng = self._rngs[device_id]
        end = (
            float(rng.uniform(0, self.area_side_m)),
            float(rng.uniform(0, self.area_side_m)),
        )
        speed = float(rng.uniform(*self.speed_range_mps))
        pause = float(rng.uniform(*self.pause_range_s))
        return _Leg(start_time=start_time, start=start, end=end, speed=speed, pause=pause)

    def _extend_until(self, device_id: int, time: float) -> None:
        legs = self._legs[device_id]
        while legs[-1].end_time < time:
            last = legs[-1]
            legs.append(self._new_leg(device_id, last.end_time, last.end))

    def position_at(self, device_id: int, time: float) -> Tuple[float, float]:
        """Device position at an absolute time ≥ 0.

        :raises KeyError: for unknown devices.
        :raises ValueError: for negative times.
        """
        if time < 0:
            raise ValueError("time must be non-negative")
        self._extend_until(device_id, time)
        for leg in reversed(self._legs[device_id]):
            if leg.start_time <= time:
                return leg.position_at(time)
        return self._legs[device_id][0].position_at(time)  # pragma: no cover

    def positions_at(self, time: float) -> Dict[int, Tuple[float, float]]:
        """All devices' positions at a time."""
        return {d: self.position_at(d, time) for d in self.device_ids}

    def trace(
        self, device_id: int, start: float, stop: float, step: float
    ) -> List[Tuple[float, Tuple[float, float]]]:
        """Sampled (time, position) points of one device's trajectory."""
        if step <= 0:
            raise ValueError("step must be positive")
        times = np.arange(start, stop + step / 2, step)
        return [(float(t), self.position_at(device_id, float(t))) for t in times]

    def max_displacement(
        self, start: float, stop: float, step: float = 1.0
    ) -> float:
        """Largest distance any device moves within [start, stop]."""
        worst = 0.0
        for device_id in self.device_ids:
            points = [p for _, p in self.trace(device_id, start, stop, step)]
            for a in points:
                for b in points:
                    worst = max(worst, math.hypot(a[0] - b[0], a[1] - b[1]))
        return worst
