"""Handover analysis: nearest-station attachment and quasi-static checks.

Attachment follows the strongest (here: nearest) base station.  The
quasi-static assumption of Section II holds for an epoch when no device
changes station inside it; :func:`analyse_handovers` measures how often that
is true for a given epoch length, which the online scheduler uses to pick a
planning cadence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.mobility.waypoint import RandomWaypointModel

__all__ = ["HandoverAnalysis", "analyse_handovers", "attachment_at"]


def attachment_at(
    model: RandomWaypointModel,
    station_positions: Mapping[int, Tuple[float, float]],
    time: float,
) -> Dict[int, int]:
    """Nearest-station attachment for every device at a time.

    :param model: the mobility model.
    :param station_positions: station id → (x, y).
    :param time: absolute time.
    """
    if not station_positions:
        raise ValueError("need at least one base station")
    out: Dict[int, int] = {}
    for device_id, (x, y) in model.positions_at(time).items():
        out[device_id] = min(
            station_positions,
            key=lambda sid: math.hypot(
                x - station_positions[sid][0], y - station_positions[sid][1]
            ),
        )
    return out


@dataclass(frozen=True)
class HandoverAnalysis:
    """Quasi-static quality of an epoch length.

    :param epoch_length_s: the analysed epoch length.
    :param num_epochs: epochs analysed.
    :param handovers_per_epoch: mean station changes per epoch (all devices).
    :param violation_rate: fraction of (device, epoch) pairs where the
        device changed station *inside* the epoch — exactly the events the
        quasi-static assumption rules out.
    """

    epoch_length_s: float
    num_epochs: int
    handovers_per_epoch: float
    violation_rate: float


def analyse_handovers(
    model: RandomWaypointModel,
    station_positions: Mapping[int, Tuple[float, float]],
    horizon_s: float,
    epoch_length_s: float,
    samples_per_epoch: int = 10,
) -> HandoverAnalysis:
    """Measure quasi-static violations over a horizon.

    :param model: the mobility model.
    :param station_positions: station id → (x, y).
    :param horizon_s: total simulated time.
    :param epoch_length_s: planning-epoch length to analyse.
    :param samples_per_epoch: attachment checks inside each epoch.
    """
    if horizon_s <= 0 or epoch_length_s <= 0:
        raise ValueError("horizon and epoch length must be positive")
    if epoch_length_s > horizon_s:
        raise ValueError("epoch length cannot exceed the horizon")
    if samples_per_epoch < 2:
        raise ValueError("need at least two samples per epoch")

    num_epochs = int(horizon_s // epoch_length_s)
    total_handovers = 0
    violations = 0
    checks = 0
    for epoch in range(num_epochs):
        start = epoch * epoch_length_s
        times = np.linspace(start, start + epoch_length_s, samples_per_epoch)
        previous = attachment_at(model, station_positions, float(times[0]))
        changed = {device_id: False for device_id in previous}
        for t in times[1:]:
            current = attachment_at(model, station_positions, float(t))
            for device_id, station in current.items():
                if station != previous[device_id]:
                    total_handovers += 1
                    changed[device_id] = True
            previous = current
        violations += sum(changed.values())
        checks += len(changed)

    return HandoverAnalysis(
        epoch_length_s=epoch_length_s,
        num_epochs=num_epochs,
        handovers_per_epoch=total_handovers / max(num_epochs, 1),
        violation_rate=violations / max(checks, 1),
    )
