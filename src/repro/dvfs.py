"""Dynamic voltage/frequency scaling (the [26] line of related work).

Wang et al. [26] jointly optimise offloading and the device's CPU-cycle
frequency: local energy is :math:`\\kappa\\,\\lambda(y)\\,f^2` while local
time is :math:`\\lambda(y)/f`, so the energy-optimal policy runs exactly as
slowly as the deadline allows.  For a locally-executed task with data-fetch
time :math:`t^{(R)}` and deadline :math:`T`, the optimum is the clipped
closed form

.. math::

   f^* = \\mathrm{clip}\\Bigl(\\frac{\\lambda(y)}{T - t^{(R)}},\\;
         f_{min},\\; f_{max}\\Bigr),

undefined (task can't run locally) when :math:`T \\le t^{(R)}` and
:math:`f^*` would exceed :math:`f_{max}`.

:func:`rescale_assignment` applies this to the device-assigned tasks of any
existing assignment — offloaded tasks are untouched, because the paper
ignores station/cloud compute energy — and reports the saving.  Energy can
only go down: the nominal frequency is always an admissible choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment, Subsystem
from repro.core.task import Task
from repro.system.topology import MECSystem
from repro.units import gigahertz

__all__ = ["DVFSResult", "FrequencyChoice", "optimal_frequency", "rescale_assignment"]

#: Default frequency band of the paper's devices (Section V-A).
DEFAULT_F_MIN_HZ = gigahertz(0.3)
DEFAULT_F_MAX_HZ = gigahertz(2.0)


@dataclass(frozen=True)
class FrequencyChoice:
    """The DVFS decision for one locally-executed task.

    :param task: the task.
    :param nominal_hz: the device's fixed frequency.
    :param chosen_hz: the energy-optimal clipped frequency.
    :param nominal_energy_j: task energy at the nominal frequency.
    :param scaled_energy_j: task energy at the chosen frequency.
    :param latency_s: task latency at the chosen frequency.
    """

    task: Task
    nominal_hz: float
    chosen_hz: float
    nominal_energy_j: float
    scaled_energy_j: float
    latency_s: float

    @property
    def saving_j(self) -> float:
        """Energy saved by scaling (≥ 0)."""
        return self.nominal_energy_j - self.scaled_energy_j


@dataclass(frozen=True)
class DVFSResult:
    """Outcome of rescaling an assignment.

    :param choices: one entry per task row (None for tasks not executed on
        their device).
    :param nominal_energy_j: original assignment energy.
    :param scaled_energy_j: energy after frequency scaling.
    """

    choices: Tuple[Optional[FrequencyChoice], ...]
    nominal_energy_j: float
    scaled_energy_j: float

    @property
    def saving_j(self) -> float:
        """Total energy saved."""
        return self.nominal_energy_j - self.scaled_energy_j

    @property
    def saving_fraction(self) -> float:
        """Relative saving (0 when there was nothing to scale)."""
        if self.nominal_energy_j <= 0:
            return 0.0
        return self.saving_j / self.nominal_energy_j


def optimal_frequency(
    cycles: float,
    deadline_budget_s: float,
    f_min_hz: float = DEFAULT_F_MIN_HZ,
    f_max_hz: float = DEFAULT_F_MAX_HZ,
) -> Optional[float]:
    """The [26] closed form: slowest frequency that still meets the budget.

    :param cycles: CPU cycles the task needs.
    :param deadline_budget_s: time available for computation (deadline
        minus any data-retrieval time).
    :param f_min_hz: the device's lowest operating point.
    :param f_max_hz: the device's highest operating point.
    :returns: the clipped optimum, or ``None`` when even ``f_max_hz``
        cannot meet the budget.
    :raises ValueError: on non-positive cycle counts or an inverted band.
    """
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    if not 0 < f_min_hz <= f_max_hz:
        raise ValueError("need 0 < f_min_hz <= f_max_hz")
    if cycles == 0:
        return f_min_hz
    if deadline_budget_s <= 0:
        return None
    required = cycles / deadline_budget_s
    if required > f_max_hz:
        return None
    return min(max(required, f_min_hz), f_max_hz)


def rescale_assignment(
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    f_min_hz: float = DEFAULT_F_MIN_HZ,
    f_max_hz: Optional[float] = None,
) -> DVFSResult:
    """Apply per-task DVFS to the device-executed tasks of an assignment.

    Each device's own nominal frequency caps its band (a 1.3 GHz phone
    cannot clock to 2 GHz), so by construction every choice remains
    deadline-feasible and energy never increases.

    :param system: the MEC system.
    :param tasks: tasks in the assignment's row order.
    :param assignment: the schedule to rescale.
    :param f_min_hz: lowest operating point of every device.
    :param f_max_hz: highest operating point; ``None`` uses each device's
        nominal frequency.
    """
    if len(tasks) != assignment.costs.num_tasks:
        raise ValueError("tasks and assignment rows must correspond")
    params = system.parameters
    choices: List[Optional[FrequencyChoice]] = []
    scaled_total = 0.0
    for row, task in enumerate(tasks):
        decision = assignment.decisions[row]
        if decision is not Subsystem.DEVICE:
            choices.append(None)
            if decision is not Subsystem.CANCELLED:
                scaled_total += float(
                    assignment.costs.energy_j[row, decision.column]
                )
            continue
        device = system.device(task.owner_device_id)
        cap = device.cpu_frequency_hz if f_max_hz is None else f_max_hz
        cycles = params.cycles.cycles_on_device(task.input_bytes)
        compute_time_nominal = cycles / device.cpu_frequency_hz
        fetch_time = (
            float(assignment.costs.time_s[row, Subsystem.DEVICE.column])
            - compute_time_nominal
        )
        budget = task.deadline_s - fetch_time
        frequency = optimal_frequency(cycles, budget, f_min_hz, cap)
        if frequency is None:
            # Shouldn't happen for a feasible assignment; keep nominal.
            frequency = device.cpu_frequency_hz
        nominal_energy = float(assignment.costs.energy_j[row, 0])
        compute_energy_nominal = (
            params.kappa * cycles * device.cpu_frequency_hz**2
        )
        transfer_energy = nominal_energy - compute_energy_nominal
        scaled_energy = transfer_energy + params.kappa * cycles * frequency**2
        latency = fetch_time + cycles / frequency
        choices.append(
            FrequencyChoice(
                task=task,
                nominal_hz=device.cpu_frequency_hz,
                chosen_hz=frequency,
                nominal_energy_j=nominal_energy,
                scaled_energy_j=scaled_energy,
                latency_s=latency,
            )
        )
        scaled_total += scaled_energy
    return DVFSResult(
        choices=tuple(choices),
        nominal_energy_j=assignment.total_energy_j(),
        scaled_energy_j=scaled_total,
    )
