"""Unit conventions and conversion helpers used across the library.

Conventions (kept uniform everywhere):

- data sizes are in **bytes** (floats are allowed: sizes are modelled
  quantities, not buffer lengths),
- link rates are in **bits per second**,
- powers are in **watts**, energies in **joules**,
- times in **seconds**, CPU frequencies in **hertz** (cycles per second).

The paper quotes data sizes in "kb" (e.g. a maximum input size of 3000 kb)
and link speeds in Mbps.  We read the former as kilobytes (consistent with
λ = 330 cycles/**byte** from [22]) and the latter as megabits per second
(the usual meaning for link speeds).
"""

from __future__ import annotations

BITS_PER_BYTE = 8.0

KB = 1000.0
"""Bytes per kilobyte (decimal, as used by the paper's workload sizes)."""

MB = 1000.0 * KB
"""Bytes per megabyte."""

MBPS = 1e6
"""Bits/second per megabit/second."""

GHZ = 1e9
"""Hertz per gigahertz."""

MS = 1e-3
"""Seconds per millisecond."""


def kilobytes(value: float) -> float:
    """Convert kilobytes to bytes."""
    return value * KB


def megabits_per_second(value: float) -> float:
    """Convert Mbps to bits per second."""
    return value * MBPS


def gigahertz(value: float) -> float:
    """Convert GHz to Hz."""
    return value * GHZ


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def transmission_time_s(size_bytes: float, rate_bps: float) -> float:
    """Time to push ``size_bytes`` through a link of ``rate_bps``.

    A zero-size transfer takes zero time regardless of rate; a zero-rate link
    with a non-zero payload is a configuration error.
    """
    if size_bytes < 0:
        raise ValueError(f"negative transfer size: {size_bytes}")
    if size_bytes == 0:
        return 0.0
    if rate_bps <= 0:
        raise ValueError(f"non-positive link rate: {rate_bps}")
    return size_bytes * BITS_PER_BYTE / rate_bps
