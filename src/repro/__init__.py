"""Task assignment in Data-Shared Mobile Edge Computing systems.

A faithful reproduction of Cheng, Chen, Li, Gao, *"Task Assignment
Algorithms in Data Shared Mobile Edge Computing Systems"* (ICDCS 2019):

- the three-level MEC system model (:mod:`repro.system`),
- the HTA problem and the LP-HTA approximation algorithm
  (:mod:`repro.core`), backed by from-scratch LP solvers (:mod:`repro.lp`),
- the divisible-task algorithms DTA-Workload / DTA-Number and the task
  rearrangement pipeline (:mod:`repro.dta`),
- workload generation matching Section V-A (:mod:`repro.workload`),
- a discrete-event validation simulator (:mod:`repro.des`), and
- reproducers for every figure and table of the evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro import PAPER_DEFAULTS, generate_scenario, lp_hta

    scenario = generate_scenario(PAPER_DEFAULTS, seed=0)
    report = lp_hta(scenario.system, list(scenario.tasks))
    print(report.assignment.stats())

Algorithm dispatch goes through :mod:`repro.registry` (one entry per
algorithm: display name, capability flags, evaluate/assign factories) and
run configuration through an explicit, immutable
:class:`~repro.context.RunContext` (:mod:`repro.context`)::

    from repro import RunContext, registry, use_context

    result = registry.run("LP-HTA", scenario, RunContext(reference=True))
"""

from repro import registry
from repro.context import RunContext, Telemetry, current_context, use_context
from repro.core import (
    Assignment,
    HTAReport,
    LPHTAOptions,
    Subsystem,
    Task,
    all_offload,
    all_to_cloud,
    branch_and_bound_hta,
    brute_force_hta,
    cluster_costs,
    hgos,
    lp_hta,
    task_costs,
)
from repro.dta import (
    Coverage,
    DTAOutcome,
    dta_number,
    dta_workload,
    rearrange_tasks,
    run_dta,
)
from repro.system import (
    BaseStation,
    Cloud,
    FOUR_G,
    MECSystem,
    MobileDevice,
    SystemParameters,
    WIFI,
    WirelessProfile,
)
from repro.workload import (
    PAPER_DEFAULTS,
    Scenario,
    WorkloadProfile,
    generate_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "BaseStation",
    "Cloud",
    "Coverage",
    "DTAOutcome",
    "FOUR_G",
    "HTAReport",
    "LPHTAOptions",
    "MECSystem",
    "MobileDevice",
    "PAPER_DEFAULTS",
    "RunContext",
    "Scenario",
    "Subsystem",
    "SystemParameters",
    "Task",
    "Telemetry",
    "WIFI",
    "WirelessProfile",
    "WorkloadProfile",
    "all_offload",
    "all_to_cloud",
    "branch_and_bound_hta",
    "brute_force_hta",
    "cluster_costs",
    "current_context",
    "dta_number",
    "dta_workload",
    "generate_scenario",
    "hgos",
    "lp_hta",
    "rearrange_tasks",
    "registry",
    "run_dta",
    "task_costs",
    "use_context",
]
