"""Congestion-aware assignment: pricing under load-dependent uplink rates.

The Section II model prices every uplink at its nominal rate.  With the
shared-channel model of [9] (:mod:`repro.system.interference`), uplink rates
*depend on the assignment*: the more tasks a cluster offloads concurrently,
the slower each upload.  This package closes that loop with a fixed-point
iteration — price under an assumed concurrency, assign, observe the induced
concurrency, re-price — the same self-consistency logic the offloading games
reach by best response.
"""

from repro.congestion.fixed_point import (
    CongestionOptions,
    CongestionResult,
    congestion_aware_assignment,
    degraded_system,
)

__all__ = [
    "CongestionOptions",
    "CongestionResult",
    "congestion_aware_assignment",
    "degraded_system",
]
