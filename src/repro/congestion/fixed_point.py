"""Fixed-point iteration between assignment and uplink congestion.

Concurrency model: every task assigned to the base station or the cloud
occupies its owner's uplink; within a cluster those uploads share spectrum,
so with :math:`k_r` offloaded tasks in cluster *r* every uplink there runs
at the interference channel's *relative* degradation
:math:`r(k_r)/r(1)` of its nominal Table I rate.  (Using the relative
factor keeps per-device heterogeneity — a Wi-Fi device stays faster than a
4G one at every load.)

The iteration: price at last round's concurrency, run the configured
policy, measure the concurrency the new assignment induces, repeat.  A
fixed point is an assignment that is optimal *for the rates it itself
causes*.  Convergence is not guaranteed in general (the mapping can cycle),
so the loop caps iterations and reports the trajectory; in practice the
default scenarios settle in a few rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.core.assignment import Assignment, Subsystem
from repro.core.hta import LPHTAOptions, lp_hta
from repro.core.task import Task
from repro.system.interference import InterferenceChannel
from repro.system.topology import MECSystem

__all__ = [
    "CongestionOptions",
    "CongestionResult",
    "congestion_aware_assignment",
    "degraded_system",
]


@dataclass(frozen=True)
class CongestionOptions:
    """Tunables of the fixed-point loop.

    :param max_iterations: pricing rounds before giving up.
    :param hta_options: LP-HTA tunables used each round.
    :param damping: update the priced concurrency with a running average
        of the induced ones (step 1/t at round t) instead of jumping.
        Undamped simultaneous re-pricing oscillates — congested prices
        empty the uplinks, empty uplinks invite everyone back — while the
        shrinking steps force the oscillation band to collapse.
    :param rate_tolerance: relative uplink-rate-factor difference between
        the priced and the induced concurrency below which the point counts
        as fixed (comparing *rates*, not raw counts: a swing from 40 to 45
        uploaders barely moves the rates, and with orthogonal channels any
        count is a fixed point).
    """

    max_iterations: int = 20
    hta_options: LPHTAOptions = LPHTAOptions()
    damping: bool = True
    rate_tolerance: float = 0.02

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.rate_tolerance < 0:
            raise ValueError("rate_tolerance must be non-negative")


@dataclass(frozen=True)
class CongestionResult:
    """Outcome of the congestion-aware assignment.

    :param assignment: the final-round assignment, priced at the final
        concurrency (costs and decisions are self-consistent when
        ``converged``).
    :param converged: whether two consecutive rounds induced the same
        per-cluster concurrency.
    :param iterations: pricing rounds executed.
    :param concurrency_history: per-round cluster → offloaded-task count.
    :param naive_energy_j: energy the congestion-blind assignment *claims*
        at nominal rates (round 1's planning view).
    :param final_energy_j: energy of the final assignment at the rates its
        own concurrency causes.
    """

    assignment: Assignment
    converged: bool
    iterations: int
    concurrency_history: Tuple[Dict[int, int], ...]
    naive_energy_j: float
    final_energy_j: float

    @property
    def congestion_penalty_j(self) -> float:
        """What congestion-blind planning underestimates."""
        return self.final_energy_j - self.naive_energy_j


def _offload_concurrency(
    system: MECSystem, tasks: Sequence[Task], assignment: Assignment
) -> Dict[int, int]:
    """Offloaded-task count per cluster (each occupies an uplink)."""
    counts = {sid: 0 for sid in system.stations}
    for row, decision in enumerate(assignment.decisions):
        if decision in (Subsystem.STATION, Subsystem.CLOUD):
            counts[system.cluster_of(tasks[row].owner_device_id)] += 1
    return counts


def degraded_system(
    system: MECSystem,
    channel: InterferenceChannel,
    concurrency: Dict[int, int],
) -> MECSystem:
    """The same system with uplinks degraded per cluster concurrency.

    :param system: the nominal system.
    :param channel: the shared-spectrum model supplying r(k)/r(1).
    :param concurrency: offloaded-task count per cluster (0 and 1 both mean
        an uncontended uplink).
    """
    nominal = channel.uplink_rate_bps(1)
    factors = {
        sid: channel.uplink_rate_bps(max(k, 1)) / nominal
        for sid, k in concurrency.items()
    }
    devices = []
    for device in system.devices.values():
        factor = factors.get(system.cluster_of(device.device_id), 1.0)
        profile = replace(
            device.wireless,
            name=f"{device.wireless.name}@x{factor:.2f}",
            upload_rate_bps=device.wireless.upload_rate_bps * factor,
        )
        devices.append(replace(device, wireless=profile))
    return MECSystem(
        devices=devices,
        stations=list(system.stations.values()),
        attachment={d: system.cluster_of(d) for d in system.devices},
        cloud=system.cloud,
        bs_bs_link=system.bs_bs_link,
        bs_cloud_link=system.bs_cloud_link,
        parameters=system.parameters,
    )


def congestion_aware_assignment(
    system: MECSystem,
    tasks: Sequence[Task],
    channel: InterferenceChannel,
    options: CongestionOptions = CongestionOptions(),
) -> CongestionResult:
    """Iterate pricing and assignment to a congestion fixed point.

    :param system: the nominal MEC system.
    :param tasks: holistic tasks to assign.
    :param channel: the shared-spectrum interference model.
    :param options: loop tunables.
    """
    task_list = list(tasks)
    concurrency: Dict[int, int] = {sid: 0 for sid in system.stations}
    history: List[Dict[int, int]] = []
    naive_energy = None
    assignment = None
    converged = False
    iterations = 0

    for iterations in range(1, options.max_iterations + 1):
        priced = degraded_system(system, channel, concurrency)
        report = lp_hta(priced, task_list, options.hta_options)
        assignment = report.assignment
        if naive_energy is None:
            naive_energy = assignment.total_energy_j()
        induced = _offload_concurrency(system, task_list, assignment)
        history.append(induced)
        if options.damping:
            # Running average: step 1/(t+1) toward the induced point, so
            # even a persistent two-cycle's pricing settles on its mean.
            step = 1.0 / (iterations + 1)
            updated = {
                sid: int(
                    round(concurrency[sid] + step * (induced[sid] - concurrency[sid]))
                )
                for sid in induced
            }
        else:
            updated = induced
        # Converged when the *pricing* stops moving: the rates implied by
        # the updated concurrency match the ones the round was priced at.
        nominal = channel.uplink_rate_bps(1)
        rate_gap = max(
            abs(
                channel.uplink_rate_bps(max(updated[sid], 1))
                - channel.uplink_rate_bps(max(concurrency[sid], 1))
            )
            / nominal
            for sid in updated
        )
        concurrency = updated
        if rate_gap <= options.rate_tolerance:
            converged = True
            break

    # Final self-consistency: re-price the final decisions at the final
    # concurrency (if the loop converged this is a no-op).
    from repro.core.costs import cluster_costs

    final_system = degraded_system(system, channel, concurrency)
    final_assignment = Assignment(
        cluster_costs(final_system, task_list), assignment.decisions
    )
    return CongestionResult(
        assignment=final_assignment,
        converged=converged,
        iterations=iterations,
        concurrency_history=tuple(history),
        naive_energy_j=float(naive_energy),
        final_energy_j=final_assignment.total_energy_j(),
    )
